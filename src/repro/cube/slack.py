"""Order and slack of update streams — the Table 6 algorithm.

The *order* of a stream says how its entries are sorted; the *slack*
says how far the stream may lag behind or run ahead of the scan over the
fact table (Section 5.3.1).  Both are computed at plan time and drive
(1) the memory-footprint estimate used by the optimizer and (2) the
watermark bookkeeping that lets the one-pass engine flush finalized hash
entries early.

Following Proposition 2, every stream order is expressed against the
scan key's attribute sequence: position ``i`` of an order is the
granularity (hierarchy level) at which scan-key attribute ``i`` appears,
padded with ``D_ALL`` once attributes stop influencing the sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import PlanError
from repro.cube.order import SortKey
from repro.schema.dataset_schema import DatasetSchema


@dataclass(frozen=True)
class Slack:
    """Per-attribute slack bounds ``<(l_1,h_1), ..., (l_m,h_m)>``.

    ``bounds[i]`` bounds how far the stream's progress on scan-key
    attribute ``i`` may trail (negative) or lead (positive) the scan.
    A perfectly synchronized stream has all-zero slack.
    """

    bounds: tuple[tuple[int, int], ...]

    @classmethod
    def zero(cls, width: int) -> "Slack":
        return cls(tuple((0, 0) for __ in range(width)))

    def widened(self, other: "Slack") -> "Slack":
        """Component-wise bounding box of two slacks."""
        if len(self.bounds) != len(other.bounds):
            raise PlanError("cannot widen slacks of different widths")
        return Slack(
            tuple(
                (min(a_lo, b_lo), max(a_hi, b_hi))
                for (a_lo, a_hi), (b_lo, b_hi) in zip(
                    self.bounds, other.bounds
                )
            )
        )

    def shifted(self, index: int, low_delta: int, high_delta: int) -> "Slack":
        """Widen the bounds of one attribute by the given deltas."""
        bounds = list(self.bounds)
        lo, hi = bounds[index]
        bounds[index] = (lo + low_delta, hi + high_delta)
        return Slack(tuple(bounds))

    @property
    def is_zero(self) -> bool:
        return all(lo == 0 and hi == 0 for lo, hi in self.bounds)

    def __str__(self) -> str:
        inner = ", ".join(f"({lo},{hi})" for lo, hi in self.bounds)
        return f"<{inner}>"


@dataclass(frozen=True)
class StreamInfo:
    """Order and slack of one update stream, per Proposition 2.

    ``order_levels[i]`` is the level of scan-key attribute ``i`` in the
    stream's order (``all_level`` = padded out / does not constrain).
    """

    order_levels: tuple[int, ...]
    slack: Slack

    def __post_init__(self) -> None:
        if len(self.order_levels) != len(self.slack.bounds):
            raise PlanError("order and slack widths differ")


def compute_order_slack(
    schema: DatasetSchema,
    scan_key: SortKey,
    region_levels: Sequence[int],
    inputs: Sequence[StreamInfo],
) -> StreamInfo:
    """The ``ComputeOrderSlack`` algorithm of Table 6.

    Given the region-set granularity of a measure (``region_levels``,
    full schema width) and the order/slack of all its incoming update
    streams, compute the order and slack of the measure's finalized
    entries.

    The output order is, informally, the longest scan-key prefix on
    which all inputs agree, coarsened to the measure's granularity; the
    slack is the bounding box of the input slacks, rescaled by
    ``card()`` where the measure's domain is coarser than the streams'.

    Args:
        schema: The dataset schema.
        scan_key: The dataset's sort key; defines the attribute
            sequence that orders are expressed against.
        region_levels: Level per schema dimension of the measure's
            region set.
        inputs: Order/slack of each incoming update stream.

    Returns:
        The :class:`StreamInfo` of the measure's finalized entries.
    """
    if not inputs:
        raise PlanError("compute_order_slack needs at least one input")
    width = len(scan_key.parts)
    for info in inputs:
        if len(info.order_levels) != width:
            raise PlanError(
                "input stream order width does not match the scan key"
            )

    out_levels: list[int] = []
    out_bounds: list[tuple[int, int]] = []

    def pad_rest() -> StreamInfo:
        """Pad the remaining attributes with D_ALL / zero slack."""
        while len(out_levels) < width:
            dim_idx = scan_key.parts[len(out_levels)][0]
            out_levels.append(schema.dimensions[dim_idx].all_level)
            out_bounds.append((0, 0))
        return StreamInfo(tuple(out_levels), Slack(tuple(out_bounds)))

    for i in range(width):
        dim_idx = scan_key.parts[i][0]
        hierarchy = schema.dimensions[dim_idx].hierarchy
        levels_here = {info.order_levels[i] for info in inputs}
        if len(levels_here) > 1:
            # Inputs disagree at this attribute: the common order stops.
            return pad_rest()
        in_level = levels_here.pop()
        lo = min(info.slack.bounds[i][0] for info in inputs)
        hi = max(info.slack.bounds[i][1] for info in inputs)
        region_level = region_levels[dim_idx]
        if in_level == hierarchy.all_level:
            # The inputs stop constraining the order here.
            return pad_rest()
        if in_level < region_level:
            # The input order is finer than the measure's domain: the
            # output is ordered by the coarsened attribute and the
            # slack rescales by card(D_in, D_region); nothing after
            # this attribute survives into the output order.
            out_levels.append(region_level)
            if region_level == hierarchy.all_level:
                out_bounds.append((0, 0))
            else:
                card = max(1, hierarchy.fanout(in_level, region_level))
                out_bounds.append((lo // card - 1, -(-hi // card)))
            return pad_rest()
        out_levels.append(in_level)
        out_bounds.append((lo, hi))
        if lo != hi:
            # Asynchronous at this attribute: finer positions cannot be
            # trusted, stop the order here.
            return pad_rest()
    return StreamInfo(tuple(out_levels), Slack(tuple(out_bounds)))
