"""Regions: hyper-rectangles in cube space (Section 2.2)."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.errors import GranularityError
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import Record


@dataclass(frozen=True)
class Region:
    """A region ``c = (v_1, ..., v_d)`` at a fixed granularity.

    ``values`` always has full dimension width; dimensions at ``D_ALL``
    carry the single ``ALL`` value.
    """

    granularity: Granularity
    values: tuple

    def __post_init__(self) -> None:
        if len(self.values) != self.granularity.schema.num_dimensions:
            raise GranularityError(
                f"region has {len(self.values)} values for "
                f"{self.granularity.schema.num_dimensions} dimensions"
            )

    def contains_record(self, record: Record) -> bool:
        """Membership test of the paper's ``coverage`` definition."""
        return self.granularity.key_of_record(record) == self.values

    def parent_at(self, coarser: Granularity) -> "Region":
        """The unique ancestor region at a coarser granularity."""
        key = coarser.generalize_key(self.values, self.granularity)
        return Region(coarser, key)

    def __str__(self) -> str:
        schema = self.granularity.schema
        parts = []
        for i, dim in enumerate(schema.dimensions):
            level = self.granularity.levels[i]
            if level != dim.all_level:
                rendered = dim.hierarchy.format_value(self.values[i], level)
                parts.append(f"{dim.abbrev}={rendered}")
        return "<" + ", ".join(parts) + ">" if parts else "<ALL>"


def coverage(region: Region, records: Iterable[Record]) -> Iterator[Record]:
    """Yield the records covered by ``region`` (the paper's coverage(c))."""
    for record in records:
        if region.contains_record(record):
            yield record


def is_parent_region(parent: Region, child: Region) -> bool:
    """The ``child <_C parent`` containment test of Section 2.2.

    True when the parent's granularity is strictly coarser and the
    child's values generalize onto the parent's values.
    """
    if not child.granularity.strictly_finer(parent.granularity):
        return False
    return child.parent_at(parent.granularity).values == parent.values
