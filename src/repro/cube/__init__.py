"""Cube space: granularity vectors, regions, region sets, orders, slack.

Implements Section 2.2 (regions and region sets) and the order/slack
machinery of Section 5.3 (Table 6) that streaming plans are built from.
"""

from repro.cube.granularity import Granularity
from repro.cube.region import Region, coverage, is_parent_region
from repro.cube.region_set import RegionSet
from repro.cube.order import SortKey
from repro.cube.slack import Slack, StreamInfo, compute_order_slack

__all__ = [
    "Granularity",
    "Region",
    "RegionSet",
    "SortKey",
    "Slack",
    "StreamInfo",
    "compute_order_slack",
    "coverage",
    "is_parent_region",
]
