"""Sort keys and stream order vectors (Section 5.2, Proposition 2).

A :class:`SortKey` is an ordering vector
``<K_1:D_1, ..., K_m:D_m>`` — a sequence of (dimension, domain) pairs
that says how a fact table or update stream is sorted.  Proposition 2
lets us fix the *attribute* sequence once (the scan key's) and describe
every stream's order purely by the granularities at which those
attributes appear, padding trailing attributes with ``D_ALL``; the
:class:`SortKey` helpers below implement both views.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.errors import GranularityError, PlanError
from repro.cube.granularity import Granularity, Key
from repro.schema.dataset_schema import DatasetSchema, Record
from repro.schema.domain import Mapper


class SortKey:
    """An ordering vector over a schema.

    ``parts`` is a sequence of ``(dim_index, level)`` pairs, most
    significant first.  ``SortKey.from_spec(schema, [("t", "Hour"),
    ("T", "IP")])`` mirrors the paper's ``<t:Hour, T:IP>`` notation.
    """

    __slots__ = ("schema", "parts", "_record_mapper")

    def __init__(
        self,
        schema: DatasetSchema,
        parts: Sequence[tuple[int, int]],
    ) -> None:
        seen = set()
        for dim_idx, level in parts:
            if not 0 <= dim_idx < schema.num_dimensions:
                raise GranularityError(f"bad dimension index {dim_idx}")
            dim = schema.dimensions[dim_idx]
            if not 0 <= level <= dim.all_level:
                raise GranularityError(
                    f"bad level {level} for dimension {dim.name}"
                )
            if dim_idx in seen:
                raise GranularityError(
                    f"dimension {dim.name} appears twice in sort key"
                )
            seen.add(dim_idx)
        self.schema = schema
        self.parts = tuple((int(d), int(lv)) for d, lv in parts)
        self._record_mapper: Callable[[Record], Key] | None = None

    def __getstate__(
        self,
    ) -> tuple[DatasetSchema, tuple[tuple[int, int], ...]]:
        """Pickle only ``(schema, parts)`` — the cached record mapper
        is a compiled closure, rebuilt lazily after unpickling."""
        return (self.schema, self.parts)

    def __setstate__(
        self, state: tuple[DatasetSchema, tuple[tuple[int, int], ...]]
    ) -> None:
        schema, parts = state
        self.schema = schema
        self.parts = parts
        self._record_mapper = None

    @classmethod
    def from_spec(
        cls,
        schema: DatasetSchema,
        spec: Iterable[tuple[str, str]],
    ) -> "SortKey":
        """Build from ``[("t", "Hour"), ("U", "IP")]``-style specs."""
        parts = []
        for dim_name, domain_name in spec:
            idx = schema.dim_index(dim_name)
            level = schema.dimensions[idx].level_of(domain_name)
            parts.append((idx, level))
        return cls(schema, parts)

    # -- record/key mapping ------------------------------------------------

    def map_record(self, record: Record) -> Key:
        """Project a base record onto this order (mapKey of Table 8)."""
        return self.record_mapper()(record)

    def record_mapper(self) -> Callable[[Record], Key]:
        """A compiled ``record -> order key`` closure (cached)."""
        if self._record_mapper is None:
            dims = self.schema.dimensions
            steps: tuple[tuple[int, Mapper | None], ...] = tuple(
                (d, dims[d].hierarchy.mapper(0, lv))
                for d, lv in self.parts
            )

            def mapper(
                record: Record,
                _steps: tuple[tuple[int, Mapper | None], ...] = steps,
            ) -> Key:
                return tuple(
                    record[d] if fn is None else fn(record[d])
                    for d, fn in _steps
                )

            self._record_mapper = mapper
        return self._record_mapper

    def map_key(self, key: Key, key_granularity: Granularity) -> Key:
        """Project a region key at ``key_granularity`` onto this order.

        Every part of the sort key must be at a level coarser-or-equal
        to the key's granularity for that dimension — otherwise the key
        simply does not carry that much detail.
        """
        dims = self.schema.dimensions
        out = []
        for d, lv in self.parts:
            have = key_granularity.levels[d]
            if lv < have:
                raise PlanError(
                    f"order needs dimension {dims[d].name} at level {lv} "
                    f"but the key only has level {have}"
                )
            out.append(dims[d].generalize(key[d], have, lv))
        return tuple(out)

    def sort_records(self, records: Iterable[Record]) -> list[Record]:
        """Sort base records by this key (in memory)."""
        return sorted(records, key=self.map_record)

    # -- structure ----------------------------------------------------------

    def prefix(self, length: int) -> "SortKey":
        return SortKey(self.schema, self.parts[:length])

    def coarsened_to(self, granularity: Granularity) -> "SortKey":
        """This key with each part lifted to at least ``granularity``.

        Parts whose dimension sits at ``D_ALL`` in the granularity are
        dropped along with everything after them only if they stop
        discriminating; here we keep the conventional padding and simply
        lift levels, truncating at the first ``D_ALL`` part (a constant
        contributes nothing to an order and neither can anything after
        it, because records tied on a constant are tied arbitrarily).
        """
        parts = []
        for d, lv in self.parts:
            lifted = max(lv, granularity.levels[d])
            if lifted == self.schema.dimensions[d].all_level:
                break
            parts.append((d, lifted))
        return SortKey(self.schema, parts)

    def more_general_than(self, other: "SortKey") -> bool:
        """The paper's "more general" relation between key vectors.

        True when ``self`` is a (possibly shorter) prefix of ``other``
        attribute-wise, with each level coarser or equal.
        """
        if len(self.parts) > len(other.parts):
            return False
        for (d1, l1), (d2, l2) in zip(self.parts, other.parts):
            if d1 != d2 or l1 < l2:
                return False
        return True

    # -- full-width view (Proposition 2) ----------------------------------

    def padded_levels(self) -> tuple[int, ...]:
        """Levels per scan-key position, padded with ``D_ALL``.

        The result is aligned with *this key's own* attribute sequence
        and is primarily useful on the dataset scan key, against which
        stream orders are expressed (Proposition 2).
        """
        return tuple(lv for __, lv in self.parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SortKey)
            and self.schema is other.schema
            and self.parts == other.parts
        )

    def __hash__(self) -> int:
        return hash((id(self.schema), self.parts))

    def __repr__(self) -> str:
        dims = self.schema.dimensions
        rendered = ", ".join(
            f"{dims[d].abbrev}:{dims[d].hierarchy.domain(lv).name}"
            for d, lv in self.parts
        )
        return f"<{rendered}>"
