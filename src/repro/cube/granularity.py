"""Granularity vectors (Section 2.2).

A granularity vector assigns one domain (level) to every dimension of a
schema: ``(X_1:D_1, ..., X_d:D_d)``.  The paper's shorthand omits
attributes at ``D_ALL``; :meth:`Granularity.from_spec` mirrors that —
``Granularity.from_spec(schema, {"t": "Hour", "U": "IP"})`` puts every
unlisted dimension at ``ALL``.

The partial order ``<_G`` compares granularities component-wise: a
granularity ``G1`` is *finer or equal* to ``G2`` when every one of its
domains is at least as specific.  Aggregation (roll-up) is only legal
from finer to coarser.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.errors import GranularityError
from repro.schema.dataset_schema import DatasetSchema, Record
from repro.schema.domain import Mapper

#: A region key: one generalized value per dimension.
Key = tuple[Any, ...]


class Granularity:
    """An immutable granularity vector bound to a schema.

    ``levels[i]`` is the hierarchy level of dimension ``i``; higher
    levels are coarser and the maximum level is ``D_ALL``.
    """

    __slots__ = (
        "schema",
        "levels",
        "_key_dims",
        "_record_key_fn",
        "_lift_cache",
    )

    def __init__(self, schema: DatasetSchema, levels: Sequence[int]) -> None:
        if len(levels) != schema.num_dimensions:
            raise GranularityError(
                f"granularity has {len(levels)} entries for "
                f"{schema.num_dimensions} dimensions"
            )
        for i, level in enumerate(levels):
            dim = schema.dimensions[i]
            if not 0 <= level <= dim.all_level:
                raise GranularityError(
                    f"level {level} out of range for dimension {dim.name} "
                    f"(0..{dim.all_level})"
                )
        self.schema = schema
        self.levels = tuple(levels)
        # Dimensions that actually key a region at this granularity
        # (everything not at D_ALL).
        self._key_dims = tuple(
            i
            for i in range(schema.num_dimensions)
            if levels[i] != schema.dimensions[i].all_level
        )
        self._record_key_fn: Callable[[Record], Key] | None = None
        self._lift_cache: dict[tuple[int, ...], Callable[[Key], Key]] = {}

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> tuple[DatasetSchema, tuple[int, ...]]:
        """Pickle only ``(schema, levels)``.

        The compiled key/lift closures are per-process caches and are
        not picklable; workers rebuild them lazily on first use.
        """
        return (self.schema, self.levels)

    def __setstate__(
        self, state: tuple[DatasetSchema, tuple[int, ...]]
    ) -> None:
        schema, levels = state
        self.__init__(schema, levels)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_spec(
        cls, schema: DatasetSchema, spec: Mapping[str, str]
    ) -> "Granularity":
        """Build from the paper's shorthand, e.g. ``{"t": "Hour"}``.

        Keys are dimension names or abbreviations; values are domain
        names.  Unlisted dimensions sit at ``D_ALL``.
        """
        levels = [dim.all_level for dim in schema.dimensions]
        for dim_name, domain_name in spec.items():
            idx = schema.dim_index(dim_name)
            levels[idx] = schema.dimensions[idx].level_of(domain_name)
        return cls(schema, levels)

    @classmethod
    def base(cls, schema: DatasetSchema) -> "Granularity":
        """The fact table's granularity ``G_0`` — all base domains."""
        return cls(schema, [0] * schema.num_dimensions)

    @classmethod
    def all(cls, schema: DatasetSchema) -> "Granularity":
        """The coarsest granularity — every dimension at ``D_ALL``."""
        return cls(schema, [d.all_level for d in schema.dimensions])

    # -- partial order ----------------------------------------------------

    def finer_or_equal(self, other: "Granularity") -> bool:
        """The ``<=_G`` test: is ``self`` at least as specific as ``other``?

        ``self <=_G other`` holds when every domain of ``self`` is a
        specialization (lower level) of the corresponding domain of
        ``other``; this is the precondition of the aggregation operator.
        """
        self._check_same_schema(other)
        return all(a <= b for a, b in zip(self.levels, other.levels))

    def strictly_finer(self, other: "Granularity") -> bool:
        return self.finer_or_equal(other) and self.levels != other.levels

    def _check_same_schema(self, other: "Granularity") -> None:
        if self.schema is not other.schema:
            raise GranularityError(
                "granularities belong to different schemas"
            )

    # -- keys ---------------------------------------------------------------

    @property
    def key_dims(self) -> tuple[int, ...]:
        """Indices of dimensions below ``D_ALL`` (the region key dims)."""
        return self._key_dims

    def key_of_record(self, record: Record) -> Key:
        """Region key of the record: generalized value per dimension.

        Dimensions at ``D_ALL`` contribute the constant ``ALL`` value, so
        keys of one granularity always have the full dimension width and
        are directly comparable.
        """
        return self.record_key_fn()(record)

    def record_key_fn(self) -> Callable[[Record], Key]:
        """A compiled ``record -> region key`` closure (cached)."""
        if self._record_key_fn is None:
            mappers: tuple[Mapper | None, ...] = tuple(
                dim.hierarchy.mapper(0, self.levels[i])
                for i, dim in enumerate(self.schema.dimensions)
            )

            def key_of(
                record: Record,
                _mappers: tuple[Mapper | None, ...] = mappers,
            ) -> Key:
                return tuple(
                    record[i] if fn is None else fn(record[i])
                    for i, fn in enumerate(_mappers)
                )

            self._record_key_fn = key_of
        return self._record_key_fn

    def generalize_key(self, key: Key, finer: "Granularity") -> Key:
        """Roll a key up from a finer granularity to this one.

        Raises:
            GranularityError: if ``finer`` is not actually finer-or-equal.
        """
        return self.lift_fn(finer)(key)

    def lift_fn(self, finer: "Granularity") -> Callable[[Key], Key]:
        """A compiled ``finer key -> this key`` closure (cached).

        Raises:
            GranularityError: if ``finer`` is not actually finer-or-equal.
        """
        cached = self._lift_cache.get(finer.levels)
        if cached is not None:
            return cached
        if not finer.finer_or_equal(self):
            raise GranularityError(
                f"{finer} is not finer than {self}; cannot roll up"
            )
        mappers: tuple[Mapper | None, ...] = tuple(
            dim.hierarchy.mapper(finer.levels[i], self.levels[i])
            for i, dim in enumerate(self.schema.dimensions)
        )

        def lift(
            key: Key, _mappers: tuple[Mapper | None, ...] = mappers
        ) -> Key:
            return tuple(
                key[i] if fn is None else fn(key[i])
                for i, fn in enumerate(_mappers)
            )

        self._lift_cache[finer.levels] = lift
        return lift

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Granularity)
            and self.schema is other.schema
            and self.levels == other.levels
        )

    def __hash__(self) -> int:
        return hash((id(self.schema), self.levels))

    def __repr__(self) -> str:
        parts = []
        for i, dim in enumerate(self.schema.dimensions):
            if self.levels[i] != dim.all_level:
                dom = dim.hierarchy.domain(self.levels[i]).name
                parts.append(f"{dim.abbrev}:{dom}")
        return "(" + ", ".join(parts) + ")" if parts else "(ALL)"
