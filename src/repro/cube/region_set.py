"""Region sets: all regions sharing one granularity (Section 2.2).

The paper writes region sets with square brackets — ``[t:Hour, U:IP]``
is the set of every (hour, source-IP) region.  A region set over a
finite dataset has one *populated* region per distinct key; this module
materializes those from records.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.cube.granularity import Granularity, Key
from repro.cube.region import Region
from repro.schema.dataset_schema import DatasetSchema, Record


class RegionSet:
    """The set of regions of one granularity populated by a dataset."""

    def __init__(self, granularity: Granularity) -> None:
        self.granularity = granularity

    @classmethod
    def from_spec(
        cls, schema: DatasetSchema, spec: Mapping[str, str]
    ) -> "RegionSet":
        """Shorthand: ``RegionSet.from_spec(schema, {"t": "Hour"})``."""
        return cls(Granularity.from_spec(schema, spec))

    def keys(self, records: Iterable[Record]) -> set[Key]:
        """Distinct region keys populated by ``records``."""
        key_of = self.granularity.key_of_record
        return {key_of(record) for record in records}

    def regions(self, records: Iterable[Record]) -> Iterator[Region]:
        """Populated regions, in ascending key order (deterministic)."""
        for key in sorted(self.keys(records)):
            yield Region(self.granularity, key)

    def partition(
        self, records: Iterable[Record]
    ) -> dict[tuple, list[Record]]:
        """Group records by region key — the coverage of every region."""
        key_of = self.granularity.key_of_record
        groups: dict[tuple, list[Record]] = {}
        for record in records:
            groups.setdefault(key_of(record), []).append(record)
        return groups

    def __repr__(self) -> str:
        inner = repr(self.granularity)
        return "[" + inner.strip("()") + "]"
