"""Composite Subset Measures — a reproduction of Chen et al., VLDB 2006.

A standalone, lightweight analysis system for *composite subset
measures* over multidimensional data: measures computed not only from
raw records but from the measures of related regions in cube space.

Quickstart::

    from repro import (
        AggregationWorkflow, Field, Sibling, SortScanEngine,
        network_log_schema,
    )
    from repro.data import honeynet_dataset

    schema = network_log_schema()
    wf = AggregationWorkflow(schema)
    wf.basic("Count", {"t": "Hour", "U": "IP"}, agg="count")
    wf.rollup("busy", {"t": "Hour"}, source="Count",
              where=Field("M") > 5, agg="count")
    wf.moving_window("trend", {"t": "Hour"}, source="busy",
                     windows={"t": (0, 5)}, agg="avg")

    result = SortScanEngine().evaluate(honeynet_dataset(10_000), wf)
    print(result["trend"].pretty())

Layers (bottom-up): :mod:`repro.schema` (domains & hierarchies),
:mod:`repro.cube` (regions & granularities), :mod:`repro.algebra`
(the AW-RA algebra), :mod:`repro.workflow` (the pictorial query
language), :mod:`repro.engine` (relational / single-scan / sort-scan /
multi-pass evaluation), :mod:`repro.optimizer` (sort-order search),
:mod:`repro.queries` (the paper's query library), :mod:`repro.bench`
(the figure harness), :mod:`repro.obs` (tracing spans, metrics
registry, per-node profiling).
"""

from repro.errors import (
    AlgebraError,
    EvaluationError,
    GranularityError,
    MemoryBudgetExceeded,
    PlanError,
    ReproError,
    SchemaError,
    StorageError,
    WorkflowError,
)
from repro.schema import (
    CategoricalHierarchy,
    DatasetSchema,
    Dimension,
    IPv4Hierarchy,
    PortHierarchy,
    TimeHierarchy,
    UniformHierarchy,
    format_ip,
    network_log_schema,
    parse_ip,
    synthetic_schema,
)
from repro.cube import Granularity, Region, RegionSet, SortKey
from repro.aggregates import AggSpec, get_aggregate
from repro.algebra import (
    ChildParent,
    CombineFn,
    Field,
    Lags,
    ParentChild,
    SelfMatch,
    Sibling,
    explain,
    to_formula,
)
from repro.workflow import AggregationWorkflow, to_dot
from repro.storage import (
    FlatFileDataset,
    InMemoryDataset,
    MeasureTable,
    MemorySink,
    write_flatfile,
)
from repro.engine import (
    EvalResult,
    EvalStats,
    MultiPassEngine,
    PartitionedEngine,
    RelationalEngine,
    SingleScanEngine,
    SortScanEngine,
    build_streaming_plan,
    compile_workflow,
)
from repro.optimizer import best_sort_key, plan_passes
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    set_tracing,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SchemaError",
    "GranularityError",
    "AlgebraError",
    "WorkflowError",
    "PlanError",
    "EvaluationError",
    "MemoryBudgetExceeded",
    "StorageError",
    # schema
    "DatasetSchema",
    "Dimension",
    "UniformHierarchy",
    "TimeHierarchy",
    "IPv4Hierarchy",
    "PortHierarchy",
    "CategoricalHierarchy",
    "network_log_schema",
    "synthetic_schema",
    "parse_ip",
    "format_ip",
    # cube
    "Granularity",
    "Region",
    "RegionSet",
    "SortKey",
    # algebra / workflow
    "AggSpec",
    "get_aggregate",
    "Field",
    "SelfMatch",
    "ParentChild",
    "ChildParent",
    "Sibling",
    "Lags",
    "CombineFn",
    "AggregationWorkflow",
    "to_dot",
    "explain",
    "to_formula",
    # storage
    "InMemoryDataset",
    "FlatFileDataset",
    "MeasureTable",
    "MemorySink",
    "write_flatfile",
    # engines
    "RelationalEngine",
    "SingleScanEngine",
    "SortScanEngine",
    "MultiPassEngine",
    "PartitionedEngine",
    "build_streaming_plan",
    "EvalResult",
    "EvalStats",
    "compile_workflow",
    # optimizer
    "best_sort_key",
    "plan_passes",
    # observability
    "Tracer",
    "MetricsRegistry",
    "get_tracer",
    "get_registry",
    "set_tracing",
]
