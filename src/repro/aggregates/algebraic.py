"""Algebraic aggregates: AVG, VARIANCE, STDDEV.

Algebraic functions keep a small fixed-size intermediate state that can
be merged, which is all the streaming engines need.  Variance uses the
numerically stable parallel form of Welford/Chan so that merging partial
states stays exact.
"""

from __future__ import annotations

import math

from repro.aggregates.base import (
    AggregateFunction,
    Kind,
    _is_array,
    _np,
    register_aggregate,
)


class Average(AggregateFunction):
    """AVG: state is ``(count, total)``; NULL on empty groups."""

    name = "avg"
    kind = Kind.ALGEBRAIC

    def create(self) -> tuple[int, float]:
        return (0, 0.0)

    def update(self, state, value):
        if value is None:
            return state
        count, total = state
        return (count + 1, total + value)

    def update_many(self, state, values):
        count, total = state
        if _is_array(values):
            if values.size == 0:
                return state
            # Seed the sequential prefix fold with the running total so
            # the float additions happen in exactly the scalar order.
            acc = _np.add.accumulate(_np.concatenate(((total,), values)))
            return (count + int(values.size), acc[-1].item())
        for value in values:
            if value is None:
                continue
            count += 1
            total += value
        return (count, total)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state) -> float | None:
        count, total = state
        if count == 0:
            return None
        return total / count


class Variance(AggregateFunction):
    """Population variance; state is ``(n, mean, M2)`` (Chan et al.)."""

    name = "var"
    kind = Kind.ALGEBRAIC

    def create(self):
        return (0, 0.0, 0.0)

    def update(self, state, value):
        if value is None:
            return state
        n, mean, m2 = state
        n += 1
        delta = value - mean
        mean += delta / n
        m2 += delta * (value - mean)
        return (n, mean, m2)

    def update_many(self, state, values):
        # Welford's recurrence is inherently sequential (each step
        # depends on the previous mean), so the batched form is a tight
        # scalar loop over Python floats — still well ahead of the
        # per-record dispatch it replaces, and trivially bit-identical.
        if _is_array(values):
            values = values.tolist()
        n, mean, m2 = state
        for value in values:
            if value is None:
                continue
            n += 1
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
        return (n, mean, m2)

    def merge(self, left, right):
        n_a, mean_a, m2_a = left
        n_b, mean_b, m2_b = right
        if n_a == 0:
            return right
        if n_b == 0:
            return left
        n = n_a + n_b
        delta = mean_b - mean_a
        mean = mean_a + delta * n_b / n
        m2 = m2_a + m2_b + delta * delta * n_a * n_b / n
        return (n, mean, m2)

    def finalize(self, state) -> float | None:
        n, __, m2 = state
        if n == 0:
            return None
        return m2 / n


class StdDev(Variance):
    """Population standard deviation (sqrt of :class:`Variance`)."""

    name = "stddev"

    def finalize(self, state) -> float | None:
        var = super().finalize(state)
        return None if var is None else math.sqrt(var)


register_aggregate(Average())
register_aggregate(Variance())
register_aggregate(StdDev())
