"""Holistic aggregates: COUNT(DISTINCT ...), MEDIAN.

Holistic functions need state proportional to the group.  They still
work in every engine here — including the streaming ones, where a hash
entry holds the state only until the entry finalizes — but they are the
reason the paper's Figure 6(a) baseline (``COUNT(DISTINCT ...)`` in the
RDBMS) is expensive.
"""

from __future__ import annotations

from statistics import median as _median

from repro.aggregates.base import (
    AggregateFunction,
    Kind,
    _is_array,
    register_aggregate,
)


class CountDistinct(AggregateFunction):
    """COUNT(DISTINCT x): state is the set of values seen."""

    name = "count_distinct"
    kind = Kind.HOLISTIC

    def create(self) -> set:
        return set()

    def update(self, state: set, value) -> set:
        if value is not None:
            state.add(value)
        return state

    def update_many(self, state: set, values) -> set:
        # Holistic fallback: per-value set inserts, on *Python* scalars
        # so states never mix numpy and builtin number types.
        if _is_array(values):
            values = values.tolist()
        for value in values:
            if value is not None:
                state.add(value)
        return state

    def merge(self, left: set, right: set) -> set:
        left |= right
        return left

    def finalize(self, state: set) -> int:
        return len(state)


class Median(AggregateFunction):
    """MEDIAN: state is the list of values seen; NULL on empty groups."""

    name = "median"
    kind = Kind.HOLISTIC

    def create(self) -> list:
        return []

    def update(self, state: list, value) -> list:
        if value is not None:
            state.append(value)
        return state

    def update_many(self, state: list, values) -> list:
        if _is_array(values):
            state.extend(values.tolist())
            return state
        state.extend(
            value for value in values if value is not None
        )
        return state

    def merge(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def finalize(self, state: list) -> float | None:
        if not state:
            return None
        return _median(state)


register_aggregate(CountDistinct())
register_aggregate(Median())
