"""Aggregation functions: distributive, algebraic, and holistic.

The evaluation framework (Section 5.1) relies on the classic Gray et
al. classification: *distributive* and *algebraic* functions can be
maintained with a constant number of registers per hash entry and merged
across partial states, which is what makes single-register streaming
updates possible; *holistic* functions keep unbounded state and are
supported, at a memory cost, everywhere a hash entry lives long enough.
"""

from repro.aggregates.base import (
    AggregateFunction,
    AggSpec,
    Kind,
    get_aggregate,
    register_aggregate,
)
from repro.aggregates.distributive import (
    Count,
    Max,
    Min,
    Sum,
    ConstantAggregate,
)
from repro.aggregates.algebraic import Average, StdDev, Variance
from repro.aggregates.holistic import CountDistinct, Median
from repro.aggregates.sketches import HyperLogLog

__all__ = [
    "AggregateFunction",
    "AggSpec",
    "Kind",
    "get_aggregate",
    "register_aggregate",
    "Count",
    "Sum",
    "Min",
    "Max",
    "ConstantAggregate",
    "Average",
    "Variance",
    "StdDev",
    "CountDistinct",
    "Median",
    "HyperLogLog",
]
