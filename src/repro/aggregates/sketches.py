"""Sketch-based aggregates: bounded-memory approximate distinct counts.

``COUNT(DISTINCT ...)`` is holistic — its exact state grows with the
group (the very reason the paper's Figure 6(a) baseline is expensive).
A HyperLogLog sketch replaces the set with a fixed array of registers
whose *merge* is element-wise max, making approximate distinct counting
effectively algebraic: constant space per hash entry, partial states
mergeable across streams, partitions, and passes — exactly the contract
the evaluation framework needs (Section 5.1).

The implementation is self-contained (Flajolet et al. 2007 with the
standard small-range linear-counting correction) over Python's built-in
hashing, salted so that register assignment is stable per process.
"""

from __future__ import annotations

import hashlib
import math
import struct

from repro.errors import AlgebraError
from repro.aggregates.base import (
    AggregateFunction,
    Kind,
    _is_array,
    register_aggregate,
)

#: Two-power register counts keep index extraction a mask.
_MIN_PRECISION = 4
_MAX_PRECISION = 16


def _alpha(m: int) -> float:
    """Bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


def _hash64(value) -> int:
    """A stable 64-bit hash of an arbitrary (stringified) value.

    Python's builtin ``hash`` is salted per process, which would make
    results irreproducible run to run; blake2b is stable and fast
    enough for the register update path.
    """
    digest = hashlib.blake2b(
        repr(value).encode("utf-8", "backslashreplace"), digest_size=8
    ).digest()
    return struct.unpack("<Q", digest)[0]


class HyperLogLog(AggregateFunction):
    """Approximate COUNT DISTINCT in ``2**precision`` bytes per group.

    Args:
        precision: Number of index bits; ``m = 2**precision`` registers
            give a relative standard error of roughly
            ``1.04 / sqrt(m)`` (precision 12 ~ 1.6%).
    """

    kind = Kind.ALGEBRAIC  # fixed-size, mergeable state

    def __init__(self, precision: int = 12) -> None:
        if not _MIN_PRECISION <= precision <= _MAX_PRECISION:
            raise AlgebraError(
                f"precision must be in "
                f"[{_MIN_PRECISION}, {_MAX_PRECISION}], got {precision}"
            )
        self.precision = precision
        self._m = 1 << precision
        self._value_bits = 64 - precision
        self.name = f"approx_distinct[{precision}]"

    def create(self) -> bytearray:
        return bytearray(self._m)

    def update(self, state: bytearray, value) -> bytearray:
        if value is None:
            return state
        hashed = _hash64(value)
        index = hashed & (self._m - 1)
        remainder = hashed >> self.precision
        if remainder == 0:
            rank = self._value_bits + 1
        else:
            rank = self._value_bits - remainder.bit_length() + 1
        if rank > state[index]:
            state[index] = rank
        return state

    def update_many(self, state: bytearray, values) -> bytearray:
        # Sketch fallback: per-value register updates.  Converting to
        # Python scalars first matters for correctness — ``_hash64``
        # hashes ``repr(value)``, and ``repr(numpy.float64(x))`` is not
        # ``repr(x)``.
        if _is_array(values):
            values = values.tolist()
        for value in values:
            state = self.update(state, value)
        return state

    def merge(self, left: bytearray, right: bytearray) -> bytearray:
        for i, value in enumerate(right):
            if value > left[i]:
                left[i] = value
        return left

    def finalize(self, state: bytearray) -> float:
        m = self._m
        inverse_sum = 0.0
        zeros = 0
        for register in state:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        estimate = _alpha(m) * m * m / inverse_sum
        if estimate <= 2.5 * m and zeros:
            # Small-range correction: linear counting.
            estimate = m * math.log(m / zeros)
        return round(estimate)


#: Default instance registered under a friendly name; ~1.6% error.
register_aggregate(HyperLogLog(12))
_named = HyperLogLog(12)
_named.name = "approx_distinct"
register_aggregate(_named)
