"""Aggregate function protocol, specs, and the name registry."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import AlgebraError

try:  # numpy is optional; the batched path is gated on it
    import numpy as _np
except ImportError:  # pragma: no cover - CI installs numpy
    _np = None  # type: ignore[assignment]


def _is_array(values: Any) -> bool:
    """Whether ``values`` is a numpy array (the vectorized fast path)."""
    return _np is not None and isinstance(values, _np.ndarray)


class Kind(enum.Enum):
    """Gray et al. aggregate classification (Section 5.1)."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"


class AggregateFunction:
    """Incremental aggregate: create / update / merge / finalize.

    Subclasses define a *state* value (any Python object) such that:

    - ``create()`` is the state of an empty group;
    - ``update(state, value)`` folds one input value in and returns the
      new state (states may be mutated and returned);
    - ``merge(a, b)`` combines two partial states (legal for
      distributive and algebraic functions; holistic ones implement it
      too, at the cost of unbounded state);
    - ``finalize(state)`` yields the result — ``None`` plays the role
      of SQL NULL for empty groups (except COUNT-like functions, which
      yield 0, matching the left-outer-join semantics of Tables 3/4).

    ``update`` must skip ``None`` inputs (SQL semantics: NULLs are
    ignored by aggregation).
    """

    name: str = ""
    kind: Kind = Kind.DISTRIBUTIVE

    def create(self) -> Any:
        raise NotImplementedError

    def update(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> float | None:
        raise NotImplementedError

    # -- batched updates ----------------------------------------------
    #
    # The columnar engines fold whole group segments at once.  The
    # contract is strict: ``update_many(state, values)`` must return a
    # state *bit-identical* to folding ``values`` left-to-right through
    # ``update`` (same arithmetic, same order — e.g. float sums use
    # ``numpy.add.accumulate``, which is sequential, never the pairwise
    # ``numpy.sum``), and the returned state must hold plain Python
    # scalars so downstream serialization never sees numpy types.  The
    # defaults below simply loop, which is what holistic aggregates and
    # sketches keep (the automatic per-row fallback).

    def update_many(self, state: Any, values: Any) -> Any:
        """Fold a batch of values (numpy array or list, which may
        contain ``None``); bit-identical to N ``update`` calls."""
        if _is_array(values):
            values = values.tolist()
        for value in values:
            state = self.update(state, value)
        return state

    def update_repeat(self, state: Any, value: Any, count: int) -> Any:
        """Fold ``count`` copies of one value (the COUNT(*) path);
        bit-identical to ``count`` ``update`` calls."""
        for _ in range(count):
            state = self.update(state, value)
        return state

    # Convenience for the non-streaming engines and tests.
    def over(self, values) -> float | None:
        """Aggregate an iterable of values in one shot."""
        state = self.create()
        for value in values:
            state = self.update(state, value)
        return self.finalize(state)

    def __repr__(self) -> str:
        return f"{self.name}()"


_REGISTRY: dict[str, AggregateFunction] = {}


def register_aggregate(fn: AggregateFunction) -> AggregateFunction:
    """Register an aggregate instance under its name (case-insensitive)."""
    key = fn.name.lower()
    if not key:
        raise AlgebraError("aggregate function has no name")
    _REGISTRY[key] = fn
    return fn


def get_aggregate(name: str) -> AggregateFunction:
    """Look an aggregate up by name (``"sum"``, ``"count"``, ...)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AlgebraError(
            f"unknown aggregate {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def all_aggregates() -> dict[str, AggregateFunction]:
    """A snapshot of the registry — every registered aggregate by name.

    Used by the equivalence test pack to assert the ``update_many``
    contract for *every* aggregate, including ones registered later.
    """
    return dict(_REGISTRY)


class AggSpec:
    """An aggregation *call*: a function applied to an input field.

    ``input_field`` selects what is fed to the function:

    - ``"*"`` — count-star style: the constant 1 per input row;
    - a measure attribute name — for aggregations over the fact table;
    - ``"M"`` — the measure value of a source measure table (the only
      measure a table carries, per the paper's ``T:<G, M>`` schema).
    """

    __slots__ = ("function", "input_field")

    def __init__(self, function, input_field: str = "M") -> None:
        if isinstance(function, str):
            function = get_aggregate(function)
        if not isinstance(function, AggregateFunction):
            raise AlgebraError(
                f"not an aggregate function: {function!r}"
            )
        self.function = function
        self.input_field = input_field

    def __repr__(self) -> str:
        return f"{self.function.name}({self.input_field})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggSpec)
            and self.function is other.function
            and self.input_field == other.input_field
        )

    def __hash__(self) -> int:
        return hash((id(self.function), self.input_field))
