"""Aggregate function protocol, specs, and the name registry."""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import AlgebraError


class Kind(enum.Enum):
    """Gray et al. aggregate classification (Section 5.1)."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"


class AggregateFunction:
    """Incremental aggregate: create / update / merge / finalize.

    Subclasses define a *state* value (any Python object) such that:

    - ``create()`` is the state of an empty group;
    - ``update(state, value)`` folds one input value in and returns the
      new state (states may be mutated and returned);
    - ``merge(a, b)`` combines two partial states (legal for
      distributive and algebraic functions; holistic ones implement it
      too, at the cost of unbounded state);
    - ``finalize(state)`` yields the result — ``None`` plays the role
      of SQL NULL for empty groups (except COUNT-like functions, which
      yield 0, matching the left-outer-join semantics of Tables 3/4).

    ``update`` must skip ``None`` inputs (SQL semantics: NULLs are
    ignored by aggregation).
    """

    name: str = ""
    kind: Kind = Kind.DISTRIBUTIVE

    def create(self) -> Any:
        raise NotImplementedError

    def update(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> float | None:
        raise NotImplementedError

    # Convenience for the non-streaming engines and tests.
    def over(self, values) -> float | None:
        """Aggregate an iterable of values in one shot."""
        state = self.create()
        for value in values:
            state = self.update(state, value)
        return self.finalize(state)

    def __repr__(self) -> str:
        return f"{self.name}()"


_REGISTRY: dict[str, AggregateFunction] = {}


def register_aggregate(fn: AggregateFunction) -> AggregateFunction:
    """Register an aggregate instance under its name (case-insensitive)."""
    key = fn.name.lower()
    if not key:
        raise AlgebraError("aggregate function has no name")
    _REGISTRY[key] = fn
    return fn


def get_aggregate(name: str) -> AggregateFunction:
    """Look an aggregate up by name (``"sum"``, ``"count"``, ...)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AlgebraError(
            f"unknown aggregate {name!r}; have {sorted(_REGISTRY)}"
        ) from None


class AggSpec:
    """An aggregation *call*: a function applied to an input field.

    ``input_field`` selects what is fed to the function:

    - ``"*"`` — count-star style: the constant 1 per input row;
    - a measure attribute name — for aggregations over the fact table;
    - ``"M"`` — the measure value of a source measure table (the only
      measure a table carries, per the paper's ``T:<G, M>`` schema).
    """

    __slots__ = ("function", "input_field")

    def __init__(self, function, input_field: str = "M") -> None:
        if isinstance(function, str):
            function = get_aggregate(function)
        if not isinstance(function, AggregateFunction):
            raise AlgebraError(
                f"not an aggregate function: {function!r}"
            )
        self.function = function
        self.input_field = input_field

    def __repr__(self) -> str:
        return f"{self.function.name}({self.input_field})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggSpec)
            and self.function is other.function
            and self.input_field == other.input_field
        )

    def __hash__(self) -> int:
        return hash((id(self.function), self.input_field))
