"""Distributive aggregates: COUNT, SUM, MIN, MAX, and constants."""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import (
    AggregateFunction,
    Kind,
    _is_array,
    _np,
    register_aggregate,
)


class Count(AggregateFunction):
    """COUNT: number of non-NULL inputs; 0 on empty groups."""

    name = "count"
    kind = Kind.DISTRIBUTIVE

    def create(self) -> int:
        return 0

    def update(self, state: int, value: Any) -> int:
        if value is None:
            return state
        return state + 1

    def update_many(self, state: int, values: Any) -> int:
        if _is_array(values):
            # Arrays carry no NULLs; integer addition is exact.
            return state + int(values.size)
        return state + sum(1 for value in values if value is not None)

    def update_repeat(self, state: int, value: Any, count: int) -> int:
        if value is None:
            return state
        return state + count

    def merge(self, left: int, right: int) -> int:
        return left + right

    def finalize(self, state: int) -> int:
        return state


class Sum(AggregateFunction):
    """SUM: NULL (None) on empty groups, per SQL."""

    name = "sum"
    kind = Kind.DISTRIBUTIVE

    def create(self) -> float | None:
        return None

    def update(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def update_many(self, state, values):
        if _is_array(values):
            if values.size == 0:
                return state
            if state is not None:
                values = _np.concatenate(((state,), values))
            # accumulate folds strictly left-to-right — unlike
            # numpy.sum's pairwise tree — so the final prefix total is
            # bit-identical to the scalar update loop.
            return _np.add.accumulate(values)[-1].item()
        for value in values:
            if value is None:
                continue
            state = value if state is None else state + value
        return state

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    def finalize(self, state):
        return state


class Min(AggregateFunction):
    """MIN: NULL (None) on empty groups, per SQL."""

    name = "min"
    kind = Kind.DISTRIBUTIVE

    def create(self):
        return None

    def update(self, state, value):
        if value is None:
            return state
        return value if state is None else min(state, value)

    def update_many(self, state, values):
        if _is_array(values):
            if values.size == 0:
                return state
            low = values.min().item()
            return low if state is None else min(state, low)
        for value in values:
            if value is None:
                continue
            state = value if state is None else min(state, value)
        return state

    def update_repeat(self, state, value, count):
        if value is None or count <= 0:
            return state
        return value if state is None else min(state, value)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)

    def finalize(self, state):
        return state


class Max(AggregateFunction):
    """MAX: NULL (None) on empty groups, per SQL."""

    name = "max"
    kind = Kind.DISTRIBUTIVE

    def create(self):
        return None

    def update(self, state, value):
        if value is None:
            return state
        return value if state is None else max(state, value)

    def update_many(self, state, values):
        if _is_array(values):
            if values.size == 0:
                return state
            high = values.max().item()
            return high if state is None else max(state, high)
        for value in values:
            if value is None:
                continue
            state = value if state is None else max(state, value)
        return state

    def update_repeat(self, state, value, count):
        if value is None or count <= 0:
            return state
        return value if state is None else max(state, value)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)

    def finalize(self, state):
        return state


class ConstantAggregate(AggregateFunction):
    """Yields a constant regardless of input.

    This is the paper's ``g_{(t:Hour),0} D`` idiom (Section 4): an
    aggregation whose only job is to materialize the *cells* of a region
    set so that a match join has keys to attach results to.
    """

    kind = Kind.DISTRIBUTIVE

    def __init__(self, value: float = 0) -> None:
        self.value = value
        self.name = f"const[{value}]"

    def create(self):
        return self.value

    def update(self, state, value):
        return state

    def update_many(self, state, values):
        return state

    def update_repeat(self, state, value, count):
        return state

    def merge(self, left, right):
        return left

    def finalize(self, state):
        return state


register_aggregate(Count())
register_aggregate(Sum())
register_aggregate(Min())
register_aggregate(Max())
register_aggregate(ConstantAggregate(0))
# A friendlier alias for the cell-materializing constant.
_cells = ConstantAggregate(0)
_cells.name = "cells"
register_aggregate(_cells)
