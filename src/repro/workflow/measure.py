"""Measure descriptors — the ovals of an aggregation workflow."""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.aggregates.base import AggSpec
from repro.algebra.conditions import MatchCondition
from repro.algebra.expr import CombineFn
from repro.algebra.predicates import Predicate
from repro.cube.granularity import Granularity


class MeasureKind(enum.Enum):
    """How a measure's value is produced."""

    BASIC = "basic"  # aggregation of fact-table records
    ROLLUP = "rollup"  # child/parent aggregation of another measure
    MATCH = "match"  # match join (self / parent-child / sibling)
    COMBINE = "combine"  # combine join of same-granularity measures
    FILTER = "filter"  # σ over another measure, as a named output


class Measure:
    """One oval: a named measure over a region set.

    Instances are created through :class:`AggregationWorkflow` builder
    methods, never directly; the workflow owns naming, dependency
    wiring, and validation.
    """

    def __init__(
        self,
        name: str,
        granularity: Granularity,
        kind: MeasureKind,
        agg: AggSpec | None = None,
        where: Predicate | None = None,
        source: str | None = None,
        keys: str | None = None,
        cond: MatchCondition | None = None,
        inputs: Sequence[str] = (),
        fn: CombineFn | None = None,
        hidden: bool = False,
    ) -> None:
        self.name = name
        self.granularity = granularity
        self.kind = kind
        self.agg = agg
        self.where = where
        self.source = source
        self.keys = keys
        self.cond = cond
        self.inputs = tuple(inputs)
        self.fn = fn
        #: Hidden measures (auto-generated cell providers) are computed
        #: but not reported as query outputs.
        self.hidden = hidden

    def dependencies(self) -> tuple[str, ...]:
        """Names of measures this one is computed from."""
        deps = []
        if self.source is not None:
            deps.append(self.source)
        if self.keys is not None and self.keys not in deps:
            deps.append(self.keys)
        for name in self.inputs:
            if name not in deps:
                deps.append(name)
        return tuple(deps)

    def __repr__(self) -> str:
        return (
            f"Measure({self.name!r}, {self.granularity!r}, "
            f"{self.kind.value})"
        )
