"""GraphViz DOT export of aggregation workflows.

Renders the paper's pictorial convention (Figure 3): one rectangle
(cluster) per region set, one oval per measure inside its region set's
rectangle, and computational arcs between ovals.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.workflow.workflow import AggregationWorkflow


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(workflow: "AggregationWorkflow") -> str:
    """Render ``workflow`` as GraphViz DOT source."""
    lines = [
        f'digraph "{_dot_escape(workflow.name)}" {{',
        "  rankdir=BT;",
        '  node [shape=ellipse, fontname="Helvetica"];',
    ]
    # Group measures by region set (granularity).
    by_gran: dict[str, list[str]] = {}
    for name, measure in workflow.measures.items():
        by_gran.setdefault(repr(measure.granularity), []).append(name)

    for cluster_idx, (gran_repr, names) in enumerate(sorted(by_gran.items())):
        lines.append(f"  subgraph cluster_{cluster_idx} {{")
        lines.append(f'    label="{_dot_escape(gran_repr)}";')
        lines.append("    style=rounded;")
        for name in names:
            measure = workflow.measures[name]
            label_parts = [name]
            if measure.agg is not None:
                label_parts.append(repr(measure.agg))
            if measure.fn is not None:
                label_parts.append(repr(measure.fn))
            if measure.where is not None:
                label_parts.append(f"σ: {measure.where!r}")
            label = _dot_escape("\\n".join(label_parts))
            style = ', style=dashed' if measure.hidden else ""
            lines.append(f'    "{_dot_escape(name)}" [label="{label}"{style}];')
        lines.append("  }")

    for name, measure in workflow.measures.items():
        for dep in measure.dependencies():
            attrs = ""
            if measure.cond is not None and dep == measure.source:
                attrs = f' [label="{_dot_escape(repr(measure.cond))}"]'
            lines.append(
                f'  "{_dot_escape(dep)}" -> "{_dot_escape(name)}"{attrs};'
            )
    lines.append("}")
    return "\n".join(lines)
