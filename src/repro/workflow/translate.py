"""Workflow-to-algebra translation (Theorem 2).

Every measure of an aggregation workflow maps to one AW-RA expression,
mirroring the constructions in Section 4 of the paper:

- basic measure → ``g_{G,agg}(σ(D))``;
- rollup → ``g_{G,agg}(σ(source))`` (the simplified child/parent form);
- match → ``keys ⋈_{cond,agg} σ(source)``;
- combine → ``input_0 ⋈̄_fc (input_1, ..., input_n)``.

Sub-expressions are shared by object identity so that downstream
compilation evaluates each measure exactly once, no matter how many
measures consume it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import WorkflowError
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.workflow.measure import Measure, MeasureKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.workflow.workflow import AggregationWorkflow


def workflow_to_algebra(
    workflow: "AggregationWorkflow",
) -> dict[str, Expr]:
    """Translate every measure of ``workflow`` into an AW-RA expression.

    Returns:
        Mapping of measure name → expression.  Expressions for shared
        dependencies are the *same objects*, preserving the workflow's
        DAG shape inside the algebra.
    """
    fact = FactTable(workflow.schema)
    exprs: dict[str, Expr] = {}
    for name in workflow.order():
        exprs[name] = _translate_measure(
            workflow.measures[name], fact, exprs
        )
    return exprs


def _filtered(expr: Expr, measure: Measure) -> Expr:
    """Apply the measure's arc selection, if any."""
    if measure.where is None:
        return expr
    return Select(expr, measure.where)


def _translate_measure(
    measure: Measure, fact: FactTable, exprs: dict[str, Expr]
) -> Expr:
    if measure.kind is MeasureKind.BASIC:
        return Aggregate(
            _filtered(fact, measure), measure.granularity, measure.agg
        )
    if measure.kind is MeasureKind.ROLLUP:
        source = _filtered(exprs[measure.source], measure)
        return Aggregate(source, measure.granularity, measure.agg)
    if measure.kind is MeasureKind.MATCH:
        keys = exprs[measure.keys]
        source = _filtered(exprs[measure.source], measure)
        return MatchJoin(keys, source, measure.cond, measure.agg)
    if measure.kind is MeasureKind.FILTER:
        return Select(exprs[measure.source], measure.where)
    if measure.kind is MeasureKind.COMBINE:
        base = exprs[measure.inputs[0]]
        rest = [exprs[name] for name in measure.inputs[1:]]
        if not rest:
            # A one-input combine is a scalar map over the base; the
            # algebra still needs the combine-join node for the fn.
            return CombineJoin(base, [base], _first_arg_only(measure.fn))
        return CombineJoin(base, rest, measure.fn)
    raise WorkflowError(f"unknown measure kind {measure.kind!r}")


def _first_arg_only(fn: CombineFn) -> CombineFn:
    """Adapt a 1-ary combine fn to the (base, base) duplicated shape."""
    return CombineFn(
        lambda base_value, __: fn(base_value),
        name=fn.name,
        handles_null=fn.handles_null,
    )
