"""Aggregation workflows — the pictorial query language (Section 4).

An :class:`AggregationWorkflow` is the programmatic form of the paper's
diagrams: region sets (rectangles), measures (ovals), and computational
arcs.  Workflows validate acyclicity, translate to AW-RA expressions
(Theorem 2), and export GraphViz DOT for actual pictures.
"""

from repro.workflow.measure import Measure, MeasureKind
from repro.workflow.workflow import AggregationWorkflow
from repro.workflow.toposort import topological_order
from repro.workflow.dot import to_dot

__all__ = [
    "AggregationWorkflow",
    "Measure",
    "MeasureKind",
    "topological_order",
    "to_dot",
]
