"""The aggregation-workflow builder (Section 4).

``AggregationWorkflow`` is the public query-construction API of this
library.  It mirrors the paper's diagrams: each builder call adds one
measure oval to a region-set rectangle and wires computational arcs.

Example — the paper's Examples 1-4 in workflow form::

    wf = AggregationWorkflow(schema)
    wf.basic("Count", {"t": "Hour", "U": "IP"}, agg="count")
    wf.rollup("sCount", {"t": "Hour"}, source="Count",
              where=Field("M") > 5, agg="count")
    wf.match("avgCount", {"t": "Hour"}, source="sCount",
             cond=Sibling({"t": (0, 5)}), agg="avg")
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.errors import WorkflowError, measure_ref
from repro.aggregates.base import AggSpec
from repro.algebra.conditions import (
    ChildParent,
    MatchCondition,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.algebra.expr import CombineFn, Expr
from repro.algebra.predicates import Predicate
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.measure import Measure, MeasureKind
from repro.workflow.toposort import topological_order

GranSpec = Granularity | Mapping[str, str]
AggLike = AggSpec | str | tuple


class AggregationWorkflow:
    """A named collection of measures over one dataset schema."""

    def __init__(self, schema: DatasetSchema, name: str = "workflow") -> None:
        self.schema = schema
        self.name = name
        self.measures: dict[str, Measure] = {}

    # -- helpers -----------------------------------------------------------

    def _granularity(self, spec: GranSpec) -> Granularity:
        if isinstance(spec, Granularity):
            return spec
        return Granularity.from_spec(self.schema, spec)

    @staticmethod
    def _agg(spec: AggLike, default_field: str) -> AggSpec:
        if isinstance(spec, AggSpec):
            return spec
        if isinstance(spec, tuple):
            function, field = spec
            return AggSpec(function, field)
        return AggSpec(spec, default_field)

    def _add(self, measure: Measure) -> Measure:
        if measure.name in self.measures:
            raise WorkflowError(
                f"{measure_ref(measure.name, self.name)} is already "
                f"defined"
            )
        for dep in measure.dependencies():
            if dep not in self.measures:
                raise WorkflowError(
                    f"{measure_ref(measure.name, self.name)} depends "
                    f"on {dep!r}, which is not defined yet (define "
                    f"dependencies first; recursion is not allowed)"
                )
        self.measures[measure.name] = measure
        return measure

    def __getitem__(self, name: str) -> Measure:
        try:
            return self.measures[name]
        except KeyError:
            raise WorkflowError(f"no measure named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.measures

    # -- builder methods ----------------------------------------------------

    def basic(
        self,
        name: str,
        granularity: GranSpec,
        agg: AggLike = "count",
        where: Predicate | None = None,
        hidden: bool = False,
    ) -> Measure:
        """A basic measure: aggregate fact-table records directly.

        ``agg`` may be an :class:`AggSpec`, a function name (input
        defaults to ``"*"`` — count-star style), or a ``(function,
        field)`` tuple naming a fact-table measure attribute.
        ``where`` filters the *records* before aggregation.
        """
        gran = self._granularity(granularity)
        spec = self._agg(agg, "*")
        return self._add(
            Measure(
                name,
                gran,
                MeasureKind.BASIC,
                agg=spec,
                where=where,
                hidden=hidden,
            )
        )

    def cells(self, granularity: GranSpec, name: str = "") -> Measure:
        """The ``S_base = g_{G,0}(D)`` idiom: materialize region cells.

        Returns (creating on first use) a hidden constant-0 measure over
        the region set, used as the key provider of match joins.
        """
        gran = self._granularity(granularity)
        auto_name = name or f"__cells{gran!r}"
        if auto_name in self.measures:
            return self.measures[auto_name]
        measure = Measure(
            auto_name,
            gran,
            MeasureKind.BASIC,
            agg=AggSpec("cells", "*"),
            hidden=True,
        )
        return self._add(measure)

    def rollup(
        self,
        name: str,
        granularity: GranSpec,
        source: str | Measure,
        agg: AggLike = "count",
        where: Predicate | None = None,
        hidden: bool = False,
    ) -> Measure:
        """Aggregate a finer measure up — a child/parent match join.

        ``where`` filters the *source measure's entries* (keys and M)
        before they are aggregated, e.g. the paper's
        ``g_{(t:hour),count(*)}(σ_{M>5} S_C)``.
        """
        gran = self._granularity(granularity)
        source_name = source.name if isinstance(source, Measure) else source
        source_measure = self[source_name]
        if not source_measure.granularity.strictly_finer(gran):
            raise WorkflowError(
                f"rollup {name!r}: source granularity "
                f"{source_measure.granularity} is not strictly finer "
                f"than {gran}"
            )
        spec = self._agg(agg, "M")
        return self._add(
            Measure(
                name,
                gran,
                MeasureKind.ROLLUP,
                agg=spec,
                where=where,
                source=source_name,
                hidden=hidden,
            )
        )

    def match(
        self,
        name: str,
        granularity: GranSpec,
        source: str | Measure,
        cond: MatchCondition,
        agg: AggLike = "avg",
        where: Predicate | None = None,
        keys: str | Measure | None = None,
        hidden: bool = False,
    ) -> Measure:
        """A match join: aggregate measures of *related* regions.

        ``source`` provides the measures (the paper's T); ``keys``
        provides the cells of the output region set (the paper's S).
        When ``keys`` is omitted, a hidden ``S_base``-style cell measure
        is created automatically, matching the paper's workflow
        translations (Figure 3(b)/(c)).
        """
        gran = self._granularity(granularity)
        source_name = source.name if isinstance(source, Measure) else source
        source_measure = self[source_name]
        if isinstance(cond, ChildParent):
            raise WorkflowError(
                "use rollup() for child/parent matches; match() covers "
                "self, parent/child, and sibling conditions"
            )
        cond.validate(gran, source_measure.granularity)
        if keys is None:
            keys_name = self.cells(gran).name
        else:
            keys_name = keys.name if isinstance(keys, Measure) else keys
            keys_measure = self[keys_name]
            if keys_measure.granularity != gran:
                raise WorkflowError(
                    f"match {name!r}: keys measure {keys_name!r} has "
                    f"granularity {keys_measure.granularity}, expected "
                    f"{gran}"
                )
        spec = self._agg(agg, "M")
        return self._add(
            Measure(
                name,
                gran,
                MeasureKind.MATCH,
                agg=spec,
                where=where,
                source=source_name,
                keys=keys_name,
                cond=cond,
                hidden=hidden,
            )
        )

    def moving_window(
        self,
        name: str,
        granularity: GranSpec,
        source: str | Measure,
        windows: Mapping[str, tuple[int, int]],
        agg: AggLike = "avg",
        where: Predicate | None = None,
        keys: str | Measure | None = None,
        hidden: bool = False,
    ) -> Measure:
        """Sugar for a sibling match with the given per-dim windows."""
        return self.match(
            name,
            granularity,
            source,
            cond=Sibling(windows),
            agg=agg,
            where=where,
            keys=keys,
            hidden=hidden,
        )

    def broadcast(
        self,
        name: str,
        granularity: GranSpec,
        source: str | Measure,
        agg: AggLike = "max",
        where: Predicate | None = None,
        keys: str | Measure | None = None,
        hidden: bool = False,
    ) -> Measure:
        """Sugar for a parent/child match: push an ancestor's measure
        down to every descendant cell."""
        return self.match(
            name,
            granularity,
            source,
            cond=ParentChild(),
            agg=agg,
            where=where,
            keys=keys,
            hidden=hidden,
        )

    def combine(
        self,
        name: str,
        inputs: Sequence[str | Measure],
        fn: CombineFn | Callable,
        fn_name: str = "fc",
        handles_null: bool = False,
        hidden: bool = False,
    ) -> Measure:
        """A combine join: a scalar function of same-region measures.

        ``fn`` receives one value per input, in order.  The first input
        plays the paper's ``S`` role (its cells define the output).
        """
        if len(inputs) < 1:
            raise WorkflowError("combine needs at least one input")
        names = [
            m.name if isinstance(m, Measure) else m for m in inputs
        ]
        grans = {self[n].granularity for n in names}
        if len(grans) != 1:
            raise WorkflowError(
                f"combine {name!r}: inputs have different granularities"
            )
        gran = grans.pop()
        combine_fn = (
            fn
            if isinstance(fn, CombineFn)
            else CombineFn(fn, name=fn_name, handles_null=handles_null)
        )
        return self._add(
            Measure(
                name,
                gran,
                MeasureKind.COMBINE,
                inputs=names,
                fn=combine_fn,
                hidden=hidden,
            )
        )

    def filter(
        self,
        name: str,
        source: str | Measure,
        where: Predicate,
    ) -> Measure:
        """A filtered view of a measure: ``σ_where(source)``.

        Unlike :meth:`derive` (a self match join, which keeps every
        cell with a NULL measure for non-matches), a filter *drops*
        non-matching rows — this is the right shape for alert-style
        outputs ("regions whose ratio exceeds a threshold").
        """
        source_name = source.name if isinstance(source, Measure) else source
        gran = self[source_name].granularity
        return self._add(
            Measure(
                name,
                gran,
                MeasureKind.FILTER,
                where=where,
                source=source_name,
            )
        )

    def derive(
        self,
        name: str,
        source: str | Measure,
        where: Predicate | None = None,
        agg: AggLike = "max",
    ) -> Measure:
        """A self-match: re-expose a measure, optionally filtered.

        Useful to turn ``σ_pred(measure)`` into a named output.
        """
        source_name = source.name if isinstance(source, Measure) else source
        gran = self[source_name].granularity
        return self.match(
            name,
            gran,
            source_name,
            cond=SelfMatch(),
            agg=agg,
            where=where,
            keys=source_name,
        )

    # -- whole-workflow operations --------------------------------------

    def merge(self, other: "AggregationWorkflow") -> "AggregationWorkflow":
        """Absorb another workflow's measures into this one.

        This is how the paper fuses several analyses into a single
        aggregation workflow so one pass evaluates them all (Figure
        6(f)).  Auto-generated hidden cell measures with identical
        names (same region set) are shared; any other name clash is an
        error.

        Returns ``self`` for chaining.
        """
        if other.schema is not self.schema:
            raise WorkflowError(
                "cannot merge workflows over different schemas"
            )
        for name, measure in other.measures.items():
            existing = self.measures.get(name)
            if existing is not None:
                if (
                    existing.hidden
                    and measure.hidden
                    and existing.granularity == measure.granularity
                ):
                    continue  # shared cell provider
                raise WorkflowError(
                    f"measure name clash while merging: {name!r}"
                )
            self.measures[name] = measure
        return self

    def order(self) -> list[str]:
        """Topological evaluation order of all measures."""
        return topological_order(self.measures, self.name)

    def outputs(self) -> list[str]:
        """Names of non-hidden measures, in definition order."""
        return [
            name
            for name, measure in self.measures.items()
            if not measure.hidden
        ]

    def validate(self, strict: bool = False) -> None:
        """Check the workflow end to end (cycles, dangling names).

        With ``strict=True``, additionally run the full static
        analyzer (:mod:`repro.analysis`) and raise on any error-level
        diagnostic — the same gate the measure service applies to
        submitted workflows.
        """
        self.order()
        if strict:
            self._check_strict()

    def _check_strict(self) -> None:
        from repro.analysis import analyze

        report = analyze(self)
        if not report.ok:
            details = "; ".join(
                d.format().split("\n")[0] for d in report.errors
            )
            raise WorkflowError(
                f"workflow {self.name!r} failed strict validation "
                f"({len(report.errors)} error(s)): {details}"
            )

    def to_algebra(self, strict: bool = False) -> dict[str, Expr]:
        """Translate to AW-RA expressions (Theorem 2).

        Returns a dict of measure name to :class:`~repro.algebra.Expr`,
        with shared sub-expressions reused by object identity.  With
        ``strict=True``, run the static analyzer first and refuse to
        translate a workflow with error-level diagnostics.
        """
        if strict:
            self._check_strict()
        from repro.workflow.translate import workflow_to_algebra

        return workflow_to_algebra(self)

    def __repr__(self) -> str:
        return (
            f"AggregationWorkflow({self.name!r}, "
            f"{len(self.measures)} measures)"
        )
