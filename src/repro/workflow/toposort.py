"""Topological ordering of workflow measures (Section 5.1).

The single-scan algorithm "topologically order[s] the dependent measures
so that each is evaluated after all the measures it depends on are
finished"; recursion is disallowed, so the order always exists — a cycle
is a workflow construction error.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import WorkflowError, measure_ref
from repro.workflow.measure import Measure


def topological_order(
    measures: Mapping[str, Measure],
    workflow: str | None = None,
) -> list[str]:
    """Kahn's algorithm over measure dependencies; deterministic.

    Returns measure names such that every measure appears after all of
    its dependencies.  Ties are broken by insertion order so plans are
    reproducible run to run.  ``workflow`` names the owning workflow in
    error messages (shared phrasing with the ``repro.analysis`` linter
    via :func:`repro.errors.measure_ref`).

    Raises:
        WorkflowError: if dependencies form a cycle (with the cycle's
            members named) or reference unknown measures.
    """
    order_index = {name: i for i, name in enumerate(measures)}
    indegree: dict[str, int] = {name: 0 for name in measures}
    dependents: dict[str, list[str]] = {name: [] for name in measures}
    for name, measure in measures.items():
        for dep in measure.dependencies():
            if dep not in measures:
                raise WorkflowError(
                    f"{measure_ref(name, workflow)} depends on "
                    f"unknown measure {dep!r}"
                )
            indegree[name] += 1
            dependents[dep].append(name)

    ready = sorted(
        (name for name, deg in indegree.items() if deg == 0),
        key=order_index.__getitem__,
    )
    result: list[str] = []
    while ready:
        name = ready.pop(0)
        result.append(name)
        newly_ready = []
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                newly_ready.append(dependent)
        # Keep determinism without resorting the whole queue.
        ready.extend(sorted(newly_ready, key=order_index.__getitem__))

    if len(result) != len(measures):
        stuck = sorted(set(measures) - set(result))
        where = f" of workflow {workflow!r}" if workflow else ""
        raise WorkflowError(
            f"measure dependencies{where} contain a cycle involving "
            f"{stuck}"
        )
    return result
