"""Exception hierarchy for the composite-subset-measures library.

Every error raised on a public code path derives from :class:`ReproError`
so that callers can catch library failures with a single ``except``
clause while still being able to distinguish the failure class.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by this library."""


def measure_ref(measure: str, workflow: str | None = None) -> str:
    """One shared phrasing for "this measure of that workflow".

    Used by the workflow builder, the topological sorter, and the
    static analyzer so runtime errors and lint diagnostics name the
    offending measure identically — a message seen at submit time can
    be grepped for verbatim in a runtime traceback.
    """
    if workflow:
        return f"measure {measure!r} of workflow {workflow!r}"
    return f"measure {measure!r}"


class SchemaError(ReproError):
    """A dataset schema, dimension, or hierarchy is malformed."""


class DomainError(SchemaError):
    """A value or level does not belong to the domain it was used with."""


class GranularityError(ReproError):
    """A granularity vector is invalid or incompatible with an operation."""


class AlgebraError(ReproError):
    """An AW-RA expression violates the algebra's construction rules.

    The construction rules are listed in Table 5 of the paper: for
    example, a combine join requires all inputs to share one granularity
    and forbids the raw fact table as an input.
    """


class WorkflowError(ReproError):
    """An aggregation workflow is malformed (e.g. a dependency cycle)."""


class PlanError(ReproError):
    """A streaming plan cannot be constructed for the requested query."""


class EvaluationError(ReproError):
    """A runtime failure inside one of the evaluation engines."""


class MemoryBudgetExceeded(EvaluationError):
    """An engine's in-memory state outgrew its configured budget.

    The single-scan engine raises this to signal that a multi-pass
    sort/scan plan is required (Section 5.1 of the paper notes the
    single-scan algorithm "might require massive amounts of memory").
    """

    def __init__(self, used: int, budget: int, where: str = "") -> None:
        self.used = used
        self.budget = budget
        self.where = where
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"memory budget exceeded{suffix}: {used} entries used, "
            f"budget is {budget}"
        )


class StorageError(ReproError):
    """A flat-file table is corrupt or was written with another schema."""


class BackendError(ReproError):
    """An execution backend (e.g. the SQL backend) failed or is absent.

    Covers unknown engine names, engines whose driver module is not
    importable in this environment, and decode failures mapping engine
    rows back into :class:`~repro.storage.table.MeasureTable` form.
    """


class FailPointError(ReproError):
    """A fault deliberately injected through :mod:`repro.testkit`.

    Raised by armed fail points with the ``raise`` action, and for
    malformed fail-point specs.  Deriving from :class:`ReproError`
    keeps injected faults catchable alongside organic ones, while the
    distinct type lets tests assert the fault came from the harness.
    """


class ServiceError(ReproError):
    """A measure-service request is invalid or cannot be satisfied.

    Raised by the :mod:`repro.service` layer: unknown measures, queries
    against an empty store, ingestion against a store whose workflow is
    unavailable, and similar front-door failures.

    ``diagnostics`` carries the static-analysis findings when the
    failure is a rejected workflow (error-level lint diagnostics);
    the HTTP front end serializes them into the JSON error body.
    """

    def __init__(
        self, message: str, *, diagnostics: Iterable[Any] | None = None
    ) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class ClusterError(ServiceError):
    """The sharded cluster is misconfigured, torn, or unreachable.

    Raised by :mod:`repro.service.cluster`: a cluster manifest that
    does not match the shard stores on disk, a worker process that died
    and could not be revived, a workflow that cannot be partitioned
    (some measure aggregates the partition dimension to ALL), and
    similar cluster-level failures.
    """


class AdmissionError(ServiceError):
    """A multi-tenant request was rejected by admission control.

    Carries a structured ``payload`` the HTTP front end serializes as
    the 429 JSON body (mirroring the 422 lint-diagnostics body), and a
    ``retryable`` flag: queue-pressure rejections clear on their own,
    memory-budget rejections need a smaller workflow or a bigger
    budget.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        reason: str,
        retryable: bool,
        **details: Any,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retryable = retryable
        self.details = details

    @property
    def payload(self) -> dict[str, Any]:
        """The structured JSON body of the HTTP 429 response."""
        return {
            "error": str(self),
            "admission": {
                "tenant": self.tenant,
                "reason": self.reason,
                "retryable": self.retryable,
                **self.details,
            },
        }
