"""Measure service: persist, incrementally maintain, and serve measures.

The paper's engines compute a workflow's measures in one batch run;
this package keeps those results alive between runs.  It has three
layers:

- :mod:`repro.service.store` — a crash-safe, atomically committed
  directory of sorted measure segments with sparse indexes (point and
  prefix reads without loading tables);
- :mod:`repro.service.ingest` — incremental delta ingestion built on
  aggregate-state *merging* for distributive/algebraic measures and
  dirty-region lazy recompute for holistic ones;
- :mod:`repro.service.server` — a thread-safe query layer with an LRU
  cache and a stdlib-only JSON/HTTP front end.
"""

from repro.service.store import MeasureStore, StoreCommit, StoreSink
from repro.service.ingest import IngestReport, Ingestor, load_workflow
from repro.service.server import MeasureService, make_server

__all__ = [
    "MeasureStore",
    "StoreCommit",
    "StoreSink",
    "Ingestor",
    "IngestReport",
    "load_workflow",
    "MeasureService",
    "make_server",
]
