"""Incremental delta ingestion for the measure service.

The key property this module exploits is the one the paper's Section
5.1 classification exists for: a basic measure's accumulator state over
a union of disjoint fact batches equals the *merge* of its states over
each batch (:meth:`~repro.aggregates.base.AggregateFunction.merge`).
Ingestion therefore never rescans old facts for distributive or
algebraic aggregates:

1. the delta batch alone is evaluated by the one-pass sort/scan engine
   with partial-state capture (:class:`_StateCaptureSink`);
2. each non-holistic basic node's delta states are merged into its
   persisted state table;
3. merged states are finalized into basic value tables, and every
   composite node is re-derived *from tables* in topological order via
   :mod:`repro.engine.semantics` — region-sized work, no fact access;
4. tables, the appended fact batch, and dirty markers land in one
   atomic store commit.

Holistic aggregates (median, exact distinct) have no bounded mergeable
state, so their affected regions are marked dirty instead and the node
is recomputed lazily from the store's fact log (:meth:`Ingestor.resolve`)
— together with every measure that transitively depends on it.  Nothing
else ever falls back to a full recompute.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.errors import ServiceError
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import (
    INGEST_BATCHES,
    INGEST_COMMIT_SECONDS,
    INGEST_RECORDS,
)
from repro.aggregates.base import Kind
from repro.cube.granularity import Granularity
from repro.engine.compile import (
    BasicNode,
    CompiledGraph,
    Node,
    compile_workflow,
)
from repro.engine.semantics import (
    eval_node_from_tables,
    finalize_basic,
    update_basic_tables,
)
from repro.engine.sort_scan import SortScanEngine
from repro.storage.sink import Sink
from repro.storage.table import Dataset, InMemoryDataset
from repro.service.store import MeasureStore, StoreSink
from repro.testkit.failpoints import fire, register

# Ingest-path injection sites, swept by repro.testkit.sweeper: a kill
# at any of them must leave the store serving either the pre-delta or
# the post-delta generation, never a mixture.
FP_DELTA_EVAL = register(
    "ingest.delta-eval", "ingest",
    "after the delta batch is evaluated, before any staging",
)
FP_FOLD = register(
    "ingest.fold", "ingest",
    "after states are merged and tables staged, before the fact append",
)
FP_PRE_COMMIT = register(
    "ingest.pre-commit", "ingest",
    "after everything is staged, just before the manifest swap",
)
FP_POST_COMMIT = register(
    "ingest.post-commit", "ingest",
    "immediately after an ingest commit becomes visible",
)

#: File next to the manifest holding the pickled workflow, when the
#: workflow is picklable (combine functions defined as lambdas are not;
#: such stores need the workflow re-supplied by the caller).
WORKFLOW_FILE = "workflow.pkl"


class _StateCaptureSink(Sink):
    """Collects raw basic-node states of a delta run; discards values."""

    wants_states = True

    def __init__(self) -> None:
        self.states: dict[str, dict] = {}

    def emit(self, name: str, key: tuple, value) -> None:
        """Finalized delta values are meaningless pre-merge; drop them."""

    def open_states(self, name: str, granularity: Granularity) -> None:
        self.states.setdefault(name, {})

    def emit_state(self, name: str, key: tuple, state) -> None:
        self.states[name][key] = state


@dataclass
class IngestReport:
    """What one :meth:`Ingestor.ingest` call did."""

    generation: int
    records: int
    merged_nodes: list[str] = field(default_factory=list)
    dirty_nodes: list[str] = field(default_factory=list)
    updated_measures: list[str] = field(default_factory=list)
    deferred_measures: list[str] = field(default_factory=list)


def load_workflow(store: MeasureStore):
    """Unpickle the workflow a store was bootstrapped with, if present."""
    path = os.path.join(store.path, WORKFLOW_FILE)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as fh:
        return pickle.load(fh)


def reject_invalid_workflow(workflow) -> None:
    """Run the static analyzer; refuse error-level workflows.

    This is the service's submit/ingest gate: workflows arrive over the
    wire (pickled into the store, or POSTed to ``/workflow``) and
    bypass the builder's incremental checks, so the linter is the only
    line of defense before a bad plan touches data.  The rejected
    diagnostics ride on :attr:`~repro.errors.ServiceError.diagnostics`
    and are serialized into the HTTP error body.
    """
    from repro.analysis import analyze

    report = analyze(workflow)
    if not report.ok:
        summary = "; ".join(
            d.format().split("\n")[0] for d in report.errors
        )
        raise ServiceError(
            f"workflow {workflow.name!r} rejected by static analysis "
            f"({len(report.errors)} error(s)): {summary}",
            diagnostics=report.errors,
        )


class Ingestor:
    """Incremental maintenance of one store against one workflow.

    Args:
        store: The persistent measure store to maintain.
        workflow: The aggregation workflow whose outputs the store
            serves; when ``None``, the pickled workflow saved at
            bootstrap time is loaded from the store directory.
    """

    def __init__(self, store: MeasureStore, workflow=None) -> None:
        self.store = store
        if workflow is None:
            workflow = load_workflow(store)
        if workflow is None:
            raise ServiceError(
                f"store {store.path!r} has no saved workflow; "
                "pass the workflow explicitly"
            )
        self.workflow = workflow
        reject_invalid_workflow(workflow)
        self.graph: CompiledGraph = compile_workflow(workflow)
        self._engine = SortScanEngine()

    # -- graph helpers -------------------------------------------------

    def _holistic_basics(self) -> list[BasicNode]:
        return [
            node
            for node in self.graph.basic_nodes
            if node.agg.function.kind is Kind.HOLISTIC
        ]

    def _dirty_closure(self, names: Iterable[str]) -> set[str]:
        """Transitive consumers of ``names`` (the deferred subgraph)."""
        by_name: dict[str, Node] = {n.name: n for n in self.graph.nodes}
        closure: set[str] = set()
        frontier = [by_name[name] for name in names if name in by_name]
        while frontier:
            node = frontier.pop()
            if node.name in closure:
                continue
            closure.add(node.name)
            frontier.extend(arc.dst for arc in node.out_arcs)
        return closure

    def _derive_composites(
        self, node_tables: dict[str, dict], skip: set[str]
    ) -> None:
        """Fill ``node_tables`` for every composite not in ``skip``.

        Nodes are visited in the graph's topological order, so each
        composite's inputs are already present.  Composites in ``skip``
        (the dirty closure) are deferred to resolution.
        """
        for node in self.graph.nodes:
            if isinstance(node, BasicNode) or node.name in skip:
                continue
            node_tables[node.name] = eval_node_from_tables(
                node, node_tables
            )

    @staticmethod
    def _output_rows(node_tables, node, out_filter) -> dict:
        rows = node_tables[node.name]
        if out_filter is None:
            return rows
        return {
            key: value
            for key, value in rows.items()
            if out_filter(key, value)
        }

    def _as_dataset(self, records) -> Dataset:
        if isinstance(records, Dataset):
            return records
        return InMemoryDataset(self.workflow.schema, records)

    # -- bootstrap -----------------------------------------------------

    def bootstrap(
        self, records, meta: dict | None = None
    ) -> int:
        """Full first evaluation: facts, states, and values in one commit.

        Returns the committed generation.  The workflow is pickled next
        to the manifest when possible so later sessions can reopen the
        store without re-supplying it.
        """
        if not self.store.is_empty():
            raise ServiceError(
                f"store {self.store.path!r} is not empty "
                f"(generation {self.store.generation}); use ingest()"
            )
        tracer = get_tracer()
        with tracer.span("service:bootstrap", cat="service") as span:
            dataset = self._as_dataset(records)
            state_aggs = {
                node.name: node.agg.function
                for node in self.graph.basic_nodes
            }
            sink = StoreSink(
                self.store, state_aggs=state_aggs, autocommit=False
            )
            self._engine.evaluate(dataset, self.graph, sink=sink)
            self._save_workflow()
            with tracer.span("commit", cat="service"):
                commit = self.store.begin()
                sink.stage_into(commit)
                commit.append_facts(self.workflow.schema, dataset.scan())
                commit.update_meta(
                    {"facts_complete": True, **(meta or {})}
                )
                generation = commit.commit()
            span.set(generation=generation, records=len(dataset))
            return generation

    def _save_workflow(self) -> None:
        path = os.path.join(self.store.path, WORKFLOW_FILE)
        try:
            blob = pickle.dumps(self.workflow)
        except Exception:
            return  # not picklable (e.g. lambda combine fn); skip
        with open(path, "wb") as fh:
            fh.write(blob)

    # -- incremental ingest --------------------------------------------

    def ingest(
        self, records, meta: dict | None = None
    ) -> IngestReport:
        """Fold one delta batch into the store, atomically.

        Equivalent (for non-deferred measures, exactly; for deferred
        ones, after :meth:`resolve`) to a full recompute over the union
        of all ingested facts.  ``meta`` keys are merged into the store
        metadata *in the same commit* as the delta — the cluster layer
        stamps its epoch this way, so a shard's metadata never vouches
        for a delta the shard did not durably apply.
        """
        if self.store.is_empty():
            raise ServiceError(
                f"store {self.store.path!r} is empty; bootstrap() first"
            )
        tracer = get_tracer()
        started = time.perf_counter()
        ingest_span = tracer.span("service:ingest", cat="service")
        ingest_span.__enter__()
        try:
            report = self._ingest_inner(records, tracer, meta=meta)
            ingest_span.set(
                generation=report.generation, records=report.records
            )
        finally:
            ingest_span.__exit__(None, None, None)
        duration = time.perf_counter() - started
        registry = get_registry()
        registry.counter(
            INGEST_BATCHES, "Delta batches folded into the store"
        ).inc()
        registry.counter(
            INGEST_RECORDS, "Fact records ingested across all batches"
        ).inc(report.records)
        registry.histogram(
            INGEST_COMMIT_SECONDS,
            "End-to-end latency of one ingest fold "
            "(delta evaluation through manifest swap)",
        ).observe(duration)
        return report

    def _ingest_inner(
        self, records, tracer, meta: dict | None = None
    ) -> IngestReport:
        with tracer.span("delta-eval", cat="service"):
            delta = self._as_dataset(records)
            capture = _StateCaptureSink()
            self._engine.evaluate(delta, self.graph, sink=capture)
        fire(FP_DELTA_EVAL)

        commit = self.store.begin()
        report = IngestReport(generation=0, records=len(delta))

        with tracer.span("fold", cat="service"):
            # 1. Merge delta states into stored states (non-holistic),
            #    or mark affected regions dirty (holistic).
            merged_tables: dict[str, dict] = {}
            stored_states = set(self.store.state_nodes())
            for node in self.graph.basic_nodes:
                agg = node.agg.function
                delta_states = capture.states.get(node.name, {})
                if agg.kind is Kind.HOLISTIC:
                    commit.mark_dirty(node.name, delta_states.keys())
                    continue
                if node.name in stored_states:
                    table = self.store.read_table(
                        node.name, kind="states"
                    )
                else:
                    table = {}
                for key, delta_state in delta_states.items():
                    if key in table:
                        table[key] = agg.merge(table[key], delta_state)
                    else:
                        table[key] = delta_state
                merged_tables[node.name] = table
                commit.put_states(
                    node.name, node.granularity, table, agg_name=agg.name
                )
                report.merged_nodes.append(node.name)

            # 2. The deferred subgraph: every holistic basic node (its
            #    full table is not materializable from states) plus all
            #    transitive consumers.  Prior unresolved dirt carries
            #    over through the commit's dirty bookkeeping.
            holistic_names = [
                node.name for node in self._holistic_basics()
            ]
            closure = self._dirty_closure(holistic_names)
            report.dirty_nodes = sorted(holistic_names)

            # 3. Finalize merged basics and re-derive composites from
            #    tables — no fact rescan on this path.
            node_tables: dict[str, dict] = {
                name: finalize_basic(self._node(name), table)
                for name, table in merged_tables.items()
            }
            self._derive_composites(node_tables, skip=closure)

            # 4. Refresh servable outputs; defer those in the closure.
            for out_name, (node, out_filter) in (
                self.graph.outputs.items()
            ):
                if node.name in closure:
                    commit.mark_measure_dirty(out_name)
                    report.deferred_measures.append(out_name)
                    continue
                commit.put_values(
                    out_name,
                    node.granularity,
                    self._output_rows(node_tables, node, out_filter),
                )
                report.updated_measures.append(out_name)

        # 5. The delta joins the fact log (resolution's input), and
        #    everything becomes visible at once.
        fire(FP_FOLD)
        with tracer.span("commit", cat="service"):
            commit.append_facts(self.workflow.schema, delta.scan())
            if meta:
                commit.update_meta(meta)
            fire(FP_PRE_COMMIT)
            report.generation = commit.commit()
        fire(FP_POST_COMMIT)
        return report

    def _node(self, name: str) -> Node:
        for node in self.graph.nodes:
            if node.name == name:
                return node
        raise ServiceError(f"graph has no node {name!r}")

    # -- lazy resolution -----------------------------------------------

    def resolve(self) -> bool:
        """Recompute deferred (holistic-dependent) measures, if any.

        Holistic basic nodes are recomputed in a single scan of the
        store's fact log; everything downstream is re-derived from
        tables.  Distributive/algebraic basics are *never* recomputed
        here — their finalized tables come from the persisted states.
        Returns True when work was done.
        """
        dirty_nodes = self.store.dirty_nodes()
        dirty_measures = self.store.dirty_measures()
        if not dirty_nodes and not dirty_measures:
            return False
        with get_tracer().span(
            "service:resolve", cat="service",
            dirty_measures=sorted(dirty_measures),
        ):
            return self._resolve_inner(dirty_nodes, dirty_measures)

    def _resolve_inner(self, dirty_nodes, dirty_measures) -> bool:
        if not self.store.meta().get("facts_complete"):
            raise ServiceError(
                f"store {self.store.path!r} has dirty holistic measures "
                "but no complete fact log to recompute them from"
            )

        facts = self.store.fact_dataset(self.workflow.schema)
        holistic = self._holistic_basics()
        pairs: list = [(node, {}) for node in holistic]
        for record in facts.scan():
            update_basic_tables(record, pairs)

        node_tables: dict[str, dict] = {}
        for node, raw in pairs:
            node_tables[node.name] = finalize_basic(node, raw)
        for node in self.graph.basic_nodes:
            if node.agg.function.kind is Kind.HOLISTIC:
                continue
            states = self.store.read_table(node.name, kind="states")
            node_tables[node.name] = finalize_basic(node, states)
        self._derive_composites(node_tables, skip=set())

        closure = self._dirty_closure(
            list(dirty_nodes) + [node.name for node in holistic]
        )
        commit = self.store.begin()
        for out_name, (node, out_filter) in self.graph.outputs.items():
            if out_name in dirty_measures or node.name in closure:
                commit.put_values(
                    out_name,
                    node.granularity,
                    self._output_rows(node_tables, node, out_filter),
                )
        commit.clear_dirty()
        commit.commit()
        return True
