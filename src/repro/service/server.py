"""Concurrent query layer over a persistent measure store.

:class:`MeasureService` wraps a :class:`~repro.service.store.MeasureStore`
with the operations a long-lived serving process needs:

- **point / range / table** reads, answered from the store's sorted
  segments through the sparse index, with a per-measure LRU cache in
  front (invalidated per measure when ingestion commits);
- **rollup-on-read**: any stored measure built from a distributive or
  algebraic-over-values aggregate can be generalized to a coarser
  granularity at query time, without touching facts;
- **ingest**: delegates to :class:`~repro.service.ingest.Ingestor`
  under the service lock, so readers never observe a half-applied
  delta;
- **lazy resolution**: queries against measures deferred by holistic
  ingestion trigger the fact-log recompute transparently (point reads
  of regions the delta did not touch skip it).

All public methods are thread-safe (one reentrant lock; the store's
commit protocol makes mutations atomic anyway, the lock just
serializes cache bookkeeping and resolution).  A minimal JSON/HTTP
front end built on the stdlib ``ThreadingHTTPServer`` is provided by
:func:`make_server` — no third-party dependencies.
"""

from __future__ import annotations

import base64
import json
import logging
import pickle
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServiceError
from repro.aggregates.base import get_aggregate
from repro.cube.granularity import Granularity
from repro.obs import (
    get_registry,
    get_tracer,
    new_context,
    render_span_tree,
    tracing_enabled,
    use_context,
)
from repro.obs.metrics import (
    HTTP_REQUESTS,
    QUERY_CACHE_HITS,
    QUERY_CACHE_MISSES,
    QUERY_SECONDS,
    STORE_FACTS,
    STORE_GENERATION,
    STORE_SEGMENTS,
)
from repro.obs.reqlog import RequestLog, RequestObserver, SlowQueryLog
from repro.obs.slo import SLOTracker
from repro.obs.trace import events_for_trace
from repro.storage.table import MeasureTable
from repro.service.ingest import IngestReport, Ingestor, load_workflow
from repro.service.store import MeasureStore

logger = logging.getLogger("repro.service")

#: Bind hosts whose clients are local processes.  Pickled workflow
#: submissions (arbitrary code execution by construction) are accepted
#: from these by default; any other bind needs the operator's explicit
#: ``allow_pickle_workflows`` opt-in.
LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})


class MeasureService:
    """Thread-safe query front end over one measure store.

    Args:
        store: An open :class:`MeasureStore`, or a path to one.
        workflow: The workflow the store serves.  When omitted, the
            workflow pickled at bootstrap time is loaded from the store
            directory; a store with neither cannot be served.
        cache_size: LRU capacity (entries) per measure for point and
            range reads.
    """

    def __init__(
        self,
        store,
        workflow=None,
        cache_size: int = 256,
    ) -> None:
        if isinstance(store, str):
            store = MeasureStore(store)
        self.store = store
        if workflow is None:
            workflow = load_workflow(store)
        if workflow is None:
            raise ServiceError(
                f"store {store.path!r} has no saved workflow; "
                "pass the workflow explicitly"
            )
        self.workflow = workflow
        self.ingestor = Ingestor(store, workflow)
        self.graph = self.ingestor.graph
        self.cache_size = cache_size
        self._lock = threading.RLock()
        self._caches: dict[str, OrderedDict] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        registry = get_registry()
        self._hits_metric = registry.counter(
            QUERY_CACHE_HITS, "Query-cache hits of the measure service"
        )
        self._misses_metric = registry.counter(
            QUERY_CACHE_MISSES,
            "Query-cache misses of the measure service",
        )
        self._query_seconds = registry.histogram(
            QUERY_SECONDS,
            "Measure-service read latency by operation",
            labelnames=("op",),
        )
        # Store-shape gauges read the live store on scrape, so a
        # serving process reports the current generation even when
        # every commit so far happened in another process.
        registry.gauge(
            STORE_GENERATION,
            "Current committed generation of the measure store",
            fn=lambda: store.generation,
        )
        registry.gauge(
            STORE_SEGMENTS,
            "Segment files in the store's current manifest",
            fn=store.segment_count,
        )
        registry.gauge(
            STORE_FACTS,
            "Fact records in the store's append-only log",
            fn=store.fact_count,
        )

    # -- cache plumbing ------------------------------------------------

    def _cache_get(self, measure: str, cache_key):
        cache = self._caches.get(measure)
        if cache is None or cache_key not in cache:
            self.cache_misses += 1
            self._misses_metric.inc()
            return None, False
        cache.move_to_end(cache_key)
        self.cache_hits += 1
        self._hits_metric.inc()
        return cache[cache_key], True

    def _cache_put(self, measure: str, cache_key, value) -> None:
        cache = self._caches.setdefault(measure, OrderedDict())
        cache[cache_key] = value
        cache.move_to_end(cache_key)
        while len(cache) > self.cache_size:
            cache.popitem(last=False)

    def _invalidate(self, measures) -> None:
        for measure in measures:
            self._caches.pop(measure, None)

    # -- measure metadata ----------------------------------------------

    def _output(self, measure: str):
        try:
            return self.graph.outputs[measure]
        except KeyError:
            raise ServiceError(
                f"unknown measure {measure!r}; "
                f"have {sorted(self.graph.outputs)}"
            ) from None

    def granularity_of(self, measure: str) -> Granularity:
        """The granularity a measure is stored (and served) at."""
        return self._output(measure)[0].granularity

    def measures(self) -> list[dict]:
        """Servable measures with granularity, row count, dirty flag."""
        with self._lock:
            dirty = self.store.dirty_measures()
            out = []
            for name in sorted(self.graph.outputs):
                entry = {
                    "measure": name,
                    "levels": list(self.granularity_of(name).levels),
                    "dirty": name in dirty,
                }
                if name in self.store.measures():
                    entry["rows"] = self.store.table_info(name)["rows"]
                out.append(entry)
            return out

    # -- freshness -----------------------------------------------------

    def _ensure_fresh(self, measure: str, key: tuple | None) -> None:
        """Resolve deferred recomputes this read would observe.

        Point reads get a shortcut: when the measure maps straight to a
        dirty holistic *basic* node and the store knows exactly which
        region keys the deltas touched, reads of untouched regions are
        served from the stored table without resolving.
        """
        if measure not in self.store.dirty_measures():
            return
        node = self._output(measure)[0]
        if key is not None:
            dirty_keys = self.store.dirty_nodes().get(node.name)
            if dirty_keys is not None and tuple(key) not in dirty_keys:
                return
        self.ingestor.resolve()
        self._invalidate(list(self._caches))

    def resolve(self) -> bool:
        """Force deferred recomputes now; True when work was done."""
        with self._lock:
            did = self.ingestor.resolve()
            if did:
                self._invalidate(list(self._caches))
            return did

    # -- reads ---------------------------------------------------------

    def _observe_query(self, op: str, started: float) -> None:
        self._query_seconds.labels(op=op).observe(
            time.perf_counter() - started
        )

    def point(self, measure: str, key, default=None):
        """One region's value; ``default`` when the region is absent."""
        key = tuple(key)
        started = time.perf_counter()
        with (
            get_tracer().span("query:point", cat="query", measure=measure) as span,
            self._lock,
        ):
            self._output(measure)
            cached, hit = self._cache_get(measure, ("point", key))
            if hit:
                span.set(cache="hit")
                self._observe_query("point", started)
                return cached
            span.set(cache="miss")
            self._ensure_fresh(measure, key)
            try:
                value = self.store.point(measure, key)
            except KeyError:
                value = default
            self._cache_put(measure, ("point", key), value)
            self._observe_query("point", started)
            return value

    def range(self, measure: str, prefix=()) -> list:
        """All rows whose region key starts with ``prefix``, sorted."""
        prefix = tuple(prefix)
        started = time.perf_counter()
        with (
            get_tracer().span("query:range", cat="query", measure=measure) as span,
            self._lock,
        ):
            self._output(measure)
            cached, hit = self._cache_get(measure, ("range", prefix))
            if hit:
                span.set(cache="hit")
                self._observe_query("range", started)
                return cached
            span.set(cache="miss")
            self._ensure_fresh(measure, None)
            rows = self.store.scan_prefix(measure, prefix)
            self._cache_put(measure, ("range", prefix), rows)
            self._observe_query("range", started)
            return rows

    def table(self, measure: str) -> MeasureTable:
        """The full measure table (uncached — callers keep the object)."""
        started = time.perf_counter()
        with (
            get_tracer().span("query:table", cat="query", measure=measure),
            self._lock,
        ):
            self._ensure_fresh(measure, None)
            table = self.store.measure_table(
                measure, self.granularity_of(measure)
            )
            self._observe_query("table", started)
            return table

    def rollup(self, measure: str, spec, agg: str = "sum") -> MeasureTable:
        """Generalize a stored measure to a coarser granularity on read.

        ``spec`` is a granularity spec (e.g. ``{"t": "Day"}``) naming
        the target; unnamed dimensions roll up to ALL.  ``agg`` must be
        meaningful over the stored *values* (e.g. summing stored counts
        — the paper's distributive roll-up; averaging stored averages is
        the caller's responsibility to want).
        """
        with self._lock:
            source_gran = self.granularity_of(measure)
            target = Granularity.from_spec(source_gran.schema, spec)
            if not source_gran.finer_or_equal(target):
                raise ServiceError(
                    f"rollup target {target!r} is not coarser than "
                    f"{measure!r}'s granularity {source_gran!r}"
                )
            function = get_aggregate(agg)
            self._ensure_fresh(measure, None)
            grouped: dict = {}
            for key, value in self.store.iter_table(measure):
                out_key = target.generalize_key(key, source_gran)
                state = grouped.get(out_key)
                if state is None and out_key not in grouped:
                    state = function.create()
                grouped[out_key] = function.update(state, value)
            rows = {
                key: function.finalize(state)
                for key, state in grouped.items()
            }
            return MeasureTable(
                f"{measure}@{agg}", target, rows=rows
            )

    # -- writes --------------------------------------------------------

    def bootstrap(self, records, meta: dict | None = None) -> int:
        """First full evaluation into an empty store."""
        with self._lock:
            generation = self.ingestor.bootstrap(records, meta=meta)
            self._invalidate(list(self._caches))
            return generation

    def ingest(
        self, records, meta: dict | None = None
    ) -> IngestReport:
        """Fold a delta batch in; invalidates affected measure caches."""
        with self._lock:
            report = self.ingestor.ingest(records, meta=meta)
            self._invalidate(
                report.updated_measures + report.deferred_measures
            )
            return report

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """Serving statistics (generation, cache counters, sizes)."""
        with self._lock:
            return {
                "generation": self.store.generation,
                "measures": len(self.graph.outputs),
                "facts": self.store.fact_count(),
                "dirty_measures": sorted(self.store.dirty_measures()),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cached_entries": sum(
                    len(cache) for cache in self._caches.values()
                ),
            }


# -- HTTP front end ----------------------------------------------------


def _parse_key(text: str) -> tuple:
    """Parse ``"3,0,7"`` into a region-key tuple of ints."""
    if not text:
        return ()
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise ServiceError(
            f"malformed region key {text!r}; expected comma-separated "
            "integers"
        ) from None


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON request handler; one route per MeasureService read."""

    server_version = "ReproMeasureService/1"
    protocol_version = "HTTP/1.1"
    # Per-connection socket timeout: a client that stops sending mid
    # request (or holds a keep-alive connection idle) releases its
    # handler thread instead of pinning it forever.
    timeout = 30.0

    @property
    def service(self) -> MeasureService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002
        """Route access logs to the ``repro.service`` logger (debug)."""
        logger.debug("%s - %s", self.address_string(), format % args)

    def _count_request(self, route: str) -> None:
        get_registry().counter(
            HTTP_REQUESTS,
            "HTTP requests served, by route",
            labelnames=("route",),
        ).labels(route=route).inc()

    def _send(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self._send_obs_headers()
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self._status_sent = status
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self._send_obs_headers()
        self.end_headers()
        self.wfile.write(body)

    def _send_obs_headers(self) -> None:
        """Stamp the correlation id and trace parent on every reply."""
        ctx = getattr(self, "_ctx", None)
        if ctx is not None:
            self.send_header("X-Request-Id", ctx.request_id)
            self.send_header("traceparent", ctx.traceparent())

    def _params(self) -> dict:
        query = parse_qs(urlsplit(self.path).query)
        return {name: values[-1] for name, values in query.items()}

    def _route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    def do_GET(self) -> None:  # noqa: N802
        self._handle("GET", self._do_get)

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST", self._do_post)

    def _handle(self, method: str, inner) -> None:
        """Observability envelope shared by GET and POST.

        Joins (or starts) the caller's distributed trace, runs the
        route handler under the request context and an ``http:`` span,
        then folds the finished request into the server's
        :class:`~repro.obs.reqlog.RequestObserver`.
        """
        route = self._route()
        self._ctx = new_context(
            self.headers.get("traceparent"),
            request_id=self.headers.get("X-Request-Id") or "",
        )
        self._status_sent = 200
        started = time.perf_counter()
        try:
            with use_context(self._ctx), get_tracer().span(
                f"http:{route}", cat="http", method=method
            ):
                inner(route)
        finally:
            observer = getattr(self.server, "observer", None)
            if observer is not None:
                observer.observe(
                    route=route,
                    method=method,
                    status=self._status_sent,
                    seconds=time.perf_counter() - started,
                    ctx=self._ctx,
                )

    def _healthz(self) -> None:
        """Liveness plus the store facts a probe can alert on."""
        stats = self.service.stats()
        self._send(
            {
                "status": "ok",
                "generation": stats["generation"],
                "facts": stats["facts"],
                "dirty_measures": stats["dirty_measures"],
                "uptime_seconds": self._uptime(),
            }
        )

    def _uptime(self) -> float:
        started = getattr(self.server, "started_mono", None)
        if started is None:
            return 0.0
        return round(time.monotonic() - started, 3)

    def _statusz(self) -> None:
        payload = {
            "service": "repro-measure-service",
            "time": round(time.time(), 3),
            "uptime_seconds": self._uptime(),
            "tracing": tracing_enabled(),
            "stats": self.service.stats(),
        }
        observer = getattr(self.server, "observer", None)
        if observer is not None:
            payload["slow_query_threshold_seconds"] = (
                observer.slow_log.threshold_seconds
            )
            payload["slow_queries"] = observer.slow_log.recent()
        slo = getattr(self.server, "slo", None)
        if slo is not None:
            payload["slo"] = slo.status()
        self._send(payload)

    def _debug_trace(self, trace_id: str) -> None:
        events = events_for_trace(get_tracer().events, trace_id)
        if not events:
            self._send(
                {"error": f"no recorded events for trace {trace_id!r} "
                 "(is tracing enabled?)"},
                404,
            )
            return
        self._send(
            {
                "trace_id": trace_id,
                "events": events,
                "tree": render_span_tree(events),
            }
        )

    def _do_get(self, route: str) -> None:
        try:
            params = self._params()
            self._count_request(route)
            if route == "/metrics":
                # Prometheus scrape target: the whole process registry
                # (service counters, store gauges, engine totals alike).
                slo = getattr(self.server, "slo", None)
                if slo is not None:
                    slo.export(get_registry())
                self._send_text(get_registry().render_prometheus())
            elif route == "/healthz":
                self._healthz()
            elif route == "/statusz":
                self._statusz()
            elif route.startswith("/debug/trace/"):
                self._debug_trace(route.rsplit("/", 1)[-1])
            elif route == "/measures":
                self._send({"measures": self.service.measures()})
            elif route == "/stats":
                self._send(self.service.stats())
            elif route == "/point":
                measure = params["measure"]
                key = _parse_key(params["key"])
                value = self.service.point(measure, key)
                self._send(
                    {"measure": measure, "key": list(key),
                     "value": value}
                )
            elif route == "/range":
                measure = params["measure"]
                prefix = _parse_key(params.get("prefix", ""))
                rows = self.service.range(measure, prefix)
                self._send(
                    {
                        "measure": measure,
                        "prefix": list(prefix),
                        "rows": [
                            [list(key), value] for key, value in rows
                        ],
                    }
                )
            elif route == "/table":
                measure = params["measure"]
                table = self.service.table(measure)
                self._send(
                    {
                        "measure": measure,
                        "levels": list(table.granularity.levels),
                        "rows": [
                            [list(key), value]
                            for key, value in table.items()
                        ],
                    }
                )
            else:
                self._send({"error": f"unknown route {route!r}"}, 404)
        except KeyError as exc:
            self._send({"error": f"missing parameter: {exc}"}, 400)
        except ServiceError as exc:
            self._send({"error": str(exc)}, 404)
        except Exception as exc:  # pragma: no cover - defensive
            self._send({"error": f"{type(exc).__name__}: {exc}"}, 500)

    def _service_error(self, exc: ServiceError, status: int) -> None:
        """Serialize a ServiceError, with analyzer diagnostics when the
        failure is a rejected workflow."""
        payload: dict = {"error": str(exc)}
        if exc.diagnostics:
            payload["diagnostics"] = [
                d.to_dict() for d in exc.diagnostics
            ]
            status = 422
        self._send(payload, status)

    def _post_workflow(self, body: dict) -> None:
        """``POST /workflow`` — submit a workflow for validation.

        The body names a query family (``{"query": "escalation"}``,
        resolved by the trusted server-side builders in
        :mod:`repro.queries.registry`) or carries a base64-encoded
        pickled :class:`~repro.workflow.AggregationWorkflow` (the same
        form the store persists at bootstrap); pickle bodies are only
        accepted when the server allows them — loopback binds by
        default, since unpickling executes arbitrary client code.  The
        full analysis report comes back: 200 when the workflow is
        servable, 422 with the error-level diagnostics when the
        service would reject it.
        """
        from repro.analysis import analyze
        from repro.queries.registry import (
            QUERY_FAMILIES,
            build_query_workflow,
        )

        query = body.get("query")
        if query is not None:
            workflow = build_query_workflow(query)
        elif not getattr(self.server, "allow_pickle_workflows", True):
            self._send(
                {
                    "error": "pickled workflow submissions are "
                    "disabled on this server (non-loopback bind); "
                    "POST {'query': <name>} instead, or restart "
                    "with --allow-pickle-workflows",
                    "queries": sorted(QUERY_FAMILIES),
                },
                403,
            )
            return
        else:
            workflow = pickle.loads(base64.b64decode(body["workflow"]))
        report = analyze(workflow)
        payload = report.to_dict()
        if not report.ok:
            payload["error"] = (
                f"workflow {workflow.name!r} rejected by static "
                f"analysis ({len(report.errors)} error(s))"
            )
        self._send(payload, 200 if report.ok else 422)

    def _do_post(self, route: str) -> None:
        try:
            self._count_request(route)
            if route not in ("/ingest", "/workflow"):
                self._send({"error": f"unknown route {route!r}"}, 404)
                return
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length) or b"{}")
            if route == "/workflow":
                self._post_workflow(body)
                return
            records = [tuple(record) for record in body["records"]]
            report = self.service.ingest(records)
            self._send(
                {
                    "generation": report.generation,
                    "records": report.records,
                    "merged_nodes": report.merged_nodes,
                    "updated_measures": report.updated_measures,
                    "deferred_measures": report.deferred_measures,
                }
            )
        except (KeyError, ValueError, TypeError) as exc:
            self._send(
                {"error": f"bad {route.lstrip('/')} body: {exc}"}, 400
            )
        except ServiceError as exc:
            self._service_error(exc, 400)
        except Exception as exc:  # pragma: no cover - defensive
            self._send({"error": f"{type(exc).__name__}: {exc}"}, 500)


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for graceful teardown.

    Handler threads are non-daemonic and joined on ``server_close()``,
    so shutdown drains in-flight requests instead of abandoning them
    mid-write; the per-connection socket timeout on the handler keeps
    a stuck client from blocking that drain indefinitely.
    """

    daemon_threads = False
    block_on_close = True
    # Bound the accept loop's poll interval so shutdown() is prompt.
    timeout = 5.0


def make_server(
    service: MeasureService,
    host: str = "127.0.0.1",
    port: int = 0,
    allow_pickle_workflows: bool | None = None,
    access_log_path: str | None = None,
    slow_query_path: str | None = None,
    slow_query_seconds: float | None = None,
) -> ServiceHTTPServer:
    """A threaded HTTP server bound to ``host:port`` (0 = ephemeral).

    ``allow_pickle_workflows`` gates pickle bodies on ``POST
    /workflow`` (``None`` = only on loopback binds; ``True`` is for
    trusted operators only, since unpickling executes arbitrary client
    code — named ``query`` families are always accepted).

    The caller owns the server's lifecycle::

        server = make_server(service, port=8651)
        threading.Thread(target=server.serve_forever).start()
        ...
        shutdown_gracefully(server)
    """
    if allow_pickle_workflows is None:
        allow_pickle_workflows = host in LOOPBACK_HOSTS
    server = ServiceHTTPServer((host, port), _ServiceHandler)
    server.service = service  # type: ignore[attr-defined]
    server.allow_pickle_workflows = (  # type: ignore[attr-defined]
        allow_pickle_workflows
    )
    server.started_mono = time.monotonic()  # type: ignore[attr-defined]
    server.slo = SLOTracker()  # type: ignore[attr-defined]
    slow_kwargs = {"path": slow_query_path}
    if slow_query_seconds is not None:
        slow_kwargs["threshold_seconds"] = float(slow_query_seconds)
    server.observer = RequestObserver(  # type: ignore[attr-defined]
        access_log=RequestLog(access_log_path),
        slow_log=SlowQueryLog(**slow_kwargs),
        slo=server.slo,
    )
    return server


def shutdown_gracefully(server: ServiceHTTPServer) -> None:
    """Stop accepting, drain in-flight requests, flush pending work.

    After the drain, deferred (dirty-holistic) measures are resolved so
    the store's final MANIFEST on disk reflects everything the service
    acknowledged — a restarted server serves every measure fresh
    without a recovery recompute.
    """
    server.shutdown()
    server.server_close()  # joins handler threads (block_on_close)
    service = getattr(server, "service", None)
    if service is not None:
        service.resolve()
    observer = getattr(server, "observer", None)
    if observer is not None:
        observer.close()
