"""Persistent, crash-safe measure store.

The paper's one-pass algorithm "flushes the finalized entries to disk"
(Table 7); this module gives those flushed entries a durable home so a
computed measure can be *served* and incrementally maintained instead of
being recomputed from scratch per request.

Layout of a store directory::

    store/
      MANIFEST.json        # the single source of truth, swapped atomically
      segments/
        t000001.seg        # one sorted segment per committed table
        t000001.idx        # sparse region-key index for the segment
        f000002.bin        # appended fact batches (binary flat files)

Every committed table — finalized measure values or raw basic-node
accumulator states — is one *segment*: newline-delimited JSON rows
sorted by region key, plus a sparse index holding every ``index_every``-th
``(key, byte offset)`` pair.  Point lookups bisect the sparse index and
scan at most one stride of the data file; granularity-prefix range scans
bisect to the first matching key and stream forward while the prefix
holds (region keys are full dimension width and totally ordered, per
Proposition 1).

Commit protocol (and why a crash cannot corrupt the store): segment
files for the new generation are written and fsynced first, under names
the current manifest does not reference; then the new manifest is
written to a temporary file and atomically swapped in with
``os.replace``.  A crash before the swap leaves the old manifest intact
— the half-written segments are orphans, ignored and garbage-collected
on the next open.  A crash after the swap leaves the new state fully
durable.  Readers therefore always see a consistent generation.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from bisect import bisect_right
from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import (
    STORE_COMMIT_SECONDS,
    STORE_FACTS,
    STORE_GENERATION,
    STORE_SEGMENTS,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema, Record
from repro.storage.flatfile import FlatFileDataset, write_flatfile
from repro.storage.sink import Sink
from repro.storage.table import Dataset, MeasureTable
from repro.testkit.failpoints import fire, register

# Injection sites of the commit protocol and its recovery half; the
# crash-recovery sweeper (repro.testkit.sweeper) enumerates the
# ``store`` scope and kills a committing subprocess at each of these.
FP_SEGMENT_WRITE = register(
    "store.segment-write", "store",
    "after a segment's rows are written, before its fsync",
)
FP_SEGMENT_FSYNC = register(
    "store.segment-fsync", "store",
    "after a segment data file is fsynced, before its index is written",
)
FP_FACTS_APPEND = register(
    "store.facts-append", "store",
    "after a fact batch lands on disk, before it is staged",
)
FP_MANIFEST_WRITE = register(
    "store.manifest-write", "store",
    "after the new manifest is written to its temp file, before the swap",
)
FP_MANIFEST_SWAP = register(
    "store.manifest-swap", "store",
    "immediately after the atomic manifest swap",
)
FP_REPLACED_GC = register(
    "store.replaced-gc", "store",
    "after the swap, before segments replaced by the commit are deleted",
)
FP_OPEN_GC = register(
    "store.open-gc", "store",
    "at the start of orphan collection when a store is opened",
)

_MANIFEST = "MANIFEST.json"
_SEGMENT_DIR = "segments"
_FORMAT = 1

#: Sparse-index stride: one index entry per this many segment rows.
INDEX_EVERY = 64


# -- value / state codec ---------------------------------------------------
#
# Segment rows are JSON.  Measure values are scalars (or None), but raw
# accumulator states include tuples (avg, var) and bytearrays (HLL
# sketch registers), so non-JSON types are wrapped in one-key tag
# objects.  Plain dicts never occur as measure values in this system,
# which keeps the tagging unambiguous.

def encode_cell(value):
    """Encode a measure value or accumulator state as JSON-safe data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_cell(item) for item in value]}
    if isinstance(value, (bytes, bytearray)):
        return {"b": bytes(value).hex()}
    if isinstance(value, list):
        return {"l": [encode_cell(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {"s": sorted((encode_cell(item) for item in value),
                            key=repr)}
    raise StorageError(
        f"cannot persist value of type {type(value).__name__}: {value!r}"
    )


def decode_cell(data):
    """Inverse of :func:`encode_cell`."""
    if isinstance(data, dict):
        if "t" in data:
            return tuple(decode_cell(item) for item in data["t"])
        if "b" in data:
            return bytearray.fromhex(data["b"])
        if "l" in data:
            return [decode_cell(item) for item in data["l"]]
        if "s" in data:
            return {decode_cell(item) for item in data["s"]}
        raise StorageError(f"unknown cell tag in {data!r}")
    return data


def _dump_row(key: tuple, value) -> bytes:
    return (
        json.dumps([list(key), encode_cell(value)], separators=(",", ":"))
        .encode("utf-8")
        + b"\n"
    )


def _load_row(line: bytes) -> tuple[tuple, object]:
    key, value = json.loads(line)
    return tuple(key), decode_cell(value)


def _fsync_file(fh) -> None:
    fh.flush()
    os.fsync(fh.fileno())


class _ChainedFacts(Dataset):
    """All fact segments of a store, scanned back to back."""

    def __init__(self, datasets: list[FlatFileDataset],
                 schema: DatasetSchema) -> None:
        self.schema = schema
        self._datasets = datasets

    def scan(self) -> Iterator[Record]:
        for dataset in self._datasets:
            yield from dataset.scan()

    def __len__(self) -> int:
        return sum(len(dataset) for dataset in self._datasets)


class MeasureStore:
    """A directory of committed measure tables behind one manifest.

    Two kinds of tables are stored, in separate namespaces:

    - ``values`` — finalized measure entries, the servable result of a
      query output;
    - ``states`` — raw basic-node accumulator states, the mergeable
      substrate incremental ingestion folds new fact batches into.

    The store is deliberately schema-agnostic: keys are integer tuples
    and granularities are stored as level vectors.  Binding tables back
    to :class:`~repro.cube.granularity.Granularity` objects is the
    service layer's job (it owns the workflow and therefore the schema).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._segment_dir = os.path.join(path, _SEGMENT_DIR)
        os.makedirs(self._segment_dir, exist_ok=True)
        self._index_cache: dict[str, dict] = {}
        manifest_path = os.path.join(path, _MANIFEST)
        # A commit that crashed between writing the new manifest and
        # swapping it in leaves a stale (possibly torn) temp file; it
        # was never authoritative, so drop it on open.
        with contextlib.suppress(OSError):
            os.remove(manifest_path + ".tmp")
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as fh:
                self.manifest = json.load(fh)
            if self.manifest.get("format") != _FORMAT:
                raise StorageError(
                    f"{path}: store format "
                    f"{self.manifest.get('format')!r}, expected {_FORMAT}"
                )
            self._collect_orphans()
        else:
            self.manifest = {
                "format": _FORMAT,
                "generation": 0,
                "next_file": 1,
                "values": {},
                "states": {},
                "facts": [],
                "dirty": {"nodes": {}, "measures": []},
                "meta": {},
            }

    # -- introspection -------------------------------------------------

    @property
    def generation(self) -> int:
        """Commit counter; bumped by every successful manifest swap."""
        return self.manifest["generation"]

    def is_empty(self) -> bool:
        """True until the first commit lands."""
        return self.generation == 0

    def measures(self) -> list[str]:
        """Names of the servable value tables, sorted."""
        return sorted(self.manifest["values"])

    def state_nodes(self) -> list[str]:
        """Names of the persisted basic-node state tables, sorted."""
        return sorted(self.manifest["states"])

    def table_info(self, name: str, kind: str = "values") -> dict:
        """Manifest entry for one table (levels, row count, file)."""
        try:
            return self.manifest[kind][name]
        except KeyError:
            raise StorageError(
                f"store has no {kind} table {name!r}; "
                f"have {sorted(self.manifest[kind])}"
            ) from None

    def levels(self, name: str, kind: str = "values") -> tuple[int, ...]:
        """Granularity level vector a table was committed with."""
        return tuple(self.table_info(name, kind)["levels"])

    def meta(self) -> dict:
        """The free-form metadata blob recorded by commits."""
        return dict(self.manifest["meta"])

    def dirty_nodes(self) -> dict[str, set | None]:
        """Holistic basic nodes awaiting recompute: name → affected keys.

        A value of ``None`` means *all* regions of the node are dirty.
        """
        out: dict[str, set | None] = {}
        for name, keys in self.manifest["dirty"]["nodes"].items():
            out[name] = (
                None if keys is None else {tuple(key) for key in keys}
            )
        return out

    def dirty_measures(self) -> set[str]:
        """Value tables whose contents are stale pending recompute."""
        return set(self.manifest["dirty"]["measures"])

    def segment_count(self) -> int:
        """Live segments the manifest references: one per value table,
        one per state table, one per fact batch (index files are not
        counted — they ride along with their segment)."""
        return (
            len(self.manifest["values"])
            + len(self.manifest["states"])
            + len(self.manifest["facts"])
        )

    # -- reads ---------------------------------------------------------

    def _segment_path(self, info: dict) -> str:
        return os.path.join(self._segment_dir, info["file"])

    def _index_of(self, info: dict) -> dict:
        """Load (and cache) a segment's sparse index.

        Segment files are immutable once committed, so caching by file
        name is safe across generations.
        """
        cached = self._index_cache.get(info["index"])
        if cached is None:
            path = os.path.join(self._segment_dir, info["index"])
            with open(path, "r", encoding="utf-8") as fh:
                cached = json.load(fh)
            self._index_cache[info["index"]] = cached
        return cached

    def read_table(self, name: str, kind: str = "values") -> dict:
        """Load one table fully: ``{region key: value}``."""
        info = self.table_info(name, kind)
        table: dict = {}
        with open(self._segment_path(info), "rb") as fh:
            for line in fh:
                key, value = _load_row(line)
                table[key] = value
        return table

    def iter_table(
        self, name: str, kind: str = "values"
    ) -> Iterator[tuple[tuple, object]]:
        """Stream one table's rows in ascending key order."""
        info = self.table_info(name, kind)
        with open(self._segment_path(info), "rb") as fh:
            for line in fh:
                yield _load_row(line)

    def point(self, name: str, key: tuple, kind: str = "values"):
        """Disk point lookup through the sparse index.

        Raises:
            KeyError: if the table holds no entry for ``key``.
        """
        info = self.table_info(name, kind)
        index = self._index_of(info)
        entries = index["entries"]
        entry_keys = [entry[0] for entry in entries]
        slot = bisect_right(entry_keys, list(key)) - 1
        if slot < 0:
            raise KeyError(key)
        with open(self._segment_path(info), "rb") as fh:
            fh.seek(entries[slot][1])
            for __ in range(index["every"]):
                line = fh.readline()
                if not line:
                    break
                row_key, value = _load_row(line)
                if row_key == key:
                    return value
                if row_key > key:
                    break
        raise KeyError(key)

    def scan_prefix(
        self, name: str, prefix: tuple = (), kind: str = "values"
    ) -> list[tuple[tuple, object]]:
        """All rows whose key starts with ``prefix``, in key order.

        An empty prefix returns the whole table.  The sparse index
        bounds the scan's starting point; the scan stops at the first
        key past the prefix (keys are sorted).
        """
        info = self.table_info(name, kind)
        prefix = tuple(prefix)
        width = len(prefix)
        rows: list[tuple[tuple, object]] = []
        start = 0
        if width:
            index = self._index_of(info)
            entries = index["entries"]
            entry_keys = [entry[0] for entry in entries]
            # The last index entry strictly before the prefix region is
            # a safe starting point: a shorter list compares less than
            # any list it prefixes, so bisect_right on the raw prefix
            # lands at the first key that could match.
            slot = bisect_right(entry_keys, list(prefix)) - 1
            if slot >= 0:
                start = entries[slot][1]
        with open(self._segment_path(info), "rb") as fh:
            fh.seek(start)
            for line in fh:
                key, value = _load_row(line)
                head = key[:width]
                if head < prefix:
                    continue
                if head > prefix:
                    break
                rows.append((key, value))
        return rows

    def measure_table(
        self, name: str, granularity: Granularity
    ) -> MeasureTable:
        """Materialize a value table as a :class:`MeasureTable`."""
        return MeasureTable(name, granularity, rows=self.read_table(name))

    # -- facts ---------------------------------------------------------

    def fact_count(self) -> int:
        """Total records across all committed fact segments."""
        return sum(entry["rows"] for entry in self.manifest["facts"])

    def fact_dataset(self, schema: DatasetSchema) -> Dataset:
        """Every committed fact batch, as one scannable dataset."""
        datasets = [
            FlatFileDataset(
                os.path.join(self._segment_dir, entry["file"]), schema
            )
            for entry in self.manifest["facts"]
        ]
        return _ChainedFacts(datasets, schema)

    # -- writes --------------------------------------------------------

    def begin(self) -> "StoreCommit":
        """Start staging one atomic commit."""
        return StoreCommit(self)

    # -- housekeeping --------------------------------------------------

    def _referenced_files(self) -> set[str]:
        files: set[str] = set()
        for namespace in ("values", "states"):
            for info in self.manifest[namespace].values():
                files.add(info["file"])
                files.add(info["index"])
        for entry in self.manifest["facts"]:
            files.add(entry["file"])
        return files

    def _collect_orphans(self) -> None:
        """Delete segment files the manifest does not reference.

        This is the recovery half of the commit protocol: segments of a
        commit that crashed before its manifest swap are invisible (the
        manifest never pointed at them) and reclaimed here.
        """
        fire(FP_OPEN_GC)
        referenced = self._referenced_files()
        try:
            present = os.listdir(self._segment_dir)
        except OSError:
            return
        for filename in present:
            if filename not in referenced:
                with contextlib.suppress(OSError):
                    os.remove(
                        os.path.join(self._segment_dir, filename)
                    )


class StoreCommit:
    """One staged, atomic store mutation.

    Stage any number of table writes, fact appends, dirty-set changes,
    and metadata updates, then :meth:`commit`.  Data files land on disk
    as they are staged (fsynced, but unreferenced); nothing becomes
    visible until the manifest swap.  :meth:`abort` (or crashing)
    leaves the store exactly as it was.
    """

    def __init__(self, store: MeasureStore) -> None:
        self.store = store
        self._next_file = store.manifest["next_file"]
        self._staged_values: dict[str, dict] = {}
        self._staged_states: dict[str, dict] = {}
        self._staged_facts: list[dict] = []
        self._dirty_nodes = {
            name: (None if keys is None else [list(k) for k in keys])
            for name, keys in store.dirty_nodes().items()
        }
        self._dirty_measures = set(store.dirty_measures())
        self._meta_updates: dict = {}
        self._staged_files: list[str] = []
        self._done = False

    def _claim_file(self, prefix: str, suffix: str) -> str:
        name = f"{prefix}{self._next_file:06d}{suffix}"
        self._next_file += 1
        self._staged_files.append(name)
        return name

    def _write_segment(self, rows: dict) -> tuple[str, str, int]:
        seg_name = self._claim_file("t", ".seg")
        idx_name = seg_name[:-4] + ".idx"
        self._staged_files.append(idx_name)
        seg_path = os.path.join(self.store._segment_dir, seg_name)
        idx_path = os.path.join(self.store._segment_dir, idx_name)
        items = sorted(rows.items())
        entries = []
        offset = 0
        with open(seg_path, "wb") as fh:
            for i, (key, value) in enumerate(items):
                if i % INDEX_EVERY == 0:
                    entries.append([list(key), offset])
                line = _dump_row(key, value)
                fh.write(line)
                offset += len(line)
            fire(FP_SEGMENT_WRITE, path=seg_path)
            _fsync_file(fh)
        fire(FP_SEGMENT_FSYNC, path=seg_path)
        with open(idx_path, "w", encoding="utf-8") as fh:
            json.dump(
                {"every": INDEX_EVERY, "entries": entries,
                 "rows": len(items)},
                fh,
            )
            _fsync_file(fh)
        return seg_name, idx_name, len(items)

    def put_values(
        self, name: str, granularity: Granularity, rows: dict
    ) -> None:
        """Stage one servable measure table (replaces any prior one)."""
        seg, idx, count = self._write_segment(rows)
        self._staged_values[name] = {
            "file": seg,
            "index": idx,
            "levels": list(granularity.levels),
            "rows": count,
        }

    def put_states(
        self, name: str, granularity: Granularity, rows: dict,
        agg_name: str = "",
    ) -> None:
        """Stage one basic node's accumulator-state table."""
        seg, idx, count = self._write_segment(rows)
        self._staged_states[name] = {
            "file": seg,
            "index": idx,
            "levels": list(granularity.levels),
            "rows": count,
            "agg": agg_name,
        }

    def append_facts(
        self, schema: DatasetSchema, records: Iterable[Record]
    ) -> int:
        """Stage one fact batch as a new flat-file segment."""
        name = self._claim_file("f", ".bin")
        path = os.path.join(self.store._segment_dir, name)
        count = write_flatfile(path, schema, records)
        with open(path, "rb") as fh:
            os.fsync(fh.fileno())
        fire(FP_FACTS_APPEND, path=path)
        self._staged_facts.append({"file": name, "rows": count})
        return count

    def mark_dirty(
        self, node: str, keys: Iterable[tuple] | None
    ) -> None:
        """Mark a basic node's regions dirty (``None`` = all regions)."""
        if keys is None:
            self._dirty_nodes[node] = None
            return
        existing = self._dirty_nodes.get(node)
        if existing is None and node in self._dirty_nodes:
            return  # already fully dirty
        merged = {tuple(k) for k in (existing or [])}
        merged.update(tuple(k) for k in keys)
        self._dirty_nodes[node] = [list(k) for k in sorted(merged)]

    def mark_measure_dirty(self, name: str) -> None:
        """Flag a value table as stale pending lazy recompute."""
        self._dirty_measures.add(name)

    def clear_dirty(self) -> None:
        """Drop all dirty markers (after a successful recompute)."""
        self._dirty_nodes = {}
        self._dirty_measures = set()

    def update_meta(self, updates: dict) -> None:
        """Merge keys into the manifest's free-form metadata blob."""
        self._meta_updates.update(updates)

    def abort(self) -> None:
        """Discard the staged commit and remove its data files."""
        self._done = True
        for name in self._staged_files:
            with contextlib.suppress(OSError):
                os.remove(os.path.join(self.store._segment_dir, name))

    def commit(self) -> int:
        """Swap the new manifest in atomically; returns the generation.

        Everything staged becomes visible at once; segment files
        replaced by this commit are deleted afterwards (failures there
        are harmless — the next open garbage-collects orphans).
        """
        if self._done:
            raise StorageError("commit object already finished")
        self._done = True
        started = time.perf_counter()
        store = self.store
        old_manifest = store.manifest
        manifest = {
            "format": _FORMAT,
            "generation": old_manifest["generation"] + 1,
            "next_file": self._next_file,
            "values": dict(old_manifest["values"]),
            "states": dict(old_manifest["states"]),
            "facts": list(old_manifest["facts"]) + self._staged_facts,
            "dirty": {
                "nodes": self._dirty_nodes,
                "measures": sorted(self._dirty_measures),
            },
            "meta": {**old_manifest["meta"], **self._meta_updates},
        }
        replaced: list[dict] = []
        for name, info in self._staged_values.items():
            if name in manifest["values"]:
                replaced.append(manifest["values"][name])
            manifest["values"][name] = info
        for name, info in self._staged_states.items():
            if name in manifest["states"]:
                replaced.append(manifest["states"][name])
            manifest["states"][name] = info

        manifest_path = os.path.join(store.path, _MANIFEST)
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
            _fsync_file(fh)
        fire(FP_MANIFEST_WRITE, path=tmp_path)
        os.replace(tmp_path, manifest_path)
        # No path here: post-swap the manifest is authoritative, and a
        # torn authoritative manifest is outside the protocol's fault
        # model (fsync + atomic replace rule it out).
        fire(FP_MANIFEST_SWAP)
        store.manifest = manifest
        fire(FP_REPLACED_GC)
        for info in replaced:
            for filename in (info["file"], info["index"]):
                with contextlib.suppress(OSError):
                    os.remove(
                        os.path.join(store._segment_dir, filename)
                    )
        duration = time.perf_counter() - started
        registry = get_registry()
        registry.histogram(
            STORE_COMMIT_SECONDS,
            "Manifest-swap commit latency of the measure store",
        ).observe(duration)
        registry.gauge(
            STORE_GENERATION, "Committed generation of the measure store"
        ).set(manifest["generation"])
        registry.gauge(
            STORE_SEGMENTS,
            "Live segments (value + state tables and fact batches)",
        ).set(store.segment_count())
        registry.gauge(
            STORE_FACTS, "Fact records across all committed batches"
        ).set(store.fact_count())
        get_tracer().add_complete(
            "store:commit",
            cat="store",
            start_perf=started,
            duration=duration,
            args={"generation": manifest["generation"]},
        )
        return manifest["generation"]


class StoreSink(Sink):
    """A sink that flushes an engine run straight into a store.

    Wire any engine's output into a persistent store in one line::

        engine.evaluate(dataset, workflow, sink=StoreSink(store))

    Finalized entries become ``values`` tables; when the engine offers
    partial-state capture (the one-pass sort/scan engine does), raw
    basic-node accumulator states for distributive/algebraic aggregates
    become ``states`` tables — the substrate of incremental ingestion.
    Everything lands in one atomic commit at :meth:`close`.

    Args:
        store: Destination store.
        meta: Optional metadata merged into the manifest on commit.
        state_aggs: Optional ``{basic node name: aggregate}`` map; when
            given, captured states are persisted only for nodes whose
            aggregate is not holistic (holistic exact states grow with
            the group and are recomputed from facts instead), and the
            aggregate name is recorded with each state table.
        autocommit: Commit on :meth:`close` (the default).  The
            ingestion layer disables this and stages the sink's tables
            into a wider commit (tables + fact batch, atomically) via
            :meth:`stage_into`.
    """

    wants_states = True

    def __init__(
        self,
        store: MeasureStore,
        meta: dict | None = None,
        state_aggs: dict | None = None,
        autocommit: bool = True,
    ) -> None:
        self.store = store
        self.meta = meta or {}
        self.state_aggs = state_aggs
        self.autocommit = autocommit
        self.tables: dict[str, MeasureTable] = {}
        self.states: dict[str, MeasureTable] = {}
        self.committed_generation: int | None = None

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self.tables.setdefault(name, MeasureTable(name, granularity))

    def emit(self, name: str, key: tuple, value) -> None:
        self.tables[name].rows[key] = value

    def open_states(self, name: str, granularity: Granularity) -> None:
        self.states.setdefault(name, MeasureTable(name, granularity))

    def emit_state(self, name: str, key: tuple, state) -> None:
        self.states[name].rows[key] = state

    def _persistable_state(self, name: str) -> str | None:
        """Agg name if this node's states should be persisted."""
        from repro.aggregates.base import Kind

        if self.state_aggs is None:
            return ""
        agg = self.state_aggs.get(name)
        if agg is None or agg.kind is Kind.HOLISTIC:
            return None
        return agg.name

    def stage_into(self, commit: StoreCommit) -> None:
        """Stage the collected tables into an externally managed commit."""
        for name, table in self.tables.items():
            commit.put_values(name, table.granularity, table.rows)
        for name, table in self.states.items():
            agg_name = self._persistable_state(name)
            if agg_name is None:
                continue
            commit.put_states(
                name, table.granularity, table.rows, agg_name=agg_name
            )
        if self.meta:
            commit.update_meta(self.meta)

    def close(self) -> None:
        if not self.autocommit:
            return
        commit = self.store.begin()
        self.stage_into(commit)
        self.committed_generation = commit.commit()

    def result(self) -> dict[str, MeasureTable]:
        return self.tables
