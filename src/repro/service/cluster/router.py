"""The shard router: one logical measure service over many shards.

:class:`MeasureCluster` presents the single-store
:class:`~repro.service.server.MeasureService` read/write surface while
fanning work out to shard workers and merging their answers:

- **point** goes to the single owning shard (cut-point lookup on the
  lifted key);
- **range** goes to the owner when the prefix pins the partition
  dimension, otherwise fans out and concatenates — owned ranges are
  disjoint, so the merge is a sort of disjoint row sets;
- **table** fans out and unions disjoint per-shard tables;
- **rollup** fans out per-shard partial rollups and merges them
  exactly for the mergeable aggregates (sum/count merge by summing
  partials, min/max by re-applying), and falls back to an exact
  central rollup over the unioned owned rows otherwise.

Writes go through the journal-backed two-phase commit documented in
:mod:`repro.service.cluster.manifest`: journal the delta durably, let
every affected shard prepare (its own atomic store commit, stamped
with the target cluster epoch *inside* that commit), then swap the
cluster manifest and drop the journal.  :func:`recover_cluster` is the
redo path — it is called on every open, and the crash sweeper drives
it through every registered fail point.  An ingest that aborts
mid-commit *fences* the cluster (reads and writes raise until
:meth:`MeasureCluster.recover` rolls the journal forward): serving
would mix pre- and post-delta shards, and a second ingest would reuse
the journaled epoch and overwrite the only record of the first delta.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ClusterError
from repro.aggregates.base import get_aggregate
from repro.cube.granularity import Granularity
from repro.engine.compile import CompiledGraph, compile_workflow
from repro.obs import (
    current_context,
    get_registry,
    get_tracer,
    use_context,
)
from repro.obs.metrics import (
    CLUSTER_EPOCH,
    CLUSTER_INGEST_SECONDS,
    CLUSTER_QUERY_SECONDS,
    CLUSTER_REQUESTS,
)
from repro.service.cluster.manifest import (
    FP_SHARD_PREPARE,
    ClusterManifest,
    IngestJournal,
    shard_dir,
)
from repro.service.cluster.partitioning import (
    ShardMap,
    build_shard_map,
    key_lift_fn,
    partition_value_fn,
)
from repro.service.cluster.worker import (
    MERGEABLE_ROLLUP_AGGS,
    LocalShard,
    ShardProcess,
    ShardWorker,
)
from repro.service.ingest import load_workflow, reject_invalid_workflow
from repro.service.store import MeasureStore
from repro.storage.table import MeasureTable
from repro.testkit.failpoints import fire, register

logger = logging.getLogger("repro.service.cluster")

FP_ROUTER_FANOUT = register(
    "cluster.router-fanout", "cluster",
    "before a read request fans out to the shard workers",
)

#: How rollup partials of each mergeable aggregate combine across
#: shards.  ``count`` partials are themselves counts, so they *sum*;
#: re-applying ``count`` would count the partials instead.
_PARTIAL_MERGE = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}


class _RootStore:
    """Duck-typed store handle rooting ``load_workflow`` at the cluster."""

    def __init__(self, path: str) -> None:
        self.path = path


def _load_root_workflow(root: str, workflow=None):
    if workflow is not None:
        return workflow
    workflow = load_workflow(_RootStore(root))
    if workflow is None:
        raise ClusterError(
            f"cluster {root!r} has no saved workflow (it was not "
            "picklable at bootstrap); pass the workflow explicitly"
        )
    return workflow


class MeasureCluster:
    """A sharded measure service behind one client-facing object.

    Construct via :func:`bootstrap_cluster` (new data) or
    :func:`open_cluster` (existing directory); both run crash recovery
    first.  ``mode`` selects the execution substrate: ``"local"`` runs
    every shard in-process behind per-shard locks, ``"process"`` gives
    each shard its own OS process (shared-nothing reads, supervised
    respawn on worker death).
    """

    def __init__(
        self,
        root: str,
        manifest: ClusterManifest,
        workflow,
        mode: str = "local",
        cache_size: int = 256,
    ) -> None:
        if mode not in ("local", "process"):
            raise ClusterError(f"unknown cluster mode {mode!r}")
        self.root = root
        self.workflow = workflow
        self.mode = mode
        self.graph: CompiledGraph = compile_workflow(workflow)
        self._manifest = manifest
        self._cache_size = cache_size
        self._ingest_lock = threading.Lock()
        self._route_record = partition_value_fn(
            self.graph, manifest.shard_map
        )
        self._lifts: dict[str, object] = {}
        self._closed = False
        self._failed = False
        self._open_shards()
        if mode == "process":
            self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
                max_workers=manifest.num_shards,
                thread_name_prefix="repro-fanout",
            )
        else:
            self._pool = None
        self._epoch_gauge = get_registry().gauge(
            CLUSTER_EPOCH, "Cluster epoch of the last completed commit"
        )
        self._epoch_gauge.set(manifest.epoch)
        self._requests = get_registry().counter(
            CLUSTER_REQUESTS,
            "Cluster requests served, by operation",
            labelnames=("op",),
        )
        self._query_seconds = get_registry().histogram(
            CLUSTER_QUERY_SECONDS,
            "Latency of cluster read operations",
            labelnames=("op",),
        )

    def _open_shards(self) -> None:
        """(Re)create one shard handle per manifest entry."""
        if self.mode == "process":
            self.shards: list = [
                ShardProcess(self.root, index)
                for index in range(self._manifest.num_shards)
            ]
        else:
            self.shards = [
                LocalShard(
                    ShardWorker(
                        MeasureStore(shard_dir(self.root, index)),
                        self.workflow,
                        self._manifest.shard_map,
                        index,
                        cache_size=self._cache_size,
                    )
                )
                for index in range(self._manifest.num_shards)
            ]

    # -- introspection -------------------------------------------------

    @property
    def manifest(self) -> ClusterManifest:
        return self._manifest

    @property
    def failed(self) -> bool:
        """True after an aborted ingest, until :meth:`recover` runs."""
        return self._failed

    def _check_serving(self) -> None:
        """Refuse to serve while shards may disagree on the epoch.

        An ingest that aborted mid-prepare leaves some shards one
        epoch ahead of the rest; until :meth:`recover` rolls the
        journal forward, reads could mix pre- and post-delta rows and
        a new ingest would reuse the journaled epoch — overwriting the
        journal and losing the first delta on unprepared shards.
        """
        if self._failed:
            raise ClusterError(
                f"cluster {self.root!r} has an aborted ingest in its "
                "journal; call recover() (or reopen the cluster) "
                "before serving"
            )

    @property
    def shard_map(self) -> ShardMap:
        return self._manifest.shard_map

    @property
    def num_shards(self) -> int:
        return self._manifest.num_shards

    @property
    def epoch(self) -> int:
        return self._manifest.epoch

    def measures(self) -> list[dict]:
        self._check_serving()
        return self.shards[0].call("measures")

    def stats(self) -> dict:
        self._check_serving()
        shard_stats = self._fanout("stats")
        return {
            "epoch": self.epoch,
            "shards": shard_stats,
            "mode": self.mode,
            "generation": max(
                (s["generation"] for s in shard_stats if s), default=0
            ),
            "facts": sum(s["facts"] for s in shard_stats if s),
            "cache_hits": sum(s["cache_hits"] for s in shard_stats if s),
            "cache_misses": sum(
                s["cache_misses"] for s in shard_stats if s
            ),
            "dirty_measures": sorted(
                {
                    name
                    for s in shard_stats
                    if s
                    for name in s["dirty_measures"]
                }
            ),
        }

    # -- routing helpers -----------------------------------------------

    def _lift(self, measure: str):
        lift = self._lifts.get(measure)
        if lift is None:
            lift = key_lift_fn(self.graph, self.shard_map, measure)
            self._lifts[measure] = lift
        return lift

    def _granularity_of(self, measure: str) -> Granularity:
        outputs = self.graph.outputs
        if measure not in outputs:
            raise ClusterError(
                f"unknown measure {measure!r}; cluster serves "
                f"{sorted(outputs)}"
            )
        return outputs[measure][0].granularity

    def _observe(self, op: str, started: float) -> None:
        self._requests.labels(op=op).inc()
        self._query_seconds.labels(op=op).observe(
            time.perf_counter() - started
        )

    def _fanout(self, op: str, *args) -> list:
        """Run ``op`` on every shard; results indexed by shard."""
        fire(FP_ROUTER_FANOUT)
        if self._pool is None:
            return [shard.call(op, *args) for shard in self.shards]
        # Context variables do not cross thread-pool boundaries on
        # their own: re-enter the request's trace context inside each
        # pool thread so per-shard calls stay inside the trace.
        ctx = current_context()

        def run(shard):
            if ctx is None:
                return shard.call(op, *args)
            with use_context(ctx):
                return shard.call(op, *args)

        futures = [self._pool.submit(run, shard) for shard in self.shards]
        return [future.result() for future in futures]

    # -- reads ---------------------------------------------------------

    def point(self, measure: str, key, default=None):
        """One region's value, from the shard that owns it."""
        started = time.perf_counter()
        self._check_serving()
        key = tuple(key)
        with get_tracer().span(
            "cluster:point", cat="cluster", measure=measure
        ):
            self._granularity_of(measure)
            owner = self.shard_map.owner_of_value(
                self._lift(measure)(key)
            )
            value = self.shards[owner].call(
                "point", measure, key, default
            )
        self._observe("point", started)
        return value

    def range(self, measure: str, prefix=()) -> list:
        """All rows with the given key prefix, merged across shards."""
        started = time.perf_counter()
        self._check_serving()
        prefix = tuple(prefix)
        with get_tracer().span(
            "cluster:range", cat="cluster", measure=measure
        ):
            self._granularity_of(measure)
            dim = self.shard_map.dim
            if dim < len(prefix):
                # The prefix pins the partition dimension: one shard
                # owns every matching region.
                owner = self.shard_map.owner_of_value(
                    self._lift(measure)(prefix)
                )
                rows = self.shards[owner].call("scan", measure, prefix)
            else:
                parts = self._fanout("scan", measure, prefix)
                rows = sorted(
                    (row for part in parts if part for row in part),
                    key=lambda row: row[0],
                )
        self._observe("range", started)
        return rows

    def table(self, measure: str) -> MeasureTable:
        """The full measure table: disjoint union of owned shard rows."""
        started = time.perf_counter()
        self._check_serving()
        with get_tracer().span(
            "cluster:table", cat="cluster", measure=measure
        ):
            granularity = self._granularity_of(measure)
            rows: dict = {}
            for part in self._fanout("table_rows", measure):
                if part:
                    rows.update(part)
        self._observe("table", started)
        return MeasureTable(measure, granularity, rows=rows)

    def rollup(self, measure: str, spec, agg: str = "sum") -> MeasureTable:
        """Roll a measure up to a coarser granularity across shards."""
        started = time.perf_counter()
        self._check_serving()
        source = self._granularity_of(measure)
        target = Granularity.from_spec(source.schema, spec)
        if not source.finer_or_equal(target):
            raise ClusterError(
                f"rollup target {target!r} is not coarser than "
                f"{measure!r}'s granularity {source!r}"
            )
        with get_tracer().span(
            "cluster:rollup", cat="cluster", measure=measure, agg=agg
        ):
            rows = self._rollup_rows(measure, source, target, agg)
        self._observe("rollup", started)
        return MeasureTable(f"{measure}@{agg}", target, rows=rows)

    def _rollup_rows(self, measure, source, target, agg) -> dict:
        if agg in MERGEABLE_ROLLUP_AGGS:
            merge = get_aggregate(_PARTIAL_MERGE[agg])
            merged: dict = {}
            for part in self._fanout(
                "rollup_rows", measure, target.levels, agg
            ):
                for key, value in (part or {}).items():
                    state = merged.get(key)
                    if state is None and key not in merged:
                        state = merge.create()
                    merged[key] = merge.update(state, value)
            rows = {
                key: merge.finalize(state)
                for key, state in merged.items()
            }
        else:
            # Non-mergeable aggregate (e.g. avg over stored values):
            # gather the exact owned rows and roll up centrally.
            function = get_aggregate(agg)
            grouped: dict = {}
            for part in self._fanout("table_rows", measure):
                for key, value in (part or {}).items():
                    out_key = target.generalize_key(key, source)
                    state = grouped.get(out_key)
                    if state is None and out_key not in grouped:
                        state = function.create()
                    grouped[out_key] = function.update(state, value)
            rows = {
                key: function.finalize(state)
                for key, state in grouped.items()
            }
        return rows

    def resolve(self) -> bool:
        """Force deferred recomputes on every shard."""
        self._check_serving()
        return any(self._fanout("resolve"))

    # -- writes --------------------------------------------------------

    def _route_records(self, records) -> list[list[tuple]]:
        """Split a batch into per-shard sub-deltas (margins included)."""
        per_shard: list[list[tuple]] = [
            [] for _ in range(self.num_shards)
        ]
        readers = self.shard_map.readers_of_value
        route = self._route_record
        for record in records:
            for index in readers(route(record)):
                per_shard[index].append(record)
        return per_shard

    def ingest(self, records) -> dict:
        """Fold one delta into the cluster via two-phase commit."""
        started = time.perf_counter()
        records = [tuple(record) for record in records]
        with self._ingest_lock, get_tracer().span(
            "cluster:ingest", cat="cluster", records=len(records)
        ) as span:
            self._check_serving()
            stale = IngestJournal.load(self.root)
            if stale is not None:
                if stale.epoch > self._manifest.epoch:
                    # Another router object (or a crashed one) left an
                    # uncommitted ingest behind; starting a new epoch
                    # now would overwrite its journal and lose that
                    # delta on every shard that had not prepared.
                    raise ClusterError(
                        f"cluster {self.root!r} has an uncommitted "
                        f"ingest journal for epoch {stale.epoch}; "
                        "recover before ingesting"
                    )
                # The swap completed but the cleanup was lost: the
                # journal is stale, drop it before reusing the name.
                stale.clear()
            per_shard = self._route_records(records)
            epoch = self._manifest.epoch + 1

            # Phase 0: journal the delta durably before touching any
            # shard — from here the ingest survives any crash.
            facts_name = f"journal-{epoch:06d}.pkl"
            facts_path = os.path.join(self.root, facts_name)
            with open(facts_path, "wb") as fh:
                pickle.dump(records, fh)
                fh.flush()
                os.fsync(fh.fileno())
            baseline = [
                shard.call("generation") for shard in self.shards
            ]
            journal = IngestJournal(
                self.root,
                epoch=epoch,
                expected=[
                    gen + (1 if per_shard[i] else 0)
                    for i, gen in enumerate(baseline)
                ],
                baseline=baseline,
                facts=facts_name,
                records=len(records),
            )
            journal.write()

            try:
                # Phase 1: every affected shard prepares — its own
                # atomic commit, carrying the target epoch in the
                # same commit.
                reports = self._prepare(per_shard, epoch)

                # Phase 2: swap the cluster manifest.
                generations = [
                    reports[i]["generation"]
                    if i in reports
                    else baseline[i]
                    for i in range(self.num_shards)
                ]
                manifest = ClusterManifest(
                    self.root,
                    self.shard_map,
                    epoch,
                    generations,
                    meta=self._manifest.meta,
                )
                manifest.write()
            except Exception:
                # Some shards may have prepared epoch N+1 while others
                # are still at N, and the journal for N+1 is the only
                # record of the delta.  Fence the cluster — reads
                # would mix epochs, and a new ingest would reuse N+1
                # and overwrite the journal — until recover() rolls
                # the journal forward (or the directory is reopened,
                # which recovers on open).
                self._failed = True
                logger.exception(
                    "cluster %s: ingest for epoch %d aborted "
                    "mid-commit; journal retained, cluster fenced "
                    "until recover()",
                    self.root, epoch,
                )
                raise
            self._manifest = manifest
            self._epoch_gauge.set(epoch)
            # Drop the journal.  A failure past the swap is benign:
            # the new manifest is durable, so the journal is merely
            # stale and the next ingest or reopen clears it.
            journal.clear()

            updated: set[str] = set()
            deferred: set[str] = set()
            for report in reports.values():
                updated.update(report["updated_measures"])
                deferred.update(report["deferred_measures"])
            span.set(epoch=epoch, shards=len(reports))
            self._requests.labels(op="ingest").inc()
            get_registry().histogram(
                CLUSTER_INGEST_SECONDS,
                "End-to-end latency of one cluster ingest "
                "(journal through manifest swap)",
            ).observe(time.perf_counter() - started)
            return {
                "epoch": epoch,
                "records": len(records),
                "shards": sorted(reports),
                "updated_measures": sorted(updated),
                "deferred_measures": sorted(deferred - updated),
            }

    def _prepare(
        self, per_shard: list[list[tuple]], epoch: int
    ) -> dict[int, dict]:
        reports: dict[int, dict] = {}
        for index, sub in enumerate(per_shard):
            if not sub:
                continue
            reports[index] = self.shards[index].call(
                "ingest", sub, epoch
            )
            fire(FP_SHARD_PREPARE, path=shard_dir(self.root, index))
        return reports

    def recover(self) -> ClusterManifest:
        """Roll any in-flight ingest forward and reopen every shard.

        This is the in-process counterpart of the recovery that
        :func:`open_cluster` runs: redo the journaled delta on every
        shard still behind it, finish the manifest swap, and rebuild
        the shard handles so they serve the recovered state.  It
        clears the fenced state an aborted ingest leaves behind; call
        it with no requests in flight.
        """
        with self._ingest_lock, get_tracer().span(
            "cluster:recover", cat="cluster"
        ) as span:
            for shard in self.shards:
                shard.close()
            manifest = recover_cluster(self.root, self.workflow)
            self._manifest = manifest
            self._open_shards()
            self._epoch_gauge.set(manifest.epoch)
            self._failed = False
            span.set(epoch=manifest.epoch)
            return manifest

    # -- telemetry -----------------------------------------------------

    def pull_telemetry(self) -> None:
        """Absorb worker-process spans and metrics into this process.

        Local-mode shards share the process-wide tracer/registry, so
        there is nothing to pull.
        """
        if self.mode != "process":
            return
        tracer = get_tracer()
        registry = get_registry()
        for shard in self.shards:
            events, samples = shard.call("telemetry")
            tracer.absorb(events)
            registry.merge_dict(samples)

    # -- chaos / lifecycle ---------------------------------------------

    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker process (recovery drills)."""
        if self.mode != "process":
            raise ClusterError(
                "kill_worker requires process mode"
            )
        self.shards[index].kill()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "MeasureCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- construction ------------------------------------------------------


def bootstrap_cluster(
    root: str,
    workflow,
    records,
    num_shards: int,
    partition_dim: int | str | None = None,
    mode: str = "local",
    cache_size: int = 256,
    validate: bool = True,
    meta: dict | None = None,
) -> MeasureCluster:
    """Create a cluster directory and bootstrap every shard.

    The shard map's cut points come from the bootstrap batch's
    partition-value distribution; margins replicate boundary records to
    neighbor shards exactly as the partitioned engine does.  ``meta``
    is persisted in the cluster manifest — the CLI records the query
    family there so clusters whose workflow is unpicklable (no
    ``workflow.pkl``) can still be reopened by name.
    """
    if validate:
        reject_invalid_workflow(workflow)
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
    if ClusterManifest.exists(root):
        raise ClusterError(
            f"{root!r} already holds a cluster; open_cluster() it"
        )
    records = [tuple(record) for record in records]
    graph = compile_workflow(workflow)
    shard_map = build_shard_map(
        graph, records, num_shards, partition_dim=partition_dim
    )
    os.makedirs(root, exist_ok=True)

    # Persist the workflow at the root so worker processes and later
    # sessions can reopen without re-supplying it.
    try:
        blob = pickle.dumps(workflow)
    except Exception:
        blob = None
        if mode == "process":
            raise ClusterError(
                "process mode requires a picklable workflow"
            ) from None
    if blob is not None:
        with open(os.path.join(root, "workflow.pkl"), "wb") as fh:
            fh.write(blob)

    route = partition_value_fn(graph, shard_map)
    readers = shard_map.readers_of_value
    per_shard: list[list[tuple]] = [[] for _ in range(shard_map.num_shards)]
    for record in records:
        for index in readers(route(record)):
            per_shard[index].append(record)

    generations = []
    for index, sub in enumerate(per_shard):
        worker = ShardWorker(
            MeasureStore(shard_dir(root, index)),
            workflow,
            shard_map,
            index,
        )
        generations.append(
            worker.bootstrap(sub, meta={"cluster_epoch": 1})
        )
    manifest = ClusterManifest(
        root, shard_map, epoch=1, generations=generations, meta=meta
    )
    manifest.write()
    logger.info(
        "bootstrapped cluster at %s: %d shards, %d records",
        root, shard_map.num_shards, len(records),
    )
    return MeasureCluster(
        root, manifest, workflow, mode=mode, cache_size=cache_size
    )


def recover_cluster(root: str, workflow=None) -> ClusterManifest:
    """Redo any in-flight cluster ingest; returns the final manifest.

    Idempotent and crash-safe at every step: a shard already at the
    journal's target epoch (stamped inside its prepare commit) is
    skipped, so re-running after a crash mid-recovery never
    double-applies a delta.
    """
    manifest = ClusterManifest.load(root)
    journal = IngestJournal.load(root)
    if journal is None:
        return manifest
    if journal.epoch <= manifest.epoch:
        # Crash landed after the swap but before the journal cleanup.
        journal.clear()
        return manifest

    workflow = _load_root_workflow(root, workflow)
    graph = compile_workflow(workflow)
    with open(journal.facts_path, "rb") as fh:
        records = pickle.load(fh)
    route = partition_value_fn(graph, manifest.shard_map)
    readers = manifest.shard_map.readers_of_value
    per_shard: list[list[tuple]] = [
        [] for _ in range(manifest.num_shards)
    ]
    for record in records:
        for index in readers(route(record)):
            per_shard[index].append(record)

    generations = list(journal.baseline)
    redone = 0
    for index, sub in enumerate(per_shard):
        worker = ShardWorker(
            MeasureStore(shard_dir(root, index)),
            workflow,
            manifest.shard_map,
            index,
        )
        if not sub:
            generations[index] = worker.generation()
            continue
        if worker.cluster_epoch() >= journal.epoch:
            generations[index] = worker.generation()
            continue
        report = worker.ingest(sub, epoch=journal.epoch)
        generations[index] = report["generation"]
        redone += 1
    recovered = ClusterManifest(
        root,
        manifest.shard_map,
        journal.epoch,
        generations,
        meta=manifest.meta,
    )
    recovered.write()
    journal.clear()
    logger.warning(
        "recovered cluster at %s to epoch %d (%d shards redone)",
        root, journal.epoch, redone,
    )
    return recovered


def open_cluster(
    root: str,
    workflow=None,
    mode: str = "local",
    cache_size: int = 256,
) -> MeasureCluster:
    """Open an existing cluster directory, recovering if needed."""
    workflow = _load_root_workflow(root, workflow)
    manifest = recover_cluster(root, workflow)
    return MeasureCluster(
        root, manifest, workflow, mode=mode, cache_size=cache_size
    )
