"""Shard workers: one measure store + ingestor per key range.

A shard worker is a :class:`~repro.service.server.MeasureService` (its
own :class:`MeasureStore`, :class:`Ingestor`, LRU, and freshness
handling) wrapped with the cluster's *owned-range filter*: margin
replication means a shard's store contains regions beyond its owned
range (ingested so sibling windows at the boundary see their
neighbors), and the filter guarantees only owned regions ever leave
the worker — every region has exactly one server.

Two execution substrates expose the same ``call(op, *args)`` surface:

- :class:`LocalShard` runs the worker in-process (tests, single-box
  serving, the crash sweeper's coordinator child);
- :class:`ShardProcess` runs it in a dedicated OS process talking over
  a ``multiprocessing`` pipe — true shared-nothing parallel reads, one
  request in flight per worker, fanned out from router threads.  A
  worker that dies (crash, kill -9) is detected by the broken pipe and
  respawned by the supervisor against the same shard directory; the
  store's recovery protocol (stale-temp removal + orphan GC) runs on
  reopen, and the cluster journal replays anything the dead worker had
  not committed.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time

from repro.errors import ClusterError, ReproError
from repro.aggregates.base import get_aggregate
from repro.cube.granularity import Granularity
from repro.obs import (
    TraceContext,
    current_context,
    get_registry,
    get_tracer,
    reset_registry,
    set_tracing,
    tracing_enabled,
    use_context,
)
from repro.obs.metrics import (
    SHARD_OP_SECONDS,
    SHARD_OPS,
    WORKER_RESPAWNS,
    WORKER_TELEMETRY_DROPPED,
)
from repro.service.cluster.manifest import ClusterManifest, shard_dir
from repro.service.cluster.partitioning import ShardMap, key_lift_fn
from repro.service.ingest import Ingestor, load_workflow
from repro.service.server import MeasureService
from repro.service.store import MeasureStore
from repro.testkit.failpoints import fire, register

logger = logging.getLogger("repro.service.cluster")

FP_WORKER_DEATH = register(
    "cluster.worker-death", "cluster",
    "at the top of a shard worker's request dispatch",
)

#: Aggregates whose rollup partials merge exactly across shards by
#: re-applying the same aggregate over the per-shard rolled values.
MERGEABLE_ROLLUP_AGGS = frozenset({"sum", "min", "max", "count"})

#: Operations that must NOT be replayed against a revived worker.
#: ``ingest`` is replay-safe — the worker skips any cluster epoch its
#: store has already durably committed — and everything else routed
#: through :class:`ShardProcess` is a read; ``bootstrap`` mutates with
#: no such guard, so a death mid-bootstrap surfaces as an error.
REPLAY_UNSAFE_OPS = frozenset({"bootstrap"})


class ShardWorker:
    """The shard-local implementation of every cluster operation."""

    def __init__(
        self,
        store: MeasureStore | str,
        workflow,
        shard_map: ShardMap,
        index: int,
        cache_size: int = 256,
    ) -> None:
        if isinstance(store, str):
            store = MeasureStore(store)
        self.store = store
        self.index = index
        self.shard_map = shard_map
        self.workflow = workflow
        self._service: MeasureService | None = None
        self._ingestor: Ingestor | None = None
        self._cache_size = cache_size
        self._lifts: dict[str, object] = {}

    # The MeasureService requires a non-empty store's workflow at
    # construction; defer it so a worker can be created pre-bootstrap.

    @property
    def service(self) -> MeasureService:
        if self._service is None:
            self._service = MeasureService(
                self.store, self.workflow, cache_size=self._cache_size
            )
        return self._service

    @property
    def ingestor(self) -> Ingestor:
        if self._service is not None:
            return self._service.ingestor
        if self._ingestor is None:
            self._ingestor = Ingestor(self.store, self.workflow)
        return self._ingestor

    # -- owned-range filtering ----------------------------------------

    def _lift(self, measure: str):
        lift = self._lifts.get(measure)
        if lift is None:
            lift = key_lift_fn(
                self.ingestor.graph, self.shard_map, measure
            )
            self._lifts[measure] = lift
        return lift

    def owns_key(self, measure: str, key: tuple) -> bool:
        """True when this shard serves ``key`` of ``measure``."""
        return self.shard_map.owns(
            self.index, self._lift(measure)(tuple(key))
        )

    def _filter_rows(self, measure: str, rows):
        lift = self._lift(measure)
        owns = self.shard_map.owns
        index = self.index
        return [
            (key, value)
            for key, value in rows
            if owns(index, lift(key))
        ]

    # -- operations ----------------------------------------------------

    def bootstrap(self, records, meta: dict | None = None) -> int:
        return self.ingestor.bootstrap(records, meta=meta)

    def ingest(self, records, epoch: int | None = None) -> dict:
        if epoch is not None and self.cluster_epoch() >= epoch:
            # This cluster epoch is already in the store: the worker
            # died after its prepare commit but before replying, and
            # the supervisor is replaying the op against the revived
            # worker.  Folding the sub-delta again would double-count
            # every record, so report the committed state instead.
            return {
                "generation": self.store.generation,
                "records": len(records),
                "updated_measures": [],
                "deferred_measures": self.service.stats()[
                    "dirty_measures"
                ],
            }
        meta = None if epoch is None else {"cluster_epoch": epoch}
        report = self.service.ingest(records, meta=meta)
        return {
            "generation": report.generation,
            "records": report.records,
            "updated_measures": report.updated_measures,
            "deferred_measures": report.deferred_measures,
        }

    def point(self, measure: str, key, default=None):
        key = tuple(key)
        if not self.owns_key(measure, key):
            raise ClusterError(
                f"shard {self.index} does not own key {key} of "
                f"{measure!r} (routing bug)"
            )
        return self.service.point(measure, key, default=default)

    def bulk_point(self, measure: str, keys, default=None) -> list:
        return [
            self.point(measure, key, default=default) for key in keys
        ]

    def scan(self, measure: str, prefix=()) -> list:
        return self._filter_rows(
            measure, self.service.range(measure, prefix)
        )

    def table_rows(self, measure: str) -> dict:
        table = self.service.table(measure)
        return dict(self._filter_rows(measure, table.items()))

    def rollup_rows(
        self, measure: str, target_levels, agg: str = "sum"
    ) -> dict:
        """Shard-local rollup over *owned* rows only.

        The router merges these partials across shards: exactly (by
        re-applying ``agg``) for :data:`MERGEABLE_ROLLUP_AGGS`, or by
        concatenation when the target keeps the partition dimension
        fine enough that partials are disjoint.
        """
        schema = self.workflow.schema
        source = self.service.granularity_of(measure)
        target = Granularity(schema, tuple(target_levels))
        function = get_aggregate(agg)
        grouped: dict = {}
        for key, value in self._filter_rows(
            measure, self.service.table(measure).items()
        ):
            out_key = target.generalize_key(key, source)
            state = grouped.get(out_key)
            if state is None and out_key not in grouped:
                state = function.create()
            grouped[out_key] = function.update(state, value)
        return {
            key: function.finalize(state)
            for key, state in grouped.items()
        }

    def resolve(self) -> bool:
        return self.service.resolve()

    def ping(self) -> str:
        return "pong"

    def generation(self) -> int:
        return self.store.generation

    def cluster_epoch(self) -> int:
        """The last cluster epoch this shard durably committed."""
        return int(self.store.meta().get("cluster_epoch", 0))

    def measures(self) -> list[dict]:
        return self.service.measures()

    def stats(self) -> dict:
        stats = self.service.stats()
        stats["shard"] = self.index
        return stats

    def telemetry(self) -> tuple[list, dict]:
        """Ship this worker's spans and metric samples to the router.

        Both halves DRAIN: events are taken, and the registry is
        swapped for a fresh one, so each pull ships only what
        accumulated since the last.  The router merges counter and
        histogram samples additively — shipping cumulative snapshots
        would double-count them on every scrape (and the front end's
        post-request eager flush pulls after every traced request).
        """
        events = get_tracer().take_events()
        samples = get_registry().to_dict()
        reset_registry()
        return events, samples

    # -- dispatch ------------------------------------------------------

    #: Maintenance operations that should not clutter traces with spans.
    _UNTRACED_OPS = frozenset({"telemetry", "ping"})

    def call(self, op: str, *args):
        """Uniform entry point shared by both execution substrates."""
        fire(FP_WORKER_DEATH)
        handler = getattr(self, op, None)
        if handler is None or op.startswith("_"):
            raise ClusterError(f"unknown shard operation {op!r}")
        if op in self._UNTRACED_OPS:
            return handler(*args)
        # The span carries the request's trace context (propagated
        # in-process or over the worker pipe), so per-shard work shows
        # up as one child of the router's fan-out in the trace tree.
        with get_tracer().span(
            f"shard:{op}", cat="shard", shard=self.index
        ):
            return handler(*args)


class LocalShard:
    """In-process shard handle: a worker plus a per-shard lock.

    The per-shard lock (instead of the single-store service's global
    one) is what lets reads of shard B proceed while shard A folds an
    ingest — the cluster's answer to the lock convoy.
    """

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self.index = worker.index
        self._lock = threading.RLock()

    def call(self, op: str, *args):
        started = time.perf_counter()
        with self._lock:
            try:
                return self.worker.call(op, *args)
            finally:
                _observe_op(
                    self.index, op, time.perf_counter() - started
                )

    def close(self) -> None:
        """Nothing to release in-process."""

    @property
    def alive(self) -> bool:
        return True


def _observe_op(index: int, op: str, seconds: float) -> None:
    """Per-shard-op accounting shared by both substrates.

    Counts the dispatch, feeds the per-(shard, op) latency histogram,
    and bumps the active request's fan-out tally so the access log can
    report how many shard calls one HTTP request cost.
    """
    registry = get_registry()
    registry.counter(
        SHARD_OPS,
        "Shard worker operations dispatched, by shard and operation",
        labelnames=("shard", "op"),
    ).labels(shard=str(index), op=op).inc()
    registry.histogram(
        SHARD_OP_SECONDS,
        "Shard operation latency as seen by the router, by shard "
        "and operation",
        labelnames=("shard", "op"),
    ).labels(shard=str(index), op=op).observe(seconds)
    ctx = current_context()
    if ctx is not None and op != "telemetry":
        ctx.stats.fanout += 1


def worker_main(conn, root: str, index: int) -> None:
    """Entry point of a shard worker process.

    Serves ``(op, meta, *args)`` requests from the pipe until it
    receives ``("shutdown", None)`` or the pipe closes.  ``meta`` is
    either ``None`` or a dict carrying the caller's observability
    state: a ``"tracing"`` flag (the fork inherits whatever the parent
    had at spawn time, so the live setting rides every message) and
    optionally ``"ctx"``, the originating request's trace context —
    activating it before dispatch makes the worker's spans children of
    the router's, so absorbed events reassemble into one tree.

    Replies are ``("ok", result)`` or ``("err", exception)`` — library
    errors are shipped back to the router rather than killing the
    worker.  The shutdown reply carries the worker's final telemetry
    so a graceful stop loses no spans or samples.
    """
    # The fork inherited the parent's telemetry — spans and samples
    # the parent already owns.  Shipping them back on the first pull
    # would duplicate them, so the worker starts from zero.
    get_tracer().reset()
    reset_registry()
    manifest = ClusterManifest.load(root, cleanup=False)
    workflow = load_workflow(_RootPath(root))
    if workflow is None:
        raise ClusterError(f"cluster {root!r} has no saved workflow")
    worker = ShardWorker(
        MeasureStore(shard_dir(root, index)),
        workflow,
        manifest.shard_map,
        index,
    )
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        op, meta, args = request[0], request[1], request[2:]
        # The flag is authoritative: a bare message (meta=None) means
        # the supervisor has tracing off, even if this fork inherited
        # it on or a previous message enabled it.
        set_tracing(bool(meta and meta.get("tracing")))
        if op == "shutdown":
            conn.send(("ok", worker.telemetry()))
            return
        ctx = None
        if meta is not None and meta.get("ctx"):
            ctx = TraceContext.from_dict(meta["ctx"])
        try:
            if ctx is not None:
                with use_context(ctx):
                    result = worker.call(op, *args)
            else:
                result = worker.call(op, *args)
            conn.send(("ok", result))
        except ReproError as exc:
            conn.send(("err", exc))


class _RootPath:
    """Duck-typed store for :func:`load_workflow` at the cluster root."""

    def __init__(self, path: str) -> None:
        self.path = path


class ShardProcess:
    """A shard worker running in its own OS process.

    One request is in flight per worker at a time (the router holds a
    per-shard lock around the send/recv pair); different shards serve
    concurrently from router threads — shared-nothing parallelism for
    reads, and isolation for ingest folds.
    """

    def __init__(self, root: str, index: int, respawn_limit: int = 3):
        self.root = root
        self.index = index
        self.respawn_limit = respawn_limit
        self.respawns = 0
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context("fork")
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe()
        self._conn = parent
        self._proc = self._ctx.Process(
            target=worker_main,
            args=(child, self.root, self.index),
            daemon=True,
            name=f"repro-shard-{self.index:02d}",
        )
        self._proc.start()
        child.close()

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()

    def call(self, op: str, *args):
        started = time.perf_counter()
        meta = self._meta()
        with self._lock:
            try:
                return self._roundtrip(op, meta, args)
            except (BrokenPipeError, EOFError, OSError):
                self._revive()
                if op in REPLAY_UNSAFE_OPS:
                    raise ClusterError(
                        f"shard {self.index} worker died during "
                        f"{op!r}; the operation cannot be safely "
                        "replayed"
                    ) from None
                # One retry against the revived worker: the store's
                # recovery ran on reopen, so a read sees a consistent
                # (pre- or post-commit) generation, and an ingest
                # whose epoch the dead worker already durably
                # committed is skipped rather than double-applied.
                return self._roundtrip(op, meta, args)
            finally:
                _observe_op(
                    self.index, op, time.perf_counter() - started
                )

    def _meta(self) -> dict | None:
        """Observability envelope for one pipe message (or ``None``).

        The worker process was forked once, possibly before tracing was
        toggled, so the live tracing flag rides every message; the
        request's trace context rides along when one is active so the
        worker's spans join the caller's trace.
        """
        ctx = current_context()
        if ctx is None and not tracing_enabled():
            return None
        meta: dict = {"tracing": tracing_enabled()}
        if ctx is not None:
            meta["ctx"] = ctx.to_dict()
        return meta

    def _roundtrip(self, op: str, meta, args):
        self._conn.send((op, meta, *args))
        status, result = self._conn.recv()
        if status == "err":
            raise result
        return result

    def _revive(self) -> None:
        if self.respawns >= self.respawn_limit:
            raise ClusterError(
                f"shard {self.index} worker died {self.respawns + 1} "
                f"times; giving up"
            )
        exitcode = self._proc.exitcode
        self.respawns += 1
        logger.warning(
            "shard %d worker died (exit %s); respawning (%d/%d)",
            self.index, exitcode, self.respawns, self.respawn_limit,
        )
        registry = get_registry()
        registry.counter(
            WORKER_RESPAWNS,
            "Dead shard worker processes respawned by the supervisor",
            labelnames=("shard",),
        ).labels(shard=str(self.index)).inc()
        # A crashed worker takes its unpulled spans and samples with
        # it; count the loss so dashboards can explain telemetry gaps.
        registry.counter(
            WORKER_TELEMETRY_DROPPED,
            "Worker telemetry batches lost to crashes (graceful stops "
            "flush through the shutdown reply instead)",
            labelnames=("shard",),
        ).labels(shard=str(self.index)).inc()
        self._proc.join(timeout=5)
        self._spawn()

    def kill(self) -> None:
        """Hard-kill the worker process (tests, chaos drills)."""
        self._proc.kill()
        self._proc.join(timeout=10)

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.send(("shutdown", None))
                status, telemetry = self._conn.recv()
                if status == "ok" and telemetry is not None:
                    # The shutdown reply is the worker's final
                    # telemetry flush — absorb it so a graceful stop
                    # between pulls loses nothing.
                    events, samples = telemetry
                    get_tracer().absorb(events)
                    get_registry().merge_dict(samples)
            except (BrokenPipeError, EOFError, OSError):
                pass
            self._conn.close()
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.kill()
            self._proc.join(timeout=5)
