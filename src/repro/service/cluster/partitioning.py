"""Shard-map construction: range partitioning for the cluster.

The cluster reuses the partitioned engine's two load-bearing ideas
(:mod:`repro.engine.partitioned`):

- the partition dimension is split at the *coarsest* non-ALL level any
  measure uses for it (:func:`~repro.engine.partitioned.partition_level`),
  so every region of every measure falls entirely inside one shard and
  fan-out reads merge by plain concatenation of disjoint tables;
- each shard's *read* range extends beyond its *owned* range by the
  workflow's accumulated window reach
  (:func:`~repro.engine.partitioned.window_reach`), so sibling windows
  and lag sets that cross a shard boundary see their neighbors — margin
  records are ingested by several shards, but each region is only ever
  *served* by its owner.

Unlike the engine's one-shot partitioning, a shard map must route
records it has never seen: a continuous ingest feed keeps producing
partition values past the bootstrap maximum (new hours of a network
log).  Ownership is therefore expressed as ``n - 1`` interior *cut
points* with open outer edges — shard 0 owns everything below the
first cut, the last shard everything at or above the last cut — so no
record and no region key is ever unroutable.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.engine.compile import CompiledGraph
from repro.engine.partitioned import partition_level, window_reach
from repro.engine.sort_scan import default_sort_key


@dataclass(frozen=True)
class ShardMap:
    """Routing state shared by the router, the workers, and the manifest.

    Attributes:
        dim: Partition dimension index.
        level: Hierarchy level the cuts live at (the coarsest non-ALL
            level any measure holds ``dim`` at).
        cuts: ``num_shards - 1`` ascending interior cut points; shard
            ``i`` owns the half-open value range ``[cuts[i-1],
            cuts[i])`` with open outer edges.
        margin: ``(before, after)`` window reach in ``level`` units;
            each shard reads (ingests) this much beyond its owned
            range.
    """

    dim: int
    level: int
    cuts: tuple[int, ...]
    margin: tuple[int, int]

    @property
    def num_shards(self) -> int:
        return len(self.cuts) + 1

    # -- routing -------------------------------------------------------

    def owner_of_value(self, value: int) -> int:
        """The shard that owns (serves) partition-level ``value``."""
        return bisect_right(self.cuts, value)

    def readers_of_value(self, value: int) -> list[int]:
        """Every shard whose margin-extended read range covers ``value``.

        The owner is always included; neighbors are included when
        ``value`` falls within their window reach past a cut.
        """
        before, after = self.margin
        shards = []
        for index in range(self.num_shards):
            lo = None if index == 0 else self.cuts[index - 1] - before
            hi = (
                None
                if index == self.num_shards - 1
                else self.cuts[index] + after
            )
            if (lo is None or value >= lo) and (hi is None or value < hi):
                shards.append(index)
        return shards

    def owned_range(self, index: int) -> tuple[int | None, int | None]:
        """Shard ``index``'s owned ``[lo, hi)`` (None = open edge)."""
        lo = None if index == 0 else self.cuts[index - 1]
        hi = None if index == self.num_shards - 1 else self.cuts[index]
        return lo, hi

    def owns(self, index: int, value: int) -> bool:
        """True when shard ``index`` owns partition-level ``value``."""
        lo, hi = self.owned_range(index)
        return (lo is None or value >= lo) and (hi is None or value < hi)

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> dict:
        return {
            "dim": self.dim,
            "level": self.level,
            "cuts": list(self.cuts),
            "margin": list(self.margin),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardMap":
        return cls(
            dim=data["dim"],
            level=data["level"],
            cuts=tuple(data["cuts"]),
            margin=(data["margin"][0], data["margin"][1]),
        )


def partition_value_fn(graph: CompiledGraph, shard_map: ShardMap):
    """``record -> partition-level value`` for routing raw records."""
    mapper = graph.schema.dimensions[shard_map.dim].hierarchy.mapper(
        0, shard_map.level
    )
    dim = shard_map.dim
    if mapper is None:
        return lambda record: record[dim]
    return lambda record: mapper(record[dim])


def key_lift_fn(graph: CompiledGraph, shard_map: ShardMap, measure: str):
    """``region key -> partition-level value`` for routing reads.

    Each measure stores keys at its own granularity; the partition
    level is the coarsest any measure uses, so the lift always exists.
    """
    node = graph.outputs[measure][0]
    node_level = node.granularity.levels[shard_map.dim]
    mapper = graph.schema.dimensions[shard_map.dim].hierarchy.mapper(
        node_level, shard_map.level
    )
    dim = shard_map.dim
    if mapper is None:
        return lambda key: key[dim]
    return lambda key: mapper(key[dim])


def build_shard_map(
    graph: CompiledGraph,
    records,
    num_shards: int,
    partition_dim: int | str | None = None,
) -> ShardMap:
    """Choose cut points from the bootstrap batch's value distribution.

    The observed distinct partition-level values are split into
    ``num_shards`` contiguous chunks of near-equal distinct-value
    count (the partitioned engine's boundary heuristic); fewer distinct
    values than shards collapses to one shard per value.

    Raises:
        PlanError: when some measure aggregates the partition dimension
            to ALL (its regions would span shards) — propagated from
            :func:`~repro.engine.partitioned.partition_level`.
    """
    if partition_dim is None:
        dim = default_sort_key(graph).parts[0][0]
    elif isinstance(partition_dim, int):
        dim = partition_dim
    else:
        dim = graph.schema.dim_index(partition_dim)
    level = partition_level(graph, dim)
    margin = window_reach(graph, dim, level)

    mapper = graph.schema.dimensions[dim].hierarchy.mapper(0, level)
    values = {
        record[dim] if mapper is None else mapper(record[dim])
        for record in records
    }
    distinct = sorted(values)
    count = max(1, min(num_shards, len(distinct)))
    cuts = tuple(
        distinct[(len(distinct) * i) // count] for i in range(1, count)
    )
    return ShardMap(dim=dim, level=level, cuts=cuts, margin=margin)
