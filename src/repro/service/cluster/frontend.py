"""Asyncio HTTP front end for the sharded, multi-tenant service.

The legacy front end (:mod:`repro.service.server`) spends one OS
thread per connection; this one holds thousands of concurrent
keep-alive connections on a single event loop and runs the actual
measure work on a small, bounded executor pool — connection count and
worker parallelism are decoupled.

Routes mirror the legacy server byte-for-byte where they overlap
(``/metrics``, ``/measures``, ``/stats``, ``/point``, ``/range``,
``/table``, ``/ingest``, ``/workflow``) and add ``/rollup``,
``/healthz``, and ``/tenants``.  In tenant mode every data route takes
a ``tenant`` query parameter (default ``"default"``); admission
rejections surface as HTTP 429 with the structured
:class:`~repro.errors.AdmissionError` payload, the admission-control
mirror of the 422 lint-rejection body.

``POST /workflow`` takes the workflow as a *named query family*
(``{"query": "escalation"}``, resolved through
:mod:`repro.queries.registry` by trusted server-side builders) or as a
base64 pickle blob.  Unpickling client bytes executes arbitrary code,
so pickle bodies are accepted only from trusted operators: by default
on loopback binds, elsewhere only when the server was started with
``allow_pickle_workflows=True`` (``repro serve
--allow-pickle-workflows``); otherwise they are refused with 403.

Shutdown is graceful: stop accepting, cancel idle keep-alive waits,
drain requests already executing, then resolve deferred work so every
store MANIFEST on disk is final before the process exits.
"""

from __future__ import annotations

import asyncio
import base64
import json
import logging
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

from repro.errors import AdmissionError, ServiceError
from repro.obs import (
    get_registry,
    get_tracer,
    new_context,
    render_span_tree,
    tracing_enabled,
    use_context,
)
from repro.obs.metrics import HTTP_REQUESTS
from repro.obs.reqlog import (
    DEFAULT_SLOW_QUERY_SECONDS,
    RequestLog,
    RequestObserver,
    SlowQueryLog,
)
from repro.obs.slo import DEFAULT_OBJECTIVES, SLOTracker, parse_objectives
from repro.obs.trace import events_for_trace
from repro.queries.registry import QUERY_FAMILIES, build_query_workflow
from repro.service.cluster.router import MeasureCluster
from repro.service.cluster.tenancy import TenantManager
from repro.service.server import LOOPBACK_HOSTS, _parse_key

logger = logging.getLogger("repro.service.cluster")

#: Seconds an idle keep-alive connection may sit between requests.
IDLE_TIMEOUT = 30.0

#: Seconds one request may spend executing before the front end gives
#: up on it (the executor task keeps running; the client gets a 503).
REQUEST_TIMEOUT = 120.0

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HTTPError(Exception):
    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


def _slow_query_threshold(value: float | None) -> float:
    if value is not None:
        return float(value)
    env = os.environ.get("REPRO_SLOW_QUERY_SECONDS", "")
    return float(env) if env else DEFAULT_SLOW_QUERY_SECONDS


def _slo_objectives(objectives):
    if objectives is not None:
        return tuple(objectives)
    spec = os.environ.get("REPRO_SLO", "")
    return parse_objectives(spec) if spec else DEFAULT_OBJECTIVES


def cluster_health(cluster: MeasureCluster) -> dict:
    """Structured liveness snapshot of one cluster (``/healthz``).

    ``status`` is ``"ok"`` (serving, all workers alive), ``"degraded"``
    (serving, but a worker is dead pending respawn-on-next-call), or
    ``"fenced"`` (an aborted ingest left the journal pending; reads and
    writes refuse until recovery).
    """
    from repro.service.cluster.manifest import IngestJournal

    shards = [
        {
            "shard": shard.index,
            "alive": bool(shard.alive),
            "respawns": getattr(shard, "respawns", 0),
        }
        for shard in cluster.shards
    ]
    if cluster.failed:
        status = "fenced"
    elif all(entry["alive"] for entry in shards):
        status = "ok"
    else:
        status = "degraded"
    return {
        "status": status,
        "mode": cluster.mode,
        "epoch": cluster.epoch,
        "fenced": cluster.failed,
        "journal_pending": IngestJournal.load(cluster.root) is not None,
        "shards": shards,
    }


class ClusterFrontend:
    """Serve a :class:`MeasureCluster` or :class:`TenantManager`."""

    def __init__(
        self,
        backend: MeasureCluster | TenantManager,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_threads: int = 8,
        allow_pickle_workflows: bool | None = None,
        access_log_path: str | None = None,
        slow_query_path: str | None = None,
        slow_query_seconds: float | None = None,
        slo_objectives=None,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self._tenants = isinstance(backend, TenantManager)
        # None = decide from the bind: unpickling a request body runs
        # arbitrary client code, so outside loopback it takes the
        # operator's explicit opt-in.
        if allow_pickle_workflows is None:
            allow_pickle_workflows = host in LOOPBACK_HOSTS
        self._allow_pickle = allow_pickle_workflows
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="repro-frontend",
        )
        self._server: asyncio.AbstractServer | None = None
        self._active = 0
        self._drained = asyncio.Event()
        self._stopping = False
        self._requests = get_registry().counter(
            HTTP_REQUESTS,
            "HTTP requests served, by route",
            labelnames=("route",),
        )
        self._started_wall = time.time()
        self._started_mono = time.monotonic()
        self.slo = SLOTracker(objectives=_slo_objectives(slo_objectives))
        self.slow_log = SlowQueryLog(
            threshold_seconds=_slow_query_threshold(slow_query_seconds),
            path=slow_query_path,
        )
        self.observer = RequestObserver(
            access_log=RequestLog(access_log_path),
            slow_log=self.slow_log,
            slo=self.slo,
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        logger.info(
            "async frontend listening on %s:%d", self.host, self.port
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, final flush."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active:
            await self._drained.wait()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._final_flush)
        self._executor.shutdown(wait=True)
        self.observer.close()
        logger.info("async frontend drained and stopped")

    def _final_flush(self) -> None:
        """Resolve deferred work so on-disk MANIFESTs are final."""
        if self._tenants:
            for name in self.backend.tenants():
                self.backend.cluster(name).resolve()
            self.backend.close()
        else:
            self.backend.resolve()
            self.backend.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while not self._stopping:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        timeout=IDLE_TIMEOUT,
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionResetError,
                ):
                    return
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 431,
                        {"error": "request headers too large"},
                        close=True,
                    )
                    return
                if len(head) > _MAX_HEADER_BYTES:
                    await self._respond(
                        writer, 431,
                        {"error": "request headers too large"},
                        close=True,
                    )
                    return
                keep_alive = await self._serve_request(
                    reader, writer, head
                )
                if not keep_alive:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(self, reader, writer, head: bytes) -> bool:
        self._active += 1
        self._drained.clear()
        try:
            try:
                method, target, headers = self._parse_head(head)
            except ValueError:
                await self._respond(
                    writer, 400, {"error": "malformed request"},
                    close=True,
                )
                return False
            length = int(headers.get("content-length", 0) or 0)
            if length > _MAX_BODY_BYTES:
                await self._respond(
                    writer, 413, {"error": "request body too large"},
                    close=True,
                )
                return False
            body = (
                await reader.readexactly(length) if length else b""
            )
            close = (
                headers.get("connection", "").lower() == "close"
                or self._stopping
            )
            # Join the caller's distributed trace (or start a fresh
            # one) and honor a supplied correlation id; the response
            # always carries both so clients can stitch logs together.
            ctx = new_context(
                headers.get("traceparent"),
                request_id=headers.get("x-request-id", ""),
            )
            status, payload, text = await self._dispatch(
                method, target, body, ctx
            )
            await self._respond(
                writer, status, payload, text=text, close=close,
                extra_headers={
                    "X-Request-Id": ctx.request_id,
                    "traceparent": ctx.traceparent(),
                },
            )
            return not close
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            return False
        finally:
            self._active -= 1
            if self._active == 0:
                self._drained.set()

    @staticmethod
    def _parse_head(head: bytes):
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _respond(
        self,
        writer,
        status: int,
        payload: dict | None,
        text: str | None = None,
        close: bool = False,
        extra_headers: dict | None = None,
    ) -> None:
        if text is not None:
            body = text.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            ctype = "application/json"
        reason = {
            200: "OK",
            400: "Bad Request",
            403: "Forbidden",
            404: "Not Found",
            405: "Method Not Allowed",
            413: "Payload Too Large",
            422: "Unprocessable Entity",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Status")
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extras}"
                f"Connection: {'close' if close else 'keep-alive'}\r\n"
                "\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    # -- dispatch ------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes, ctx):
        split = urlsplit(target)
        route = split.path.rstrip("/") or "/"
        params = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        self._requests.labels(route=route).inc()
        started = time.perf_counter()
        status, payload, text = await self._execute(
            method, route, params, body, ctx
        )
        self._observe_request(
            method, route, params, status, payload,
            time.perf_counter() - started, ctx,
        )
        return status, payload, text

    async def _execute(self, method, route, params, body, ctx):
        loop = asyncio.get_running_loop()
        try:
            work = self._work_for(method, route, params, body)
            traced = self._traced(work, method, route, params, ctx)
            result = await asyncio.wait_for(
                loop.run_in_executor(self._executor, traced),
                timeout=REQUEST_TIMEOUT,
            )
            if route == "/metrics":
                return 200, None, result
            return 200, result, None
        except _HTTPError as exc:
            return exc.status, exc.payload, None
        except asyncio.TimeoutError:
            return 503, {"error": "request timed out"}, None
        except AdmissionError as exc:
            return 429, exc.payload, None
        except ServiceError as exc:
            payload: dict = {"error": str(exc)}
            status = 404 if method == "GET" else 400
            if exc.diagnostics:
                payload["diagnostics"] = [
                    d.to_dict() for d in exc.diagnostics
                ]
                status = 422
            return status, payload, None
        except (KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"bad request: {exc}"}, None
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error on %s", route)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None

    def _traced(self, work, method, route, params, ctx):
        """Wrap one request thunk with the observability envelope.

        Context variables do not follow ``run_in_executor``, so the
        request context is entered *inside* the executor thread; the
        ``http:`` span then parents everything downstream.  The gap
        between submission here and the thunk actually starting is the
        executor queue wait — the saturation signal the access log
        reports per request.
        """
        submitted = time.perf_counter()

        def run():
            ctx.stats.queue_wait_seconds += (
                time.perf_counter() - submitted
            )
            with use_context(ctx):
                try:
                    with get_tracer().span(
                        f"http:{route}", cat="http", method=method
                    ):
                        return work()
                finally:
                    self._eager_flush(params, ctx)

        return run

    def _eager_flush(self, params: dict, ctx) -> None:
        """Absorb worker-process spans right after a traced request.

        Without this, a request's worker-side spans would sit in the
        shard processes until the next ``/metrics`` scrape — too late
        for the slow-query log's stage timings and for
        ``/debug/trace/<id>`` immediately after the fact.
        """
        if not tracing_enabled() or ctx.stats.fanout == 0:
            return
        try:
            cluster = self._cluster_for(params)
            cluster.pull_telemetry()
        except Exception:  # pragma: no cover - defensive
            logger.debug("post-request telemetry pull failed", exc_info=True)

    def _observe_request(
        self, method, route, params, status, payload, seconds, ctx
    ) -> None:
        error = None
        if status >= 400 and isinstance(payload, dict):
            error = payload.get("error")
        self.observer.observe(
            route=route,
            method=method,
            status=status,
            seconds=seconds,
            ctx=ctx,
            tenant=params.get(
                "tenant", "default" if self._tenants else "-"
            ),
            error=error,
        )

    def _cluster_for(self, params: dict):
        if not self._tenants:
            return self.backend
        return self.backend.cluster(params.get("tenant", "default"))

    def _work_for(self, method: str, route: str, params: dict, body: bytes):
        """Build the blocking thunk for one request (raises for 404s)."""
        if method == "GET":
            return self._get_work(route, params)
        if method == "POST":
            return self._post_work(route, params, body)
        raise _HTTPError(
            405, {"error": f"method {method} not allowed"}
        )

    def _pull_all_telemetry(self) -> None:
        """Absorb worker-process spans and metric samples into this
        process — per tenant cluster in tenant mode, so process-mode
        tenants' shard telemetry reaches the exported registry too."""
        if self._tenants:
            for name in self.backend.tenants():
                self.backend.cluster(name).pull_telemetry()
        else:
            self.backend.pull_telemetry()

    def _health(self) -> dict:
        if not self._tenants:
            return cluster_health(self.backend)
        tenants = {
            name: cluster_health(self.backend.cluster(name))
            for name in self.backend.tenants()
        }
        status = "ok"
        for health in tenants.values():
            if health["status"] == "fenced":
                status = "fenced"
                break
            if health["status"] != "ok":
                status = "degraded"
        return {"status": status, "tenants": tenants}

    def _health_work(self) -> dict:
        health = self._health()
        if health["status"] == "fenced":
            # A fenced cluster refuses reads and writes; tell the load
            # balancer the truth instead of a hollow 200.
            raise _HTTPError(503, health)
        return health

    def _statusz(self) -> dict:
        status = {
            "service": "repro-cluster-frontend",
            "time": round(time.time(), 3),
            "started": round(self._started_wall, 3),
            "uptime_seconds": round(
                time.monotonic() - self._started_mono, 3
            ),
            "host": self.host,
            "port": self.port,
            "tracing": tracing_enabled(),
            "health": self._health(),
            "slow_query_threshold_seconds": (
                self.slow_log.threshold_seconds
            ),
            "slow_queries": self.slow_log.recent(),
            "slo": self.slo.status(),
        }
        if self._tenants:
            status["tenants"] = self.backend.stats()
            # Cross-tenant sharing findings (CSM4xx): redundant tenant
            # dashboards show up here with estimated savings attached.
            status["workload"] = self.backend.workload_sharing_stats()
        return status

    def _debug_trace(self, trace_id: str) -> dict:
        self._pull_all_telemetry()
        events = events_for_trace(get_tracer().events, trace_id)
        if not events:
            raise _HTTPError(
                404, {"error": f"no recorded events for trace "
                      f"{trace_id!r} (is tracing enabled?)"}
            )
        return {
            "trace_id": trace_id,
            "events": events,
            "tree": render_span_tree(events),
        }

    def _get_work(self, route: str, params: dict):
        if route == "/healthz":
            return self._health_work
        if route == "/statusz":
            return self._statusz
        if route.startswith("/debug/trace/"):
            trace_id = route.rsplit("/", 1)[-1]
            return lambda: self._debug_trace(trace_id)
        if route == "/metrics":
            def metrics():
                self._pull_all_telemetry()
                self.slo.export(get_registry())
                return get_registry().render_prometheus()
            return metrics
        if route == "/tenants":
            if not self._tenants:
                raise _HTTPError(
                    404, {"error": "not running in tenant mode"}
                )
            return lambda: {"tenants": self.backend.tenants()}
        if route == "/stats":
            if self._tenants and "tenant" not in params:
                return self.backend.stats
            cluster = self._cluster_for(params)
            return cluster.stats
        if route == "/measures":
            cluster = self._cluster_for(params)
            return lambda: {"measures": cluster.measures()}
        if route == "/point":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            key = _parse_key(params["key"])
            return lambda: {
                "measure": measure,
                "key": list(key),
                "value": cluster.point(measure, key),
            }
        if route == "/range":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            prefix = _parse_key(params.get("prefix", ""))
            return lambda: {
                "measure": measure,
                "prefix": list(prefix),
                "rows": [
                    [list(key), value]
                    for key, value in cluster.range(measure, prefix)
                ],
            }
        if route == "/table":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            def table():
                result = cluster.table(measure)
                return {
                    "measure": measure,
                    "levels": list(result.granularity.levels),
                    "rows": [
                        [list(key), value]
                        for key, value in result.items()
                    ],
                }
            return table
        if route == "/rollup":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            spec = json.loads(params.get("spec", "{}"))
            agg = params.get("agg", "sum")
            def rollup():
                result = cluster.rollup(measure, spec, agg=agg)
                return {
                    "measure": measure,
                    "agg": agg,
                    "levels": list(result.granularity.levels),
                    "rows": [
                        [list(key), value]
                        for key, value in result.items()
                    ],
                }
            return rollup
        raise _HTTPError(404, {"error": f"unknown route {route!r}"})

    def _post_work(self, route: str, params: dict, body: bytes):
        if route == "/ingest":
            data = json.loads(body or b"{}")
            records = [tuple(record) for record in data["records"]]
            if self._tenants:
                tenant = params.get(
                    "tenant", data.get("tenant", "default")
                )
                return lambda: self.backend.ingest(tenant, records)
            return lambda: self.backend.ingest(records)
        if route == "/workflow":
            data = json.loads(body or b"{}")
            return lambda: self._post_workflow(params, data)
        raise _HTTPError(404, {"error": f"unknown route {route!r}"})

    def _decode_workflow(self, data: dict):
        """Resolve the submitted workflow: named family, or gated pickle."""
        query = data.get("query")
        if query is not None:
            return build_query_workflow(query)
        blob = data.get("workflow")
        if blob is None:
            raise _HTTPError(
                400,
                {
                    "error": "workflow body needs 'query' (a named "
                    "query family) or 'workflow' (base64 pickle)",
                    "queries": sorted(QUERY_FAMILIES),
                },
            )
        if not self._allow_pickle:
            raise _HTTPError(
                403,
                {
                    "error": "pickled workflow submissions are "
                    "disabled on this frontend (non-loopback bind); "
                    "POST {'query': <name>} instead, or restart with "
                    "--allow-pickle-workflows (trusted operators "
                    "only: unpickling executes arbitrary code)",
                    "queries": sorted(QUERY_FAMILIES),
                },
            )
        return pickle.loads(base64.b64decode(blob))

    def _post_workflow(self, params: dict, data: dict) -> dict:
        """Validate a workflow; in tenant mode, optionally register it.

        Mirrors the legacy 422 contract for lint rejections and adds
        the 429 admission contract: analysis first, then the footprint
        gate, then (when ``records`` are supplied) tenant bootstrap.
        """
        from repro.analysis import analyze

        workflow = self._decode_workflow(data)
        report = analyze(workflow)
        payload = report.to_dict()
        if not report.ok:
            payload["error"] = (
                f"workflow {workflow.name!r} rejected by static "
                f"analysis ({len(report.errors)} error(s))"
            )
            raise _HTTPError(422, payload)
        if not self._tenants:
            return payload
        tenant = params.get("tenant", data.get("tenant"))
        if tenant is None:
            return payload
        records = [tuple(r) for r in data.get("records", [])]
        dataset_size = data.get("dataset_size", len(records) or None)
        payload["estimate"] = self.backend.admit_workflow(
            tenant, workflow, dataset_size=dataset_size
        )
        if records:
            state = self.backend.register(tenant, workflow, records)
            payload["tenant"] = tenant
            payload["epoch"] = state.cluster.epoch
        return payload
