"""Asyncio HTTP front end for the sharded, multi-tenant service.

The legacy front end (:mod:`repro.service.server`) spends one OS
thread per connection; this one holds thousands of concurrent
keep-alive connections on a single event loop and runs the actual
measure work on a small, bounded executor pool — connection count and
worker parallelism are decoupled.

Routes mirror the legacy server byte-for-byte where they overlap
(``/metrics``, ``/measures``, ``/stats``, ``/point``, ``/range``,
``/table``, ``/ingest``, ``/workflow``) and add ``/rollup``,
``/healthz``, and ``/tenants``.  In tenant mode every data route takes
a ``tenant`` query parameter (default ``"default"``); admission
rejections surface as HTTP 429 with the structured
:class:`~repro.errors.AdmissionError` payload, the admission-control
mirror of the 422 lint-rejection body.

``POST /workflow`` takes the workflow as a *named query family*
(``{"query": "escalation"}``, resolved through
:mod:`repro.queries.registry` by trusted server-side builders) or as a
base64 pickle blob.  Unpickling client bytes executes arbitrary code,
so pickle bodies are accepted only from trusted operators: by default
on loopback binds, elsewhere only when the server was started with
``allow_pickle_workflows=True`` (``repro serve
--allow-pickle-workflows``); otherwise they are refused with 403.

Shutdown is graceful: stop accepting, cancel idle keep-alive waits,
drain requests already executing, then resolve deferred work so every
store MANIFEST on disk is final before the process exits.
"""

from __future__ import annotations

import asyncio
import base64
import json
import logging
import pickle
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

from repro.errors import AdmissionError, ServiceError
from repro.obs import get_registry
from repro.obs.metrics import HTTP_REQUESTS
from repro.queries.registry import QUERY_FAMILIES, build_query_workflow
from repro.service.cluster.router import MeasureCluster
from repro.service.cluster.tenancy import TenantManager
from repro.service.server import LOOPBACK_HOSTS, _parse_key

logger = logging.getLogger("repro.service.cluster")

#: Seconds an idle keep-alive connection may sit between requests.
IDLE_TIMEOUT = 30.0

#: Seconds one request may spend executing before the front end gives
#: up on it (the executor task keeps running; the client gets a 503).
REQUEST_TIMEOUT = 120.0

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HTTPError(Exception):
    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


class ClusterFrontend:
    """Serve a :class:`MeasureCluster` or :class:`TenantManager`."""

    def __init__(
        self,
        backend: MeasureCluster | TenantManager,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_threads: int = 8,
        allow_pickle_workflows: bool | None = None,
    ) -> None:
        self.backend = backend
        self.host = host
        self.port = port
        self._tenants = isinstance(backend, TenantManager)
        # None = decide from the bind: unpickling a request body runs
        # arbitrary client code, so outside loopback it takes the
        # operator's explicit opt-in.
        if allow_pickle_workflows is None:
            allow_pickle_workflows = host in LOOPBACK_HOSTS
        self._allow_pickle = allow_pickle_workflows
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads,
            thread_name_prefix="repro-frontend",
        )
        self._server: asyncio.AbstractServer | None = None
        self._active = 0
        self._drained = asyncio.Event()
        self._stopping = False
        self._requests = get_registry().counter(
            HTTP_REQUESTS,
            "HTTP requests served, by route",
            labelnames=("route",),
        )

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        logger.info(
            "async frontend listening on %s:%d", self.host, self.port
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, final flush."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active:
            await self._drained.wait()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._final_flush)
        self._executor.shutdown(wait=True)
        logger.info("async frontend drained and stopped")

    def _final_flush(self) -> None:
        """Resolve deferred work so on-disk MANIFESTs are final."""
        if self._tenants:
            for name in self.backend.tenants():
                self.backend.cluster(name).resolve()
            self.backend.close()
        else:
            self.backend.resolve()
            self.backend.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while not self._stopping:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        timeout=IDLE_TIMEOUT,
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionResetError,
                ):
                    return
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 431,
                        {"error": "request headers too large"},
                        close=True,
                    )
                    return
                if len(head) > _MAX_HEADER_BYTES:
                    await self._respond(
                        writer, 431,
                        {"error": "request headers too large"},
                        close=True,
                    )
                    return
                keep_alive = await self._serve_request(
                    reader, writer, head
                )
                if not keep_alive:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(self, reader, writer, head: bytes) -> bool:
        self._active += 1
        self._drained.clear()
        try:
            try:
                method, target, headers = self._parse_head(head)
            except ValueError:
                await self._respond(
                    writer, 400, {"error": "malformed request"},
                    close=True,
                )
                return False
            length = int(headers.get("content-length", 0) or 0)
            if length > _MAX_BODY_BYTES:
                await self._respond(
                    writer, 413, {"error": "request body too large"},
                    close=True,
                )
                return False
            body = (
                await reader.readexactly(length) if length else b""
            )
            close = (
                headers.get("connection", "").lower() == "close"
                or self._stopping
            )
            status, payload, text = await self._dispatch(
                method, target, body
            )
            await self._respond(
                writer, status, payload, text=text, close=close
            )
            return not close
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            return False
        finally:
            self._active -= 1
            if self._active == 0:
                self._drained.set()

    @staticmethod
    def _parse_head(head: bytes):
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _respond(
        self,
        writer,
        status: int,
        payload: dict | None,
        text: str | None = None,
        close: bool = False,
    ) -> None:
        if text is not None:
            body = text.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            ctype = "application/json"
        reason = {
            200: "OK",
            400: "Bad Request",
            403: "Forbidden",
            404: "Not Found",
        }.get(status, "Status")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'close' if close else 'keep-alive'}\r\n"
                "\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    # -- dispatch ------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes):
        split = urlsplit(target)
        route = split.path.rstrip("/") or "/"
        params = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        self._requests.labels(route=route).inc()
        loop = asyncio.get_running_loop()
        try:
            work = self._work_for(method, route, params, body)
            result = await asyncio.wait_for(
                loop.run_in_executor(self._executor, work),
                timeout=REQUEST_TIMEOUT,
            )
            if route == "/metrics":
                return 200, None, result
            return 200, result, None
        except _HTTPError as exc:
            return exc.status, exc.payload, None
        except asyncio.TimeoutError:
            return 503, {"error": "request timed out"}, None
        except AdmissionError as exc:
            return 429, exc.payload, None
        except ServiceError as exc:
            payload: dict = {"error": str(exc)}
            status = 404 if method == "GET" else 400
            if exc.diagnostics:
                payload["diagnostics"] = [
                    d.to_dict() for d in exc.diagnostics
                ]
                status = 422
            return status, payload, None
        except (KeyError, ValueError, TypeError) as exc:
            return 400, {"error": f"bad request: {exc}"}, None
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error on %s", route)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None

    def _cluster_for(self, params: dict):
        if not self._tenants:
            return self.backend
        return self.backend.cluster(params.get("tenant", "default"))

    def _work_for(self, method: str, route: str, params: dict, body: bytes):
        """Build the blocking thunk for one request (raises for 404s)."""
        if method == "GET":
            return self._get_work(route, params)
        if method == "POST":
            return self._post_work(route, params, body)
        raise _HTTPError(
            405, {"error": f"method {method} not allowed"}
        )

    def _get_work(self, route: str, params: dict):
        if route == "/healthz":
            return lambda: {"status": "ok"}
        if route == "/metrics":
            def metrics():
                # Absorb worker-process spans and metric samples into
                # this process before rendering — per tenant cluster
                # in tenant mode, so process-mode tenants' shard
                # telemetry reaches the exported registry too.
                if self._tenants:
                    for name in self.backend.tenants():
                        self.backend.cluster(name).pull_telemetry()
                else:
                    self.backend.pull_telemetry()
                return get_registry().render_prometheus()
            return metrics
        if route == "/tenants":
            if not self._tenants:
                raise _HTTPError(
                    404, {"error": "not running in tenant mode"}
                )
            return lambda: {"tenants": self.backend.tenants()}
        if route == "/stats":
            if self._tenants and "tenant" not in params:
                return self.backend.stats
            cluster = self._cluster_for(params)
            return cluster.stats
        if route == "/measures":
            cluster = self._cluster_for(params)
            return lambda: {"measures": cluster.measures()}
        if route == "/point":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            key = _parse_key(params["key"])
            return lambda: {
                "measure": measure,
                "key": list(key),
                "value": cluster.point(measure, key),
            }
        if route == "/range":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            prefix = _parse_key(params.get("prefix", ""))
            return lambda: {
                "measure": measure,
                "prefix": list(prefix),
                "rows": [
                    [list(key), value]
                    for key, value in cluster.range(measure, prefix)
                ],
            }
        if route == "/table":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            def table():
                result = cluster.table(measure)
                return {
                    "measure": measure,
                    "levels": list(result.granularity.levels),
                    "rows": [
                        [list(key), value]
                        for key, value in result.items()
                    ],
                }
            return table
        if route == "/rollup":
            cluster = self._cluster_for(params)
            measure = params["measure"]
            spec = json.loads(params.get("spec", "{}"))
            agg = params.get("agg", "sum")
            def rollup():
                result = cluster.rollup(measure, spec, agg=agg)
                return {
                    "measure": measure,
                    "agg": agg,
                    "levels": list(result.granularity.levels),
                    "rows": [
                        [list(key), value]
                        for key, value in result.items()
                    ],
                }
            return rollup
        raise _HTTPError(404, {"error": f"unknown route {route!r}"})

    def _post_work(self, route: str, params: dict, body: bytes):
        if route == "/ingest":
            data = json.loads(body or b"{}")
            records = [tuple(record) for record in data["records"]]
            if self._tenants:
                tenant = params.get(
                    "tenant", data.get("tenant", "default")
                )
                return lambda: self.backend.ingest(tenant, records)
            return lambda: self.backend.ingest(records)
        if route == "/workflow":
            data = json.loads(body or b"{}")
            return lambda: self._post_workflow(params, data)
        raise _HTTPError(404, {"error": f"unknown route {route!r}"})

    def _decode_workflow(self, data: dict):
        """Resolve the submitted workflow: named family, or gated pickle."""
        query = data.get("query")
        if query is not None:
            return build_query_workflow(query)
        blob = data.get("workflow")
        if blob is None:
            raise _HTTPError(
                400,
                {
                    "error": "workflow body needs 'query' (a named "
                    "query family) or 'workflow' (base64 pickle)",
                    "queries": sorted(QUERY_FAMILIES),
                },
            )
        if not self._allow_pickle:
            raise _HTTPError(
                403,
                {
                    "error": "pickled workflow submissions are "
                    "disabled on this frontend (non-loopback bind); "
                    "POST {'query': <name>} instead, or restart with "
                    "--allow-pickle-workflows (trusted operators "
                    "only: unpickling executes arbitrary code)",
                    "queries": sorted(QUERY_FAMILIES),
                },
            )
        return pickle.loads(base64.b64decode(blob))

    def _post_workflow(self, params: dict, data: dict) -> dict:
        """Validate a workflow; in tenant mode, optionally register it.

        Mirrors the legacy 422 contract for lint rejections and adds
        the 429 admission contract: analysis first, then the footprint
        gate, then (when ``records`` are supplied) tenant bootstrap.
        """
        from repro.analysis import analyze

        workflow = self._decode_workflow(data)
        report = analyze(workflow)
        payload = report.to_dict()
        if not report.ok:
            payload["error"] = (
                f"workflow {workflow.name!r} rejected by static "
                f"analysis ({len(report.errors)} error(s))"
            )
            raise _HTTPError(422, payload)
        if not self._tenants:
            return payload
        tenant = params.get("tenant", data.get("tenant"))
        if tenant is None:
            return payload
        records = [tuple(r) for r in data.get("records", [])]
        dataset_size = data.get("dataset_size", len(records) or None)
        payload["estimate"] = self.backend.admit_workflow(
            tenant, workflow, dataset_size=dataset_size
        )
        if records:
            state = self.backend.register(tenant, workflow, records)
            payload["tenant"] = tenant
            payload["epoch"] = state.cluster.epoch
        return payload
