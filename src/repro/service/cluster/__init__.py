"""Sharded, async, multi-tenant measure serving.

The cluster layer scales :mod:`repro.service` horizontally: the
measure store is range-partitioned by partition key across N shard
workers (each its own store + ingestor, margin-replicated at the
boundaries exactly like the partitioned engine), a router fans reads
out and merges them, ingest commits through a journal-backed
two-phase cluster MANIFEST, and an asyncio front end serves thousands
of concurrent connections.  Tenants get structurally isolated
namespaces with footprint-based admission control.

Typical use::

    from repro.service.cluster import bootstrap_cluster, open_cluster

    cluster = bootstrap_cluster(root, workflow, records, num_shards=4)
    cluster.point("flows", (3, 0, 7))
    cluster.ingest(more_records)          # two-phase, crash-safe
    cluster.close()

    cluster = open_cluster(root)          # recovers if needed
"""

from repro.service.cluster.frontend import ClusterFrontend
from repro.service.cluster.manifest import ClusterManifest, IngestJournal
from repro.service.cluster.partitioning import ShardMap, build_shard_map
from repro.service.cluster.router import (
    MeasureCluster,
    bootstrap_cluster,
    open_cluster,
    recover_cluster,
)
from repro.service.cluster.tenancy import TenantManager
from repro.service.cluster.worker import (
    LocalShard,
    ShardProcess,
    ShardWorker,
)

__all__ = [
    "ClusterFrontend",
    "ClusterManifest",
    "IngestJournal",
    "LocalShard",
    "MeasureCluster",
    "ShardMap",
    "ShardProcess",
    "ShardWorker",
    "TenantManager",
    "bootstrap_cluster",
    "build_shard_map",
    "open_cluster",
    "recover_cluster",
]
