"""The cluster MANIFEST and the two-phase ingest commit protocol.

A cluster directory looks like::

    cluster/
      CLUSTER.json          # authoritative: shard map, epoch, per-shard
                            # generations — swapped atomically
      JOURNAL.json          # present only while an ingest is in flight
      j000007.bin           # the journaled delta batch (flat file)
      workflow.pkl          # the workflow every shard serves
      shard-00/             # one MeasureStore directory per shard
      shard-01/
      ...

Each shard's own store commit is already atomic (segments first, then
one manifest swap), but a cluster ingest touches *several* shard
stores, so a crash between shard commits would otherwise leave a
mixture of pre- and post-delta shards with nothing recording which is
which.  The cluster protocol closes that hole with a journal-backed
two-phase commit:

1. **Journal** — the delta batch is written next to the manifest as a
   flat-file segment plus a ``JOURNAL.json`` recording the target
   epoch and the *expected* post-prepare generation of every shard.
   Both are fsynced before any shard is touched.
2. **Prepare** — every affected shard ingests its sub-delta and
   commits locally.  A crash here strands some shards one generation
   ahead; the journal knows exactly which.
3. **Swap** — a new ``CLUSTER.json`` (epoch + 1, the prepared
   generations) is written to a temp file, fsynced, and atomically
   swapped in; then the journal is deleted.

Recovery on open is pure redo: when a journal is present, any shard
still *behind* its expected generation re-ingests its journaled
sub-delta (shard generations make the redo idempotent — a shard that
already committed is simply skipped), then the swap is completed and
the journal dropped.  At every observable instant the cluster manifest
and the shard stores agree on exactly one of the pre-delta or
post-delta states — the crash sweeper enumerates every injection site
below and asserts precisely that.
"""

from __future__ import annotations

import contextlib
import json
import os

from repro.errors import ClusterError
from repro.service.cluster.partitioning import ShardMap
from repro.testkit.failpoints import fire, register

# Injection sites of the cluster commit protocol, swept by
# repro.testkit.sweeper (scope "cluster"): a kill at any of them must
# leave the cluster recoverable to a consistent generation.
FP_JOURNAL_WRITE = register(
    "cluster.journal-write", "cluster",
    "after the ingest journal is durable, before any shard prepares",
)
FP_SHARD_PREPARE = register(
    "cluster.shard-prepare", "cluster",
    "after one shard's prepare commit, before the next shard's",
)
FP_MANIFEST_SWAP = register(
    "cluster.manifest-swap", "cluster",
    "after the new cluster manifest is written, before its atomic swap",
)
FP_POST_SWAP = register(
    "cluster.post-swap", "cluster",
    "after the swap, before the ingest journal is deleted",
)

MANIFEST_FILE = "CLUSTER.json"
JOURNAL_FILE = "JOURNAL.json"
_FORMAT = 1


def _fsync_write(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON durably and atomically (tmp + replace)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def shard_dir(root: str, index: int) -> str:
    """The store directory of shard ``index`` under ``root``."""
    return os.path.join(root, f"shard-{index:02d}")


class ClusterManifest:
    """The authoritative cluster state: shard map, epoch, generations.

    ``epoch`` counts successful cluster-wide commits (bootstrap is
    epoch 1); ``generations[i]`` is the shard-store generation the
    manifest vouches for.  The file is only ever replaced atomically,
    so readers always see a complete, internally consistent state.
    """

    def __init__(
        self,
        root: str,
        shard_map: ShardMap,
        epoch: int,
        generations: list[int],
        meta: dict | None = None,
    ) -> None:
        self.root = root
        self.shard_map = shard_map
        self.epoch = epoch
        self.generations = list(generations)
        self.meta = dict(meta or {})

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "epoch": self.epoch,
            "shard_map": self.shard_map.to_dict(),
            "generations": list(self.generations),
            "meta": self.meta,
        }

    def write(self) -> None:
        """Swap this state in as the authoritative manifest."""
        path = os.path.join(self.root, MANIFEST_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)
            fh.flush()
            os.fsync(fh.fileno())
        fire(FP_MANIFEST_SWAP, path=tmp)
        os.replace(tmp, path)

    @classmethod
    def load(
        cls, root: str, cleanup: bool = True
    ) -> "ClusterManifest":
        path = os.path.join(root, MANIFEST_FILE)
        # A swap that crashed after writing its temp file never became
        # authoritative; drop the leftover.  Only the router's own
        # open-time recovery may clean: a worker process (re)loading
        # the manifest can race a live swap, and removing the .tmp out
        # from under `write()` would fail that commit — those callers
        # pass cleanup=False.
        if cleanup:
            with contextlib.suppress(OSError):
                os.remove(path + ".tmp")
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise ClusterError(
                f"{root!r} has no {MANIFEST_FILE}; not a cluster "
                "directory (bootstrap one first)"
            ) from None
        if data.get("format") != _FORMAT:
            raise ClusterError(
                f"{root}: cluster format {data.get('format')!r}, "
                f"expected {_FORMAT}"
            )
        return cls(
            root=root,
            shard_map=ShardMap.from_dict(data["shard_map"]),
            epoch=data["epoch"],
            generations=list(data["generations"]),
            meta=dict(data.get("meta", {})),
        )

    @staticmethod
    def exists(root: str) -> bool:
        return os.path.exists(os.path.join(root, MANIFEST_FILE))


class IngestJournal:
    """The redo record of one in-flight cluster ingest.

    ``expected[i]`` is the generation shard ``i`` must reach for the
    delta to count as applied there (its pre-delta generation plus one
    for shards receiving records, unchanged for the rest); ``facts``
    names the journaled flat-file copy of the delta batch.
    """

    def __init__(
        self,
        root: str,
        epoch: int,
        expected: list[int],
        baseline: list[int],
        facts: str,
        records: int,
    ) -> None:
        self.root = root
        self.epoch = epoch
        self.expected = list(expected)
        self.baseline = list(baseline)
        self.facts = facts
        self.records = records

    @property
    def facts_path(self) -> str:
        return os.path.join(self.root, self.facts)

    def write(self) -> None:
        """Make the journal durable; the point of no return for redo."""
        _fsync_write(
            os.path.join(self.root, JOURNAL_FILE),
            {
                "format": _FORMAT,
                "epoch": self.epoch,
                "expected": list(self.expected),
                "baseline": list(self.baseline),
                "facts": self.facts,
                "records": self.records,
            },
        )
        fire(FP_JOURNAL_WRITE)

    def clear(self) -> None:
        """Drop the journal and its facts file after a completed swap."""
        fire(FP_POST_SWAP)
        with contextlib.suppress(OSError):
            os.remove(os.path.join(self.root, JOURNAL_FILE))
        with contextlib.suppress(OSError):
            os.remove(self.facts_path)

    @classmethod
    def load(cls, root: str) -> "IngestJournal | None":
        path = os.path.join(root, JOURNAL_FILE)
        # The journal itself is written via tmp + atomic replace, so a
        # bare .tmp is a crashed phase-0 write: the ingest never
        # started, drop it.
        with contextlib.suppress(OSError):
            os.remove(path + ".tmp")
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return None
        return cls(
            root=root,
            epoch=data["epoch"],
            expected=list(data["expected"]),
            baseline=list(data["baseline"]),
            facts=data["facts"],
            records=data["records"],
        )
