"""Multi-tenant namespaces and admission control.

Each tenant is a fully isolated namespace: its own directory under
``<root>/tenants/<name>``, its own cluster (or single-shard service),
and therefore its own per-shard LRU caches — tenant A's ingest
invalidates A's caches and nobody else's, because no cache object is
shared.  Isolation is structural, not filtered.

Tenant names are restricted to ``[a-z0-9][a-z0-9_-]*`` (max 64 chars)
and used verbatim as directory names: the strict charset means two
distinct tenant names can never collide on disk (no case folding, no
escaping, no truncation).

Admission control guards the two expensive doors with the CSM2xx
footprint model (:func:`repro.optimizer.memory_model.estimate_graph_entries`
— the same estimate the static analyzer's CSM201 lint uses):

- **workflow registration** is rejected outright (not retryable) when
  the estimated resident footprint exceeds the tenant's budget;
- **ingest** is re-estimated against the post-ingest fact count —
  including records admitted by concurrent ingests but not yet
  committed — and rejected when the tenant would outgrow its budget;
  the check runs while holding an ingest slot, so two deltas that only
  fit alone cannot both be admitted.  Concurrent ingests beyond the
  tenant's slot limit are *queued* (bounded wait) or *rejected*
  (retryable) depending on the configured policy.

Each tenant's budget is persisted in its cluster manifest at
registration time and restored on reopen, so a manager restart never
silently reverts a custom budget to the default.

Rejections raise :class:`~repro.errors.AdmissionError`, whose
structured payload the HTTP front end serializes as a 429 body — the
admission-control mirror of the 422 lint-rejection body.
"""

from __future__ import annotations

import os
import re
import threading

from repro.errors import AdmissionError, ServiceError
from repro.analysis.analyzer import DEFAULT_MEMORY_BUDGET
from repro.engine.compile import compile_workflow
from repro.engine.sort_scan import default_sort_key
from repro.obs import get_registry
from repro.obs.metrics import ADMISSION_REJECTS
from repro.optimizer.memory_model import (
    estimate_graph_entries,
    estimate_node_entries,
)
from repro.service.cluster.manifest import ClusterManifest
from repro.service.cluster.router import (
    MeasureCluster,
    bootstrap_cluster,
    open_cluster,
)

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")

#: Concurrent ingests a tenant may have in flight before admission
#: control starts queueing or rejecting.
DEFAULT_INGEST_SLOTS = 2

#: How long a queued ingest waits for a slot before giving up.
DEFAULT_QUEUE_TIMEOUT = 30.0


def validate_tenant_name(name: str) -> str:
    """Return ``name`` when it is a safe, collision-free directory name."""
    if not _NAME_RE.match(name):
        raise ServiceError(
            f"invalid tenant name {name!r}: must match "
            "[a-z0-9][a-z0-9_-]{0,63}"
        )
    return name


class TenantState:
    """One tenant's cluster handle plus its admission bookkeeping."""

    def __init__(
        self,
        name: str,
        cluster: MeasureCluster,
        budget: int,
        ingest_slots: int,
    ) -> None:
        self.name = name
        self.cluster = cluster
        self.budget = budget
        self.semaphore = threading.BoundedSemaphore(ingest_slots)
        self.queued = 0
        #: Records admitted but not yet committed: concurrent slot
        #: holders charge the budget against facts + pending, so two
        #: deltas that only fit alone cannot both be admitted.
        self.pending_records = 0
        self.queue_lock = threading.Lock()


class TenantManager:
    """Routes tenant-scoped requests and enforces admission control."""

    def __init__(
        self,
        root: str,
        num_shards: int = 1,
        mode: str = "local",
        default_budget: int = DEFAULT_MEMORY_BUDGET,
        ingest_slots: int = DEFAULT_INGEST_SLOTS,
        queue_policy: str = "queue",
        queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
        max_queue_depth: int = 16,
        cache_size: int = 256,
    ) -> None:
        if queue_policy not in ("queue", "reject"):
            raise ServiceError(
                f"unknown admission queue policy {queue_policy!r}"
            )
        self.root = root
        self.num_shards = num_shards
        self.mode = mode
        self.default_budget = default_budget
        self.ingest_slots = ingest_slots
        self.queue_policy = queue_policy
        self.queue_timeout = queue_timeout
        self.max_queue_depth = max_queue_depth
        self.cache_size = cache_size
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self._rejects = get_registry().counter(
            ADMISSION_REJECTS,
            "Requests rejected by tenant admission control",
            labelnames=("tenant", "reason"),
        )
        self._reopen_existing()

    # -- namespace plumbing --------------------------------------------

    def tenant_dir(self, name: str) -> str:
        return os.path.join(
            self.root, "tenants", validate_tenant_name(name)
        )

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def _reopen_existing(self) -> None:
        base = os.path.join(self.root, "tenants")
        if not os.path.isdir(base):
            return
        for name in sorted(os.listdir(base)):
            path = os.path.join(base, name)
            if not _NAME_RE.match(name) or not ClusterManifest.exists(
                path
            ):
                continue
            cluster = open_cluster(
                path, mode=self.mode, cache_size=self.cache_size
            )
            # The budget was persisted in the cluster manifest at
            # registration; falling back to the default would silently
            # change admission decisions for tenants registered with a
            # custom budget.
            budget = int(
                cluster.manifest.meta.get(
                    "tenant_budget", self.default_budget
                )
            )
            self._tenants[name] = TenantState(
                name, cluster, budget, self.ingest_slots
            )

    def get(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
        if state is None:
            raise ServiceError(
                f"unknown tenant {name!r}; register a workflow first"
            )
        return state

    def cluster(self, name: str) -> MeasureCluster:
        return self.get(name).cluster

    # -- admission control ---------------------------------------------

    def _reject(self, error: AdmissionError) -> AdmissionError:
        self._rejects.labels(
            tenant=error.tenant, reason=error.reason
        ).inc()
        return error

    def _estimate(self, workflow, dataset_size: int | None) -> int:
        """A tenant's resident footprint in entries, CSM2xx model.

        Two parts share the watermark-driven cardinality model: the
        *streaming* working set one ingest fold keeps resident
        (:func:`estimate_graph_entries`, what CSM201 lints), plus the
        *stored* state tables the service keeps hot for serving — each
        node's full group count (``specs=[]`` means nothing flushes),
        capped at the fact count.
        """
        graph = compile_workflow(workflow)
        streaming = estimate_graph_entries(
            graph, default_sort_key(graph), dataset_size=dataset_size
        )
        stored = sum(
            estimate_node_entries(node, [], dataset_size=dataset_size)
            for node in graph.nodes
        )
        return streaming + stored

    def admit_workflow(
        self,
        name: str,
        workflow,
        dataset_size: int | None = None,
        budget: int | None = None,
    ) -> int:
        """Gate a workflow registration; returns the footprint estimate."""
        budget = self.default_budget if budget is None else budget
        estimate = self._estimate(workflow, dataset_size)
        if estimate > budget:
            raise self._reject(
                AdmissionError(
                    f"tenant {name!r}: estimated footprint {estimate} "
                    f"entries exceeds the tenant budget of {budget}",
                    tenant=name,
                    reason="memory-budget",
                    retryable=False,
                    estimate=estimate,
                    budget=budget,
                )
            )
        return estimate

    def register(
        self,
        name: str,
        workflow,
        records,
        budget: int | None = None,
    ) -> TenantState:
        """Admit and bootstrap a new tenant namespace."""
        path = self.tenant_dir(name)
        records = [tuple(record) for record in records]
        with self._lock:
            if name in self._tenants:
                raise ServiceError(
                    f"tenant {name!r} is already registered"
                )
            budget = (
                self.default_budget if budget is None else budget
            )
            self.admit_workflow(
                name, workflow, dataset_size=len(records), budget=budget
            )
            cluster = bootstrap_cluster(
                path,
                workflow,
                records,
                num_shards=self.num_shards,
                mode=self.mode,
                cache_size=self.cache_size,
                # Persisted so a restarted manager restores the same
                # admission decisions (see _reopen_existing).
                meta={"tenant_budget": budget},
            )
            state = TenantState(
                name, cluster, budget, self.ingest_slots
            )
            self._tenants[name] = state
            return state

    def ingest(self, name: str, records) -> dict:
        """Admission-checked, slot-limited ingest into one tenant."""
        state = self.get(name)
        records = [tuple(record) for record in records]
        self._acquire_slot(state)
        try:
            # Budget check *while holding the slot*: a tenant at its
            # footprint ceiling cannot grow past it by ingesting, and
            # charging the delta against facts + in-flight records
            # under the admission lock means a concurrent slot
            # holder's uncommitted delta counts too — closing the
            # check-then-ingest race where two deltas that only fit
            # alone were both admitted.
            self._charge_budget(state, len(records))
            try:
                return state.cluster.ingest(records)
            finally:
                with state.queue_lock:
                    state.pending_records -= len(records)
        finally:
            state.semaphore.release()

    def _acquire_slot(self, state: TenantState) -> None:
        """Take an ingest slot: queue (bounded) or reject (retryable)."""
        if state.semaphore.acquire(blocking=False):
            return
        if self.queue_policy == "reject":
            raise self._reject(
                AdmissionError(
                    f"tenant {state.name!r}: too many concurrent "
                    "ingests; retry later",
                    tenant=state.name,
                    reason="ingest-slots",
                    retryable=True,
                )
            )
        with state.queue_lock:
            if state.queued >= self.max_queue_depth:
                raise self._reject(
                    AdmissionError(
                        f"tenant {state.name!r}: ingest queue is full "
                        f"({state.queued} waiting); retry later",
                        tenant=state.name,
                        reason="queue-depth",
                        retryable=True,
                    )
                )
            state.queued += 1
        try:
            acquired = state.semaphore.acquire(
                timeout=self.queue_timeout
            )
        finally:
            with state.queue_lock:
                state.queued -= 1
        if not acquired:
            raise self._reject(
                AdmissionError(
                    f"tenant {state.name!r}: timed out after "
                    f"{self.queue_timeout}s waiting for an "
                    "ingest slot",
                    tenant=state.name,
                    reason="queue-timeout",
                    retryable=True,
                )
            )

    def _charge_budget(self, state: TenantState, count: int) -> None:
        """Admit ``count`` records against the budget, or reject."""
        with state.queue_lock:
            facts = state.cluster.stats()["facts"]
            projected = facts + state.pending_records + count
            estimate = self._estimate(state.cluster.workflow, projected)
            if estimate > state.budget:
                raise self._reject(
                    AdmissionError(
                        f"tenant {state.name!r}: ingesting {count} "
                        "records would grow the estimated footprint "
                        f"to {estimate} entries, over the budget of "
                        f"{state.budget}",
                        tenant=state.name,
                        reason="memory-budget",
                        retryable=False,
                        estimate=estimate,
                        budget=state.budget,
                    )
                )
            state.pending_records += count

    def workload_sharing_stats(self) -> dict:
        """Cross-tenant workload sharing summary for ``/statusz``.

        Runs the workload analyzer (:mod:`repro.analysis.workload`)
        over every tenant's registered workflow, so operators can spot
        redundant tenant dashboards — two tenants computing the same
        sub-aggregations, or one tenant's workflow subsuming another's
        — with the estimated work-unit saving attached.  Best-effort:
        an analyzer failure degrades to an ``error`` field rather than
        failing the status endpoint.
        """
        with self._lock:
            workflows = {
                name: state.cluster.workflow
                for name, state in sorted(self._tenants.items())
            }
        summary: dict = {
            "tenants": len(workflows),
            "codes": [],
            "estimated_saving": 0.0,
            "diagnostics": [],
            "shared_scan_groups": [],
        }
        if len(workflows) < 2:
            return summary
        try:
            from repro.analysis import analyze_workload

            report = analyze_workload(workflows)
        except Exception as exc:  # pragma: no cover - defensive
            summary["error"] = f"{type(exc).__name__}: {exc}"
            return summary
        summary["codes"] = sorted(report.codes())
        summary["estimated_saving"] = report.estimated_saving()
        summary["diagnostics"] = [
            d.to_dict() for d in report.diagnostics
        ]
        summary["shared_scan_groups"] = [
            g.to_dict() for g in report.scan_groups
        ]
        return summary

    # -- lifecycle -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            states = list(self._tenants.values())
        return {
            "tenants": {
                state.name: {
                    "budget": state.budget,
                    "queued_ingests": state.queued,
                    **state.cluster.stats(),
                }
                for state in states
            }
        }

    def close(self) -> None:
        with self._lock:
            states = list(self._tenants.values())
            self._tenants.clear()
        for state in states:
            state.cluster.close()
