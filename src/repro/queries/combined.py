"""The fused network-analysis query of Figure 6(f).

"Since the aggregation workflow is capable of expressing multiple
measures and evaluating them together, the sort-scan approach, in this
case, results in an order of magnitude performance improvement over the
relational database query."

The fused workflow is simply the union of the escalation and
multi-recon workflows: one aggregation workflow, one sort, one scan —
whereas the relational baseline evaluates every measure as its own
query block.
"""

from __future__ import annotations

from repro.queries.escalation import escalation_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def combined_workflow(
    schema: DatasetSchema,
    lookback_hours: int = 3,
    min_packets: int = 20,
    ratio_threshold: float = 3.0,
    min_sources: int = 30,
    min_ports: int = 2,
) -> AggregationWorkflow:
    """Both Section 7.2 analyses fused into one workflow."""
    fused = escalation_workflow(
        schema,
        lookback_hours=lookback_hours,
        min_packets=min_packets,
        ratio_threshold=ratio_threshold,
    )
    fused.name = "combined-network-analysis"
    fused.merge(
        multi_recon_workflow(
            schema, min_sources=min_sources, min_ports=min_ports
        )
    )
    return fused
