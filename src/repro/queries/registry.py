"""Named query families — the declarative workflow encoding.

The CLI and both HTTP front ends resolve workflows by *name* through
this registry: a client says ``{"query": "escalation"}`` and the
trusted server-side builder constructs the workflow, instead of the
client shipping a pickled workflow object (unpickling attacker-chosen
bytes executes arbitrary code, so pickled submissions are reserved for
trusted operators — loopback binds, or an explicit opt-in flag on the
server).

Every entry maps a stable public name to ``(schema family, builder)``;
the schema family names the dataset schema the workflow aggregates
over, so callers can also resolve the matching generator or flat-file
layout.
"""

from __future__ import annotations

from repro.errors import ServiceError
from repro.queries.combined import combined_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.examples import examples_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)

#: Schema family name -> dataset schema builder.
SCHEMA_FAMILIES = {
    "synthetic": synthetic_schema,
    "network": network_log_schema,
}

#: Query family name -> (schema family, workflow builder).
QUERY_FAMILIES = {
    "examples": ("network", lambda schema: examples_workflow(schema)),
    "q1": ("synthetic", lambda schema: q1_workflow(schema)),
    "q2": ("synthetic", lambda schema: q2_workflow(schema, depth=2)),
    "escalation": (
        "network", lambda schema: escalation_workflow(schema)
    ),
    "multirecon": (
        "network", lambda schema: multi_recon_workflow(schema)
    ),
    "combined": ("network", lambda schema: combined_workflow(schema)),
}


def build_query_workflow(name: str):
    """Construct the workflow of the named query family."""
    try:
        family, build = QUERY_FAMILIES[name]
    except (KeyError, TypeError):
        raise ServiceError(
            f"unknown query family {name!r}; one of "
            f"{sorted(QUERY_FAMILIES)}"
        ) from None
    return build(SCHEMA_FAMILIES[family]())
