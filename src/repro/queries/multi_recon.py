"""Multi-recon detection (Section 7.2, second analysis query).

"identify instances where attack packets from multiple unique source IP
addresses target a specific destination network over a specific period
of time.  This query contains three measures, each of which based on
child/parent match joins."

Per (hour, target /24) region, three child/parent roll-ups:

1. ``uniqueSources`` — populated (hour, /24, source IP) child regions;
2. ``uniquePorts`` — populated (hour, /24, port) child regions;
3. ``packets`` — total packet volume, rolled up from the source-level
   child measure.

A combine join scores the region and a final filter keeps the recon
alerts.
"""

from __future__ import annotations

from repro.algebra.predicates import Field
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def multi_recon_workflow(
    schema: DatasetSchema,
    min_sources: int = 30,
    min_ports: int = 2,
    prefix: str = "",
) -> AggregationWorkflow:
    """Build the multi-recon detection workflow.

    Args:
        schema: The network-log schema (t/U/T/P).
        min_sources: Unique-source threshold for an alert.
        min_ports: Unique-target-port threshold for an alert.
        prefix: Optional measure-name prefix for workflow fusion.
    """
    wf = AggregationWorkflow(schema, name=f"{prefix}multi-recon")
    parent = {"t": "Hour", "T": "/24"}

    wf.basic(
        f"{prefix}srcTraffic",
        {"t": "Hour", "T": "/24", "U": "IP"},
        agg="count",
    )
    wf.basic(
        f"{prefix}portTraffic",
        {"t": "Hour", "T": "/24", "P": "Port"},
        agg="count",
    )
    # Three child/parent roll-ups onto the (hour, /24) parent regions.
    wf.rollup(
        f"{prefix}uniqueSources",
        parent,
        source=f"{prefix}srcTraffic",
        agg="count",
    )
    wf.rollup(
        f"{prefix}uniquePorts",
        parent,
        source=f"{prefix}portTraffic",
        agg="count",
    )
    wf.rollup(
        f"{prefix}packets",
        parent,
        source=f"{prefix}srcTraffic",
        agg=("sum", "M"),
    )

    def recon_score(sources, ports, packets):
        if not sources or not ports or not packets:
            return None
        if sources < min_sources or ports < min_ports:
            return None
        # Score: breadth of sources weighted by port spread; packet
        # volume only gates (recon is many-sources, not necessarily
        # high-volume).
        return float(sources * ports)

    wf.combine(
        f"{prefix}reconScore",
        [
            f"{prefix}uniqueSources",
            f"{prefix}uniquePorts",
            f"{prefix}packets",
        ],
        fn=recon_score,
        fn_name="sources*ports",
        handles_null=True,
    )
    wf.filter(
        f"{prefix}reconAlerts",
        source=f"{prefix}reconScore",
        where=Field("M") > 0,
    )
    return wf
