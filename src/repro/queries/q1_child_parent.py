"""Q1 — the child/parent query of Figures 6(a) and 6(c).

"The first query contains a measure which is computed by combining
seven aggregations for its child regions. [...]  For the relational
approach, we use the aggregation function COUNT(DISTINCT(...)) to
generate the aggregation for child regions."

Construction: ``k`` child measures at distinct granularities strictly
finer than the parent region set ``(d0:L1)``.  Each child is a basic
COUNT over its region set; its roll-up to the parent counts the child's
populated regions — exactly what ``COUNT(DISTINCT child key)`` computes
in the SQL formulation.  The parent measure combines all ``k``
roll-ups by summation.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def _child_granularities(
    schema: DatasetSchema, count: int
) -> list[dict[str, str]]:
    """``count`` distinct granularities finer than the parent (d0:L1).

    Children always pin d0 to its base level (so they are strictly
    finer than the parent) and vary the other dimensions/levels.
    """
    dims = [d.name for d in schema.dimensions]
    if len(dims) < 4:
        raise WorkflowError("Q1 needs the 4-dimensional synthetic schema")
    menu: list[dict[str, str]] = [
        {"d0": "d0.L0"},
        {"d0": "d0.L0", "d1": "d1.L0"},
        {"d0": "d0.L0", "d1": "d1.L1"},
        {"d0": "d0.L0", "d2": "d2.L0"},
        {"d0": "d0.L0", "d2": "d2.L1"},
        {"d0": "d0.L0", "d3": "d3.L0"},
        {"d0": "d0.L0", "d3": "d3.L1"},
        {"d0": "d0.L0", "d1": "d1.L0", "d2": "d2.L1"},
        {"d0": "d0.L0", "d1": "d1.L1", "d3": "d3.L1"},
    ]
    if count > len(menu):
        raise WorkflowError(
            f"Q1 supports up to {len(menu)} child measures, asked {count}"
        )
    return menu[:count]


def q1_workflow(
    schema: DatasetSchema, num_children: int = 7
) -> AggregationWorkflow:
    """Build Q1 with ``num_children`` dependent child measures.

    Figure 6(a) uses seven children; Figure 6(c) sweeps two to six.
    """
    wf = AggregationWorkflow(schema, name=f"q1-{num_children}-children")
    parent_gran = {"d0": "d0.L1"}
    rollup_names: list[str] = []
    for i, child_gran in enumerate(_child_granularities(schema, num_children)):
        # Intermediates are hidden: the query's single reported measure
        # is the combined parent value, matching the paper's Q1.
        child = wf.basic(
            f"child{i}", child_gran, agg="count", hidden=True
        )
        rolled = wf.rollup(
            f"regions{i}",
            parent_gran,
            source=child,
            agg="count",
            hidden=True,
        )
        rollup_names.append(rolled.name)

    def total(*values) -> float:
        return sum(value or 0 for value in values)

    wf.combine(
        "combined",
        rollup_names,
        fn=total,
        fn_name="sum-of-region-counts",
        handles_null=True,
    )
    return wf
