"""Network escalation detection (Section 7.2, first analysis query).

"identify instances where attack packet volume grows significantly from
one time period to the next, and contains a measure with several
sibling match joins.  The intermediate result for this query is quite
small."

Per (hour, target /24) region: the packet count, the average count over
the preceding hours (a *backward* sibling window that excludes the
current hour), their ratio, and an alert measure keeping only regions
whose ratio exceeds a threshold.
"""

from __future__ import annotations

from repro.algebra.conditions import Sibling
from repro.algebra.predicates import Field
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def escalation_workflow(
    schema: DatasetSchema,
    lookback_hours: int = 3,
    min_packets: int = 20,
    ratio_threshold: float = 3.0,
    prefix: str = "",
) -> AggregationWorkflow:
    """Build the escalation-detection workflow.

    Args:
        schema: The network-log schema (t/U/T/P).
        lookback_hours: Width of the backward window the current hour
            is compared against.
        min_packets: Volume floor below which no alert fires (filters
            the noisy ``1 -> 4 packets`` blow-ups).
        ratio_threshold: ``current / trailing average`` alert cut-off.
        prefix: Optional measure-name prefix, so this workflow can be
            merged with others (Figure 6(f)).
    """
    wf = AggregationWorkflow(schema, name=f"{prefix}escalation")
    gran = {"t": "Hour", "T": "/24"}

    wf.basic(f"{prefix}traffic", gran, agg="count")
    # Trailing average over [t - lookback, t - 1]: several sibling
    # matches collapse into one windowed match join.
    wf.match(
        f"{prefix}prevAvg",
        gran,
        source=f"{prefix}traffic",
        cond=Sibling({"t": (lookback_hours, -1)}),
        agg="avg",
    )

    def escalation_ratio(current, trailing):
        if current is None or current < min_packets:
            return None
        if trailing is None or trailing <= 0:
            # No history: treat as strongly escalating (first sighting).
            return float(current)
        return current / trailing

    wf.combine(
        f"{prefix}escalation",
        [f"{prefix}traffic", f"{prefix}prevAvg"],
        fn=escalation_ratio,
        fn_name="current/trailing",
        handles_null=True,
    )
    wf.filter(
        f"{prefix}alerts",
        source=f"{prefix}escalation",
        where=Field("M") >= ratio_threshold,
    )
    return wf
