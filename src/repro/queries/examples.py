"""Examples 1-5 of the paper (Section 3.1) as one aggregation workflow.

Example 1 (traffic counting)::

    ∀c ∈ [t:Hour, U:IP], c.Count = |coverage(c)|

Example 2 (busy source count)::

    ∀c ∈ [t:Hour], c.sCount = |{c' ∈ [t:Hour, U:IP],
                                 c.t = c'.t, c'.Count > 5}|

Example 3 (busy source traffic): as Example 2, but summing the counts.

Example 4 (moving average)::

    ∀c ∈ [t:Hour], c.avgCount = average{c'.sCount | c' ∈ [t:Hour],
                                         c'.t ∈ [c.t, c.t+5]}

Example 5 (ratio)::

    ∀c ∈ [t:Hour], c.ratio = c.avgCount / (c.sTraffic / c.sCount)
"""

from __future__ import annotations

from repro.algebra.conditions import Sibling
from repro.algebra.predicates import Field
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def examples_workflow(
    schema: DatasetSchema,
    busy_threshold: int = 5,
    window_hours: int = 6,
) -> AggregationWorkflow:
    """Build the Examples 1-5 workflow over a network-log schema.

    Args:
        schema: A schema with ``t`` (time) and ``U`` (source)
            dimensions — :func:`repro.schema.network_log_schema` fits.
        busy_threshold: The "at least five outgoing packets" cut-off.
        window_hours: The moving-average window width.
    """
    wf = AggregationWorkflow(schema, name="paper-examples")

    # Example 1: Count = g_{(t:Hour, U:IP), count(*)} D
    wf.basic("Count", {"t": "Hour", "U": "IP"}, agg="count")

    # Example 2: sCount = g_{(t:Hour), count(*)} (σ_{M>5} Count)
    wf.rollup(
        "sCount",
        {"t": "Hour"},
        source="Count",
        where=Field("M") > busy_threshold,
        agg="count",
    )

    # Example 3: sTraffic = g_{(t:Hour), sum(M)} (σ_{M>5} Count)
    wf.rollup(
        "sTraffic",
        {"t": "Hour"},
        source="Count",
        where=Field("M") > busy_threshold,
        agg=("sum", "M"),
    )

    # Example 4: avgCount over the forward window [t, t+5].
    wf.match(
        "avgCount",
        {"t": "Hour"},
        source="sCount",
        cond=Sibling({"t": (0, window_hours - 1)}),
        agg="avg",
    )

    # Example 5: ratio = avgCount / (sTraffic / sCount)
    def ratio(avg_count, s_traffic, s_count):
        if avg_count is None or not s_traffic or not s_count:
            return None
        return avg_count / (s_traffic / s_count)

    wf.combine(
        "ratio",
        ["avgCount", "sTraffic", "sCount"],
        fn=ratio,
        fn_name="avg/(traffic/count)",
        handles_null=True,
    )
    return wf
