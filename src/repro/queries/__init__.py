"""The paper's query library.

Workflow builders for every query the paper evaluates or uses as a
running example:

- :func:`examples_workflow` — Examples 1-5 of Section 3.1 (traffic
  counting, busy sources, moving averages, ratios);
- :func:`q1_workflow` — the Figure 6(a)/6(c) child/parent query
  (k child measures combined at the parent region);
- :func:`q2_workflow` — the Figure 6(b)/6(d) sibling query (chains of
  nested sliding windows);
- :func:`escalation_workflow` — Section 7.2 network escalation
  detection;
- :func:`multi_recon_workflow` — Section 7.2 multi-recon detection;
- :func:`combined_workflow` — both analyses fused in one workflow
  (Figure 6(f)).
"""

from repro.queries.examples import examples_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.combined import combined_workflow
from repro.queries.registry import (
    QUERY_FAMILIES,
    SCHEMA_FAMILIES,
    build_query_workflow,
)

__all__ = [
    "examples_workflow",
    "q1_workflow",
    "q2_workflow",
    "escalation_workflow",
    "multi_recon_workflow",
    "combined_workflow",
    "QUERY_FAMILIES",
    "SCHEMA_FAMILIES",
    "build_query_workflow",
]
