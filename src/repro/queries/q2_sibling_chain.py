"""Q2 — the sibling-match query of Figures 6(b) and 6(d).

"The second query contains a measure which is computed through multiple
levels (up to seven) of nested sliding windows.  In the database
system, this is implemented as nested queries with analytical
functions."

Construction: a basic COUNT per base region of ``d0``, then a chain of
``depth`` moving-average sibling matches, each averaging the previous
level over a sliding window along ``d0``.  Figure 6(d) additionally
sweeps the number of *parallel* chains hanging off the same base
measure.
"""

from __future__ import annotations

from repro.errors import WorkflowError
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.workflow import AggregationWorkflow


def q2_workflow(
    schema: DatasetSchema,
    depth: int = 2,
    num_chains: int = 1,
    window: int = 3,
) -> AggregationWorkflow:
    """Build Q2: ``num_chains`` chains of ``depth`` nested windows.

    Args:
        schema: The synthetic 4-dimensional schema.
        depth: Nesting levels per chain (the paper's 2-Chain and
            7-Chain use 2 and 7).
        num_chains: Parallel chains from the same base measure
            (Figure 6(d) sweeps 2..7).
        window: Sliding-window width in base-domain steps.
    """
    if depth < 1:
        raise WorkflowError("Q2 needs at least one window level")
    if num_chains < 1:
        raise WorkflowError("Q2 needs at least one chain")
    wf = AggregationWorkflow(
        schema, name=f"q2-{num_chains}x{depth}-chain"
    )
    gran = {"d0": "d0.L0"}
    wf.basic("base", gran, agg="count", hidden=True)
    for chain in range(num_chains):
        previous = "base"
        for level in range(depth):
            name = f"chain{chain}_w{level}"
            # Slightly different windows per chain so parallel chains
            # are distinct measures, not copies.  Only each chain's
            # final level is a reported output, matching the paper's
            # Q2 (one measure through k levels of nested windows).
            wf.moving_window(
                name,
                gran,
                source=previous,
                windows={"d0": (0, window + chain)},
                agg="avg",
                hidden=level < depth - 1,
            )
            previous = name
    return wf
