"""Plan optimization (Section 6 and the tech report's greedy planner).

The evaluation cost of a composite-measure plan is dominated by sorts,
scans, and the in-memory footprint of the hash tables.  This package
implements:

- a memory-footprint *estimator* driven by the same watermark specs the
  engine executes (:mod:`repro.optimizer.memory_model`);
- the paper's brute-force search over sort orders
  (:mod:`repro.optimizer.brute_force`) — feasible because the number of
  dimensions is small;
- a greedy multi-pass planner (:mod:`repro.optimizer.greedy`) that
  assigns measures to Sort/Scan iterations under a memory budget, the
  generalized-assignment flavour the paper sketches.
"""

from repro.optimizer.memory_model import (
    estimate_graph_entries,
    estimate_node_entries,
)
from repro.optimizer.brute_force import best_sort_key, candidate_sort_keys
from repro.optimizer.greedy import PassPlan, plan_passes
from repro.optimizer.cost_model import (
    PlanCost,
    estimate_plan_cost,
    per_measure_plan_cost,
)

__all__ = [
    "estimate_node_entries",
    "estimate_graph_entries",
    "best_sort_key",
    "candidate_sort_keys",
    "plan_passes",
    "PassPlan",
    "PlanCost",
    "estimate_plan_cost",
    "per_measure_plan_cost",
]
