"""The Section 6 cost model: sort, scan, update, write, relational.

The paper decomposes a composite-measure plan's cost into

1. ``C_sort`` / ``C_scan`` over the raw dataset (key-independent),
2. ``C_update(K, M)`` — in-memory maintenance per pass,
3. ``C_write(M)`` — emitting a measure's values,
4. ``C_rel(m)`` — evaluating a deferred measure relationally.

This module estimates all four for a :class:`MultiPassPlan`, in
abstract *work units* (rows touched / entries updated), so that plans
can be compared before execution: the unit costs cancel in
comparisons, which is all the optimizer needs.  Figure 6(f)'s
observation — a fused workflow amortizes one sort/scan across many
measures while the relational approach pays per query block — falls
straight out of the arithmetic (see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.conditions import Lags, Sibling
from repro.cube.order import SortKey
from repro.engine.compile import BasicNode, CompiledGraph, Node
from repro.optimizer.greedy import MultiPassPlan

#: Relative unit costs; defaults reflect that sorting a row costs more
#: than scanning it (comparisons + moves) and that relational
#: evaluation re-scans inputs per query block.
DEFAULT_SORT_WEIGHT = 2.0
DEFAULT_SCAN_WEIGHT = 1.0
DEFAULT_UPDATE_WEIGHT = 1.0
DEFAULT_WRITE_WEIGHT = 0.5


def estimate_region_count(node: Node, dataset_size: int) -> int:
    """Expected populated regions of a node's region set.

    The structural bound is the product of per-dimension cardinalities
    at the node's levels; the data bound is the dataset size (each
    record populates at most one region per measure).
    """
    schema = node.schema
    structural = 1
    for dim, level in enumerate(node.granularity.levels):
        hierarchy = schema.dimensions[dim].hierarchy
        if level == hierarchy.all_level:
            continue
        structural *= max(1, hierarchy.level_cardinality(level))
        if structural >= dataset_size:
            return dataset_size
    return min(structural, dataset_size)


def estimate_update_work(node: Node, dataset_size: int) -> int:
    """``C_update`` contribution of one node: input entries processed.

    Basic nodes see every record; composites see their sources'
    finalized entries, multiplied by window/lag width for sibling-style
    matches (each finalized source entry updates several cells).
    """
    if isinstance(node, BasicNode):
        return dataset_size
    work = 0
    for arc in node.in_arcs:
        source_rows = estimate_region_count(arc.src, dataset_size)
        multiplier = 1
        if isinstance(arc.cond, Sibling):
            windows = arc.cond.resolve(node.schema)
            for before, after in windows.values():
                multiplier *= max(1, before + after + 1)
        elif isinstance(arc.cond, Lags):
            offsets = arc.cond.resolve(node.schema)
            for deltas in offsets.values():
                multiplier *= max(1, len(deltas))
        work += source_rows * multiplier
    return work


@dataclass
class PlanCost:
    """Cost breakdown of a multi-pass plan, in abstract work units."""

    sort_work: float = 0.0
    scan_work: float = 0.0
    update_work: float = 0.0
    write_work: float = 0.0
    relational_work: float = 0.0
    #: (sort key, rows processed) per pass, in pass order.
    per_pass: list[tuple[SortKey, float]] = field(default_factory=list)

    @property
    def total(self) -> float:
        return (
            self.sort_work
            + self.scan_work
            + self.update_work
            + self.write_work
            + self.relational_work
        )

    def describe(self) -> str:
        """One-line-per-component cost listing."""
        return "\n".join(
            [
                f"sort:       {self.sort_work:12.0f}",
                f"scan:       {self.scan_work:12.0f}",
                f"update:     {self.update_work:12.0f}",
                f"write:      {self.write_work:12.0f}",
                f"relational: {self.relational_work:12.0f}",
                f"total:      {self.total:12.0f}",
            ]
        )


def estimate_plan_cost(
    graph: CompiledGraph,
    plan: MultiPassPlan,
    dataset_size: int,
    sort_weight: float = DEFAULT_SORT_WEIGHT,
    scan_weight: float = DEFAULT_SCAN_WEIGHT,
    update_weight: float = DEFAULT_UPDATE_WEIGHT,
    write_weight: float = DEFAULT_WRITE_WEIGHT,
) -> PlanCost:
    """Estimate the Section 6 cost of executing ``plan``.

    Every pass pays one sort and one scan of the raw dataset plus the
    update work of its streamed nodes; deferred nodes pay relational
    work proportional to their inputs' materialized sizes.
    """
    by_name = {node.name: node for node in graph.nodes}
    cost = PlanCost()
    for pass_plan in plan.passes:
        pass_update = 0.0
        pass_write = 0.0
        for name in pass_plan.node_names:
            node = by_name[name]
            pass_update += estimate_update_work(node, dataset_size)
            pass_write += estimate_region_count(node, dataset_size)
        cost.sort_work += sort_weight * dataset_size
        cost.scan_work += scan_weight * dataset_size
        cost.update_work += update_weight * pass_update
        cost.write_work += write_weight * pass_write
        cost.per_pass.append(
            (pass_plan.sort_key, pass_update + dataset_size)
        )
    for name in plan.deferred:
        node = by_name[name]
        # Relational combination reads every input table once and
        # writes the output (Section 5.3's "traditional join
        # strategies").
        input_rows = sum(
            estimate_region_count(arc.src, dataset_size)
            for arc in node.in_arcs
        )
        cost.relational_work += (
            scan_weight * input_rows
            + write_weight * estimate_region_count(node, dataset_size)
        )
    return cost


def per_measure_plan_cost(
    graph: CompiledGraph,
    dataset_size: int,
    sort_weight: float = DEFAULT_SORT_WEIGHT,
    scan_weight: float = DEFAULT_SCAN_WEIGHT,
    update_weight: float = DEFAULT_UPDATE_WEIGHT,
    write_weight: float = DEFAULT_WRITE_WEIGHT,
) -> PlanCost:
    """Cost of the *relational* strategy: one query block per output.

    Each output pays a scan (and, for memory-constrained group-bys, a
    sort) of the dataset per basic measure in its sub-tree plus the
    update/write work of the whole sub-tree — with shared sub-measures
    recomputed per output, as nested SQL does.
    """
    cost = PlanCost()
    for __, (out_node, ___) in graph.outputs.items():
        needed: list[Node] = []
        seen: set[str] = set()
        frontier = [out_node]
        while frontier:
            node = frontier.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            needed.append(node)
            frontier.extend(arc.src for arc in node.in_arcs)
        for node in needed:
            if isinstance(node, BasicNode):
                cost.sort_work += sort_weight * dataset_size
                cost.scan_work += scan_weight * dataset_size
            cost.update_work += update_weight * estimate_update_work(
                node, dataset_size
            )
            cost.write_work += write_weight * estimate_region_count(
                node, dataset_size
            )
    return cost
