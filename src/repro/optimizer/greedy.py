"""Greedy multi-pass planning (Section 5.3 multi-pass + Section 6).

When one Sort/Scan pass cannot hold every measure's state within the
memory budget, measures are split across passes, each with its own sort
order.  The underlying optimization problem is a generalized assignment
problem (NP-hard, as the paper notes); this module implements the
greedy heuristic the tech report describes: repeatedly pick the sort
key that lets the largest set of remaining measures stream within
budget, until every basic measure is assigned.  Composite measures
whose inputs land in different passes are *deferred*: they are
evaluated after all passes from the materialized tables ("resort to
traditional join strategies", Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.cube.order import SortKey
from repro.engine.compile import BasicNode, CompiledGraph
from repro.engine.watermark import build_node_specs
from repro.optimizer.brute_force import candidate_sort_keys
from repro.optimizer.memory_model import estimate_node_entries


@dataclass
class PassPlan:
    """One Sort/Scan iteration: a sort key and the nodes it streams."""

    sort_key: SortKey
    node_names: list[str]
    estimated_entries: int = 0


@dataclass
class MultiPassPlan:
    """A complete multi-pass plan."""

    passes: list[PassPlan] = field(default_factory=list)
    #: Nodes evaluated after the passes, from materialized tables.
    deferred: list[str] = field(default_factory=list)

    @property
    def num_passes(self) -> int:
        return len(self.passes)


def _streamable_under_key(
    graph: CompiledGraph,
    sort_key: SortKey,
    unassigned: set[str],
    budget: int | None,
    dataset_size: int | None,
) -> tuple[list[str], int]:
    """Greedily grow the set of nodes streamable in one pass.

    A node is admissible when it is still unassigned, all of its inputs
    are already in this pass (streaming cannot read earlier passes'
    results mid-scan), and the accumulated footprint estimate stays
    within budget.  Nodes are considered in topological order.
    """
    specs = build_node_specs(graph, sort_key)
    chosen: list[str] = []
    chosen_set: set[str] = set()
    total = 0
    for node in graph.nodes:
        if node.name not in unassigned:
            continue
        if not isinstance(node, BasicNode) and any(
            arc.src.name not in chosen_set for arc in node.in_arcs
        ):
            continue
        cost = estimate_node_entries(node, specs[node.name], dataset_size)
        if budget is not None and total + cost > budget and chosen:
            continue  # skip nodes that do not fit; keep scanning
        chosen.append(node.name)
        chosen_set.add(node.name)
        total += cost
    return chosen, total


def plan_passes(
    graph: CompiledGraph,
    memory_budget_entries: int | None = None,
    dataset_size: int | None = None,
    max_passes: int = 8,
) -> MultiPassPlan:
    """Assign every node to a Sort/Scan pass or to deferred evaluation.

    Args:
        graph: The compiled evaluation graph.
        memory_budget_entries: Per-pass resident-entry budget; ``None``
            plans a single pass with the best key.
        dataset_size: Optional row count for tighter estimates.
        max_passes: Hard limit; exceeded plans raise
            :class:`~repro.errors.PlanError`.
    """
    basics = {
        node.name for node in graph.nodes if isinstance(node, BasicNode)
    }
    unassigned = {node.name for node in graph.nodes}
    plan = MultiPassPlan()

    while unassigned & basics:
        if len(plan.passes) >= max_passes:
            raise PlanError(
                f"could not plan within {max_passes} passes; "
                f"{len(unassigned & basics)} basic measures unassigned "
                f"(budget {memory_budget_entries} entries)"
            )
        best: tuple[list[str], int, SortKey] | None = None
        best_score: tuple[int, int, int] | None = None
        for key in candidate_sort_keys(graph):
            chosen, total = _streamable_under_key(
                graph, key, unassigned, memory_budget_entries, dataset_size
            )
            covered_basics = sum(1 for name in chosen if name in basics)
            if covered_basics == 0:
                continue
            score = (len(chosen), covered_basics, -total)
            if best_score is None or score > best_score:
                best, best_score = (chosen, total, key), score
        if best is None:
            # Not even one basic measure fits the budget: force the
            # first unassigned basic through so progress is guaranteed
            # (the run will report its true footprint).
            name = min(unassigned & basics)
            key = next(candidate_sort_keys(graph))
            plan.passes.append(PassPlan(key, [name], 0))
            unassigned.discard(name)
            continue
        chosen, total, key = best
        plan.passes.append(PassPlan(key, chosen, total))
        unassigned -= set(chosen)

    plan.deferred = [
        node.name for node in graph.nodes if node.name in unassigned
    ]
    return plan
