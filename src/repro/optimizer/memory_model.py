"""Memory-footprint estimation for streaming plans.

The estimate answers: *how many hash-table entries does node N keep
resident under sort key K?*  It is driven by the very watermark specs
the engine executes (:mod:`repro.engine.watermark`), so plan-time
estimates and run-time behaviour share one source of truth:

- a dimension covered by a spec part *at the node's own level*
  contributes ~1 resident group (entries flush as soon as the scan
  passes them), plus the window slack for shifted dimensions;
- a dimension covered only at a *coarser* level contributes the fan-out
  between the node's level and the covering level (e.g. keeping days
  resident within the current month contributes up to ``card(Day,
  Month)`` — the paper's 31-day example in Section 5.3.1);
- a dimension not covered at all (the spec truncated before reaching
  it, or the sort key never mentions it) contributes its full estimated
  cardinality at the node's level.

Like the paper's ``card()``, this is an estimate: "the precision of
this function will only affect the size estimation, and will not impact
the correctness of the evaluation algorithm."
"""

from __future__ import annotations


from repro.cube.order import SortKey
from repro.engine.compile import CompiledGraph, Node
from repro.engine.watermark import PredSpec, build_node_specs

#: Cap per-dimension contributions so products stay meaningful.
_MAX_DIM_CONTRIBUTION = 10**9


def _spec_coverage(spec: PredSpec) -> dict[int, int]:
    """Map dim -> covering level for one spec's parts."""
    return {dim: level for dim, level, __, ___ in spec.parts}


def estimate_node_entries(
    node: Node,
    specs: list[PredSpec],
    dataset_size: int | None = None,
) -> int:
    """Estimated resident entries of ``node`` given its specs.

    With several specs (several input streams), an entry stays resident
    until *all* predicates pass, so per dimension we take the worst
    (largest) contribution across specs.

    Args:
        dataset_size: Optional row count used to cap the estimate (a
            node can never hold more groups than input rows).
    """
    schema = node.schema
    levels = node.granularity.levels
    contribution: dict[int, int] = {}
    for dim, level in enumerate(levels):
        hierarchy = schema.dimensions[dim].hierarchy
        if level == hierarchy.all_level:
            continue
        worst = 1
        for spec in specs:
            coverage = _spec_coverage(spec)
            if dim not in coverage:
                value = min(
                    hierarchy.level_cardinality(level),
                    _MAX_DIM_CONTRIBUTION,
                )
            else:
                cover_level = coverage[dim]
                if cover_level <= level:
                    value = 1
                else:
                    value = min(
                        hierarchy.fanout(level, cover_level),
                        _MAX_DIM_CONTRIBUTION,
                    )
                shift = spec.shifts.get(dim)
                if shift is not None:
                    value = max(1, value + shift[1])
            worst = max(worst, value)
        contribution[dim] = worst
    if not specs:
        # No inputs resolved (shouldn't happen in practice): assume the
        # node keeps every group.
        contribution = {
            dim: min(
                schema.dimensions[dim].hierarchy.level_cardinality(level),
                _MAX_DIM_CONTRIBUTION,
            )
            for dim, level in enumerate(levels)
            if level != schema.dimensions[dim].all_level
        }
    estimate = 1
    for value in contribution.values():
        estimate = min(estimate * value, _MAX_DIM_CONTRIBUTION)
    if dataset_size is not None:
        estimate = min(estimate, dataset_size)
    return estimate


def estimate_graph_entries(
    graph: CompiledGraph,
    sort_key: SortKey,
    dataset_size: int | None = None,
) -> int:
    """Total estimated resident entries for the whole plan under a key."""
    specs = build_node_specs(graph, sort_key)
    return sum(
        estimate_node_entries(node, specs[node.name], dataset_size)
        for node in graph.nodes
    )
