"""Brute-force sort-order search (Section 7: "we used brute force to
search all possible sort orders and identify the one with the smallest
(estimated) minimal memory foot print").

Candidates are permutations of the dimensions the query actually
references, each at the finest level any node uses for it — a finer
sort level never hurts finalization, so coarser variants are dominated
and need not be enumerated.  With the paper's four dimensions this is
at most 24 candidates; a cap keeps pathological schemas bounded.
"""

from __future__ import annotations

from itertools import islice, permutations
from collections.abc import Iterator

from repro.cube.order import SortKey
from repro.engine.compile import CompiledGraph
from repro.optimizer.memory_model import estimate_graph_entries

#: Safety cap on enumerated permutations (8 dims = 40320 > cap).
MAX_CANDIDATES = 5040


def _referenced_dims(graph: CompiledGraph) -> list[tuple[int, int]]:
    """(dim, finest used level) for every non-ALL dimension."""
    schema = graph.schema
    finest = [d.all_level for d in schema.dimensions]
    for node in graph.nodes:
        for dim, level in enumerate(node.granularity.levels):
            finest[dim] = min(finest[dim], level)
    return [
        (dim, level)
        for dim, level in enumerate(finest)
        if level != schema.dimensions[dim].all_level
    ]


def candidate_sort_keys(graph: CompiledGraph) -> Iterator[SortKey]:
    """All candidate sort keys for a graph (dimension permutations)."""
    parts = _referenced_dims(graph)
    if not parts:
        yield SortKey(graph.schema, [(0, 0)])
        return
    for perm in islice(permutations(parts), MAX_CANDIDATES):
        yield SortKey(graph.schema, list(perm))


def best_sort_key(
    graph: CompiledGraph, dataset_size: int | None = None
) -> SortKey:
    """The candidate with the smallest estimated memory footprint.

    Ties break toward the first candidate in permutation order, which
    keeps plans deterministic.
    """
    best: SortKey | None = None
    best_cost: int | None = None
    for key in candidate_sort_keys(graph):
        cost = estimate_graph_entries(graph, key, dataset_size)
        if best_cost is None or cost < best_cost:
            best, best_cost = key, cost
    assert best is not None  # candidate_sort_keys always yields
    return best
