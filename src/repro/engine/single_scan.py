"""The single-scan algorithm (Section 5.1, following Johnson &
Chatziantoniou [19]).

One unsorted pass over the raw dataset maintains a hash table per basic
measure simultaneously; afterwards, composite measures are evaluated in
topological order from the completed tables.  No sort is paid — which
makes this the fastest engine when everything fits in memory (Figure
7(a)) — but *nothing* can be flushed early, so memory grows with the
number of distinct regions and the engine fails on large datasets
(Figure 6(a), where the paper only shows the 2M point).
"""

from __future__ import annotations

import time

from repro.errors import MemoryBudgetExceeded
from repro.engine.batch import BasicBatchUpdater
from repro.engine.compile import BasicNode, CombineNode, CompiledGraph
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.semantics import (
    eval_combine,
    eval_composite,
    finalize_basic,
    update_basic_tables,
)
from repro.storage.columnar import resolve_batch_size
from repro.storage.sink import Sink
from repro.storage.table import Dataset


class SingleScanEngine(Engine):
    """One unsorted scan; all hash tables resident until the end.

    Args:
        memory_budget_entries: Optional cap on the total number of
            resident hash-table entries; exceeding it raises
            :class:`~repro.errors.MemoryBudgetExceeded`, modelling the
            paper's observation that the single-scan algorithm "slows
            down significantly due to insufficient memory".  The check
            runs during the scan (basic tables) and after each
            composite materialization.
        batch_size: Rows per columnar batch for the scan.  ``None``
            (default) auto-selects — the columnar default when numpy is
            available, scalar otherwise; ``0`` forces the row-at-a-time
            scalar path.  Both paths produce bit-identical tables (see
            :mod:`repro.engine.batch`).
    """

    name = "single-scan"

    #: How often (in records) the budget is checked during the scan.
    BUDGET_CHECK_INTERVAL = 4096

    def __init__(
        self,
        memory_budget_entries: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        self.memory_budget_entries = memory_budget_entries
        self.batch_size = batch_size

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        budget = self.memory_budget_entries
        batch_size = resolve_batch_size(self.batch_size)
        stats.batched = batch_size > 0
        stats.batch_size = batch_size
        basic_state = [
            (node, {}) for node in graph.nodes if isinstance(node, BasicNode)
        ]

        scan_started = time.perf_counter()
        rows = 0
        if batch_size > 0:
            updaters = [
                BasicBatchUpdater(node, table)
                for node, table in basic_state
            ]
            for batch in dataset.scan_batches(batch_size):
                for updater in updaters:
                    updater.apply(batch)
                rows += len(batch)
                if budget is not None:
                    resident = sum(len(t) for __, t in basic_state)
                    if resident > budget:
                        raise MemoryBudgetExceeded(
                            resident,
                            budget,
                            where="single-scan basic tables",
                        )
        else:
            for record in dataset.scan():
                update_basic_tables(record, basic_state)
                rows += 1
                if (
                    budget is not None
                    and rows % self.BUDGET_CHECK_INTERVAL == 0
                ):
                    resident = sum(len(t) for __, t in basic_state)
                    if resident > budget:
                        raise MemoryBudgetExceeded(
                            resident,
                            budget,
                            where="single-scan basic tables",
                        )
        stats.rows_scanned = rows
        stats.scans = 1
        if budget is not None:
            resident = sum(len(t) for __, t in basic_state)
            if resident > budget:
                raise MemoryBudgetExceeded(
                    resident, budget, where="single-scan basic tables"
                )

        tables: dict[str, dict] = {
            node.name: finalize_basic(node, raw)
            for node, raw in basic_state
        }
        del basic_state

        def resident_entries() -> int:
            return sum(len(table) for table in tables.values())

        for node in graph.nodes:
            if isinstance(node, BasicNode):
                continue
            inputs = {
                arc.src.name: tables[arc.src.name] for arc in node.in_arcs
            }
            if isinstance(node, CombineNode):
                tables[node.name] = eval_combine(node, inputs)
            else:
                tables[node.name] = eval_composite(node, inputs)
            if budget is not None and resident_entries() > budget:
                raise MemoryBudgetExceeded(
                    resident_entries(), budget, where=f"node {node.name}"
                )
        stats.scan_seconds = time.perf_counter() - scan_started
        stats.peak_entries = resident_entries()

        for name, (node, out_filter) in graph.outputs.items():
            for key, value in tables[node.name].items():
                if out_filter is None or out_filter(key, value):
                    sink.emit(name, key, value)
