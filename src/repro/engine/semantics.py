"""Reference node semantics over fully materialized tables.

These functions define what each evaluation-graph node *means*, given
complete input tables: they are direct transliterations of the SQL
equivalents in Tables 2-4 of the paper.  The relational baseline, the
single-scan engine, and the multi-pass engine's cross-pass combination
step all evaluate composites through this module, so the streaming
engine has a single, simple definition of correctness to match.
"""

from __future__ import annotations

from itertools import product

from repro.errors import EvaluationError
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.engine.compile import (
    Arc,
    BasicNode,
    CombineNode,
    CompositeNode,
    Node,
)
from repro.storage.table import Dataset


def filtered_items(arc: Arc, table: dict) -> list[tuple[tuple, object]]:
    """Entries of the arc's source table that pass the arc's σ."""
    if arc.filter is None:
        return list(table.items())
    entry_filter = arc.filter
    return [
        (key, value)
        for key, value in table.items()
        if entry_filter(key, value)
    ]


def eval_basic(node: BasicNode, dataset: Dataset) -> dict:
    """One full scan of the fact table for a single basic measure."""
    table: dict = {}
    agg = node.agg.function
    key_of = node.granularity.key_of_record
    record_filter = node.record_filter
    value_index = node.value_index
    for record in dataset.scan():
        if record_filter is not None and not record_filter(record):
            continue
        key = key_of(record)
        value = 1 if value_index is None else record[value_index]
        state = table.get(key)
        if state is None and key not in table:
            state = agg.create()
        table[key] = agg.update(state, value)
    return {key: agg.finalize(state) for key, state in table.items()}


def update_basic_tables(
    record: tuple,
    nodes_state: list[tuple[BasicNode, dict]],
) -> None:
    """Update *all* basic-measure hash tables with one record.

    This is the heart of the single-scan algorithm (Section 5.1): every
    basic measure is maintained simultaneously during one pass.
    """
    for node, table in nodes_state:
        if node.record_filter is not None and not node.record_filter(
            record
        ):
            continue
        key = node.granularity.key_of_record(record)
        value = 1 if node.value_index is None else record[node.value_index]
        agg = node.agg.function
        state = table.get(key)
        if state is None and key not in table:
            state = agg.create()
        table[key] = agg.update(state, value)


def finalize_basic(node: BasicNode, raw_table: dict) -> dict:
    """Finalize a basic node's accumulated states into values."""
    agg = node.agg.function
    return {key: agg.finalize(state) for key, state in raw_table.items()}


def eval_composite(node: CompositeNode, tables: dict[str, dict]) -> dict:
    """Evaluate a roll-up or match join from complete input tables."""
    values_arc = node.values_arc
    source_items = filtered_items(values_arc, tables[values_arc.src.name])
    source_gran = values_arc.src.granularity
    agg = node.agg.function

    if node.cond is None:
        # Pure roll-up: GROUP BY the generalized key (Table 2).
        grouped: dict = {}
        for key, value in source_items:
            out_key = node.granularity.generalize_key(key, source_gran)
            state = grouped.get(out_key)
            if state is None and out_key not in grouped:
                state = agg.create()
            grouped[out_key] = agg.update(state, value)
        return {key: agg.finalize(state) for key, state in grouped.items()}

    keys_arc = node.keys_arc
    if keys_arc is None:
        raise EvaluationError(
            f"match-join node {node.name!r} has no keys arc"
        )
    cell_keys = [
        key
        for key, __ in filtered_items(keys_arc, tables[keys_arc.src.name])
    ]

    cond = node.cond
    if isinstance(cond, SelfMatch):
        source = dict(source_items)
        result = {}
        for s_key in cell_keys:
            state = agg.create()
            if s_key in source:
                state = agg.update(state, source[s_key])
            result[s_key] = agg.finalize(state)
        return result

    if isinstance(cond, ParentChild):
        source = dict(source_items)
        result = {}
        for s_key in cell_keys:
            ancestor = cond.ancestor(s_key, node.granularity, source_gran)
            state = agg.create()
            if ancestor in source:
                state = agg.update(state, source[ancestor])
            result[s_key] = agg.finalize(state)
        return result

    if isinstance(cond, ChildParent):
        grouped: dict = {}
        for key, value in source_items:
            out_key = node.granularity.generalize_key(key, source_gran)
            grouped.setdefault(out_key, []).append(value)
        result = {}
        for s_key in cell_keys:
            state = agg.create()
            for value in grouped.get(s_key, ()):
                state = agg.update(state, value)
            result[s_key] = agg.finalize(state)
        return result

    if isinstance(cond, Sibling):
        source = dict(source_items)
        windows = cond.resolve(node.schema)
        result = {}
        for s_key in cell_keys:
            state = agg.create()
            for t_key in _neighbor_keys(s_key, windows):
                if t_key in source:
                    state = agg.update(state, source[t_key])
            result[s_key] = agg.finalize(state)
        return result

    if isinstance(cond, Lags):
        source = dict(source_items)
        offsets = cond.resolve(node.schema)
        result = {}
        for s_key in cell_keys:
            state = agg.create()
            for t_key in _lag_keys(s_key, offsets):
                if t_key in source:
                    state = agg.update(state, source[t_key])
            result[s_key] = agg.finalize(state)
        return result

    raise EvaluationError(f"unsupported match condition {cond!r}")


def _neighbor_keys(s_key: tuple, windows: dict):
    """Enumerate ``T.X ∈ [S.X - before, S.X + after]`` neighbours."""
    dim_ranges = []
    for i, component in enumerate(s_key):
        if i in windows:
            before, after = windows[i]
            lo = max(0, component - before)
            dim_ranges.append(range(lo, component + after + 1))
        else:
            dim_ranges.append((component,))
    return product(*dim_ranges)


def _lag_keys(s_key: tuple, offsets: dict):
    """Enumerate ``T.X = S.X + delta`` neighbours for lag sets."""
    dim_values = []
    for i, component in enumerate(s_key):
        if i in offsets:
            dim_values.append(
                sorted({component + delta for delta in offsets[i]})
            )
        else:
            dim_values.append((component,))
    return product(*dim_values)


def eval_combine(node: CombineNode, tables: dict[str, dict]) -> dict:
    """Evaluate a combine join (Table 4's chained left outer joins)."""
    slots: list[dict | None] = [None] * node.num_inputs
    for arc in node.in_arcs:
        filtered = dict(filtered_items(arc, tables[arc.src.name]))
        if slots[arc.index] is not None:
            raise EvaluationError(
                f"combine node {node.name!r} has duplicate slot "
                f"{arc.index}"
            )
        slots[arc.index] = filtered
    if any(slot is None for slot in slots):
        raise EvaluationError(
            f"combine node {node.name!r} is missing input slots"
        )
    base = slots[0]
    fn = node.fn
    result = {}
    for key, base_value in base.items():
        args = [base_value] + [slot.get(key) for slot in slots[1:]]
        result[key] = fn(*args)
    return result


def eval_node_from_tables(
    node: Node, tables: dict[str, dict], dataset: Dataset | None = None
) -> dict:
    """Dispatch helper: evaluate any node given its inputs."""
    if isinstance(node, BasicNode):
        if dataset is None:
            raise EvaluationError(
                f"basic node {node.name!r} needs the dataset"
            )
        return eval_basic(node, dataset)
    if isinstance(node, CompositeNode):
        return eval_composite(node, tables)
    if isinstance(node, CombineNode):
        return eval_combine(node, tables)
    raise EvaluationError(f"unknown node type {type(node).__name__}")
