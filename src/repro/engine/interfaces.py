"""Engine interfaces and evaluation statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.storage.sink import MemorySink, Sink
from repro.storage.table import Dataset, MeasureTable


@dataclass
class EvalStats:
    """Instrumentation collected by every engine.

    The benchmark harness prints these the way the paper's figures do:
    wall-clock execution time, a sort/scan cost breakdown (Figure 6(e)),
    and memory footprints in hash-table entries (the unit the paper's
    footprint estimates use).
    """

    engine: str = ""
    rows_scanned: int = 0
    scans: int = 0
    passes: int = 1
    sort_seconds: float = 0.0
    scan_seconds: float = 0.0
    total_seconds: float = 0.0
    peak_entries: int = 0
    flushed_entries: int = 0
    spooled_entries: int = 0
    notes: str = ""
    #: Per-worker sub-run statistics, retained by partitioned /
    #: distributed evaluation so the sort/scan breakdown of every
    #: partition stays inspectable after the merge.
    workers: list = field(default_factory=list)

    def merge(self, other: "EvalStats") -> None:
        """Accumulate a sub-run (multi-pass and partitioned engines).

        Totals add up; ``peak_entries`` takes the maximum — with
        shared-nothing partitions running in separate processes the
        per-process peak is the honest footprint figure (concurrent
        partitions each pay their own peak in their own address space).
        """
        self.rows_scanned += other.rows_scanned
        self.scans += other.scans
        self.sort_seconds += other.sort_seconds
        self.scan_seconds += other.scan_seconds
        self.total_seconds += other.total_seconds
        self.peak_entries = max(self.peak_entries, other.peak_entries)
        self.flushed_entries += other.flushed_entries
        self.spooled_entries += other.spooled_entries
        self.workers.extend(other.workers)


@dataclass
class EvalResult:
    """Measure tables plus the statistics of the run."""

    tables: dict[str, MeasureTable] = field(default_factory=dict)
    stats: EvalStats = field(default_factory=EvalStats)

    def __getitem__(self, name: str) -> MeasureTable:
        return self.tables[name]


class Engine:
    """Common engine front door.

    ``evaluate`` accepts either an
    :class:`~repro.workflow.AggregationWorkflow` or an already compiled
    :class:`~repro.engine.compile.CompiledGraph` and returns an
    :class:`EvalResult`.  Subclasses implement :meth:`_run`.
    """

    name = "engine"

    def evaluate(
        self,
        dataset: Dataset,
        query,
        sink: Optional[Sink] = None,
    ) -> EvalResult:
        from repro.engine.compile import CompiledGraph, compile_workflow

        if isinstance(query, CompiledGraph):
            graph = query
        else:
            graph = compile_workflow(query)
        if sink is None:
            sink = MemorySink()
        for name, (node, __) in graph.outputs.items():
            sink.open_measure(name, node.granularity)
        stats = EvalStats(engine=self.name)
        started = time.perf_counter()
        self._run(dataset, graph, sink, stats)
        stats.total_seconds = time.perf_counter() - started
        sink.close()
        tables = sink.result() or {}
        return EvalResult(tables=tables, stats=stats)

    def _run(self, dataset, graph, sink: Sink, stats: EvalStats) -> None:
        raise NotImplementedError


Query = Union["CompiledGraph", "AggregationWorkflow"]  # noqa: F821
