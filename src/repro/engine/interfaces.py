"""Engine interfaces and evaluation statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, TypeAlias

if TYPE_CHECKING:
    from repro.engine.compile import CompiledGraph
    from repro.workflow.workflow import AggregationWorkflow

from repro.obs import current_context, get_tracer, publish_eval_stats
from repro.storage.sink import MemorySink, Sink
from repro.storage.table import Dataset, MeasureTable


@dataclass
class EvalStats:
    """Instrumentation collected by every engine.

    The benchmark harness prints these the way the paper's figures do:
    wall-clock execution time, a sort/scan cost breakdown (Figure 6(e)),
    and memory footprints in hash-table entries (the unit the paper's
    footprint estimates use).  Finished stats are also published into
    the process-wide metrics registry (:mod:`repro.obs.metrics`) once
    per top-level run.
    """

    engine: str = ""
    rows_scanned: int = 0
    scans: int = 0
    passes: int = 1
    sort_seconds: float = 0.0
    scan_seconds: float = 0.0
    total_seconds: float = 0.0
    peak_entries: int = 0
    flushed_entries: int = 0
    spooled_entries: int = 0
    #: Whether the run used the columnar batched scan path, and the
    #: effective rows-per-batch (0 on the scalar path).
    batched: bool = False
    batch_size: int = 0
    notes: str = ""
    #: Per-worker sub-run statistics, retained by partitioned /
    #: distributed evaluation so the sort/scan breakdown of every
    #: partition stays inspectable after the merge.
    workers: list = field(default_factory=list)
    #: Per-node profile rows (plain dicts, see
    #: :class:`repro.obs.profile.NodeProfile`), filled when an engine
    #: runs with profiling enabled.
    nodes: list = field(default_factory=list)

    def merge(self, other: "EvalStats") -> None:
        """Accumulate a sub-run (multi-pass and partitioned engines).

        Totals — including ``passes`` — add up; ``peak_entries`` takes
        the maximum: with shared-nothing partitions running in separate
        processes the per-process peak is the honest footprint figure
        (concurrent partitions each pay their own peak in their own
        address space).  The sub-run's ``engine`` and ``notes`` are
        preserved: the engine name is adopted when this side has none,
        and novel notes are appended rather than dropped.
        """
        self.rows_scanned += other.rows_scanned
        self.scans += other.scans
        self.passes += other.passes
        self.sort_seconds += other.sort_seconds
        self.scan_seconds += other.scan_seconds
        self.total_seconds += other.total_seconds
        self.peak_entries = max(self.peak_entries, other.peak_entries)
        self.flushed_entries += other.flushed_entries
        self.spooled_entries += other.spooled_entries
        # A run counts as batched when any sub-run was; the batch size
        # reported is the largest any sub-run used.
        self.batched = self.batched or other.batched
        self.batch_size = max(self.batch_size, other.batch_size)
        if not self.engine:
            self.engine = other.engine
        if other.notes and other.notes not in self.notes:
            self.notes = (
                f"{self.notes}; {other.notes}"
                if self.notes
                else other.notes
            )
        self.workers.extend(other.workers)
        self.nodes.extend(other.nodes)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict (the cross-process / benchmark format)."""
        return {
            "engine": self.engine,
            "rows_scanned": self.rows_scanned,
            "scans": self.scans,
            "passes": self.passes,
            "sort_seconds": self.sort_seconds,
            "scan_seconds": self.scan_seconds,
            "total_seconds": self.total_seconds,
            "peak_entries": self.peak_entries,
            "flushed_entries": self.flushed_entries,
            "spooled_entries": self.spooled_entries,
            "batched": self.batched,
            "batch_size": self.batch_size,
            "notes": self.notes,
            "workers": [worker.to_dict() for worker in self.workers],
            "nodes": [dict(node) for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalStats":
        """Inverse of :meth:`to_dict` (workers round-trip recursively)."""
        return cls(
            engine=data.get("engine", ""),
            rows_scanned=data.get("rows_scanned", 0),
            scans=data.get("scans", 0),
            passes=data.get("passes", 1),
            sort_seconds=data.get("sort_seconds", 0.0),
            scan_seconds=data.get("scan_seconds", 0.0),
            total_seconds=data.get("total_seconds", 0.0),
            peak_entries=data.get("peak_entries", 0),
            flushed_entries=data.get("flushed_entries", 0),
            spooled_entries=data.get("spooled_entries", 0),
            batched=data.get("batched", False),
            batch_size=data.get("batch_size", 0),
            notes=data.get("notes", ""),
            workers=[
                cls.from_dict(worker)
                for worker in data.get("workers", [])
            ],
            nodes=[dict(node) for node in data.get("nodes", [])],
        )


@dataclass
class EvalResult:
    """Measure tables plus the statistics of the run."""

    tables: dict[str, MeasureTable] = field(default_factory=dict)
    stats: EvalStats = field(default_factory=EvalStats)

    def __getitem__(self, name: str) -> MeasureTable:
        return self.tables[name]


class Engine:
    """Common engine front door.

    ``evaluate`` accepts either an
    :class:`~repro.workflow.AggregationWorkflow` or an already compiled
    :class:`~repro.engine.compile.CompiledGraph` and returns an
    :class:`EvalResult`.  Subclasses implement :meth:`_run`.
    """

    name = "engine"

    def evaluate(
        self,
        dataset: Dataset,
        query,
        sink: Sink | None = None,
        publish_metrics: bool = True,
    ) -> EvalResult:
        """Evaluate ``query`` over ``dataset``, flushing into ``sink``.

        Args:
            dataset: The fact records.
            query: A workflow or compiled graph.
            sink: Destination for finalized entries (memory by default).
            publish_metrics: Record the finished stats in the global
                metrics registry.  Engines that drive *sub*-runs
                (multi-pass passes, per-partition scans) pass False so
                a run is counted exactly once — by the run the caller
                asked for.
        """
        from repro.engine.compile import CompiledGraph, compile_workflow

        tracer = get_tracer()
        with tracer.span(f"evaluate:{self.name}", cat="engine") as span:
            if isinstance(query, CompiledGraph):
                graph = query
            else:
                with tracer.span("compile", cat="engine"):
                    graph = compile_workflow(query)
            if sink is None:
                sink = MemorySink()
            for name, (node, __) in graph.outputs.items():
                sink.open_measure(name, node.granularity)
            stats = EvalStats(engine=self.name)
            started = time.perf_counter()
            self._run(dataset, graph, sink, stats)
            stats.total_seconds = time.perf_counter() - started
            span.set(
                rows=stats.rows_scanned, peak_entries=stats.peak_entries
            )
        sink.close()
        tables = sink.result() or {}
        if publish_metrics and not getattr(
            stats, "published_by_workers", False
        ):
            publish_eval_stats(stats)
            ctx = current_context()
            if ctx is not None:
                # A request is in flight: attach this run's stats so
                # the slow-query log can ship the plan profile of the
                # exact evaluation that made the request slow.
                run = {
                    "engine": stats.engine,
                    "rows_scanned": stats.rows_scanned,
                    "passes": stats.passes,
                    "sort_seconds": round(stats.sort_seconds, 6),
                    "scan_seconds": round(stats.scan_seconds, 6),
                    "total_seconds": round(stats.total_seconds, 6),
                    "peak_entries": stats.peak_entries,
                }
                if stats.nodes:
                    run["nodes"] = [dict(node) for node in stats.nodes]
                ctx.stats.engine_runs.append(run)
        return EvalResult(tables=tables, stats=stats)

    def _run(self, dataset, graph, sink: Sink, stats: EvalStats) -> None:
        raise NotImplementedError


Query: TypeAlias = "CompiledGraph | AggregationWorkflow"
