"""Evaluation engines (Section 5).

Three interchangeable engines evaluate a compiled workflow:

- :class:`~repro.engine.naive.RelationalEngine` — the baseline: executes
  the Table 2-4 SQL equivalents measure by measure, re-scanning the fact
  table per basic measure and spooling every intermediate (this is the
  "DB" series of the paper's figures);
- :class:`~repro.engine.single_scan.SingleScanEngine` — Section 5.1: one
  unsorted scan feeding all basic-measure hash tables, composites
  evaluated afterwards in topological order (unbounded memory);
- :class:`~repro.engine.sort_scan.SortScanEngine` — Section 5.3: the
  one-pass sort/scan algorithm with watermark-driven early flushing;
- :class:`~repro.engine.multi_pass.MultiPassEngine` — Section 5.3
  (multi-pass): several sort/scan iterations under a memory budget.

All engines consume the same :class:`~repro.engine.compile.CompiledGraph`
and produce identical measure tables, which the test suite verifies.
"""

from repro.engine.interfaces import Engine, EvalResult, EvalStats
from repro.engine.compile import (
    BasicNode,
    CombineNode,
    CompiledGraph,
    CompositeNode,
    Node,
    compile_measures,
    compile_workflow,
)
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.engine.multi_pass import MultiPassEngine
from repro.engine.partitioned import (
    PartitionedEngine,
    default_partition_count,
)
from repro.engine.plan import StreamingPlan, build_streaming_plan

__all__ = [
    "Engine",
    "EvalResult",
    "EvalStats",
    "CompiledGraph",
    "Node",
    "BasicNode",
    "CompositeNode",
    "CombineNode",
    "compile_measures",
    "compile_workflow",
    "RelationalEngine",
    "SingleScanEngine",
    "SortScanEngine",
    "MultiPassEngine",
    "PartitionedEngine",
    "default_partition_count",
    "StreamingPlan",
    "build_streaming_plan",
]
