"""Streaming aggregation plans (Section 5.2).

A :class:`StreamingPlan` is the declarative companion of the sort/scan
engine's runtime machinery: for a given sort key it records, per
measure node, the **order** and **slack** of its finalized-entry stream
(computed with the Table 6 algorithm over the evaluation graph's arcs)
and the estimated resident footprint.  The engine itself runs off the
compiled watermark specs — this module exists so plans can be
*inspected*, costed, and compared before anything executes, which is
what Section 6's optimizer loop and the paper's "the total memory
footprint can be estimated before a plan is executed" claim are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.conditions import (
    ChildParent,
    Lags,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.cube.order import SortKey
from repro.cube.slack import Slack, StreamInfo, compute_order_slack
from repro.engine.compile import Arc, BasicNode, CompiledGraph
from repro.engine.watermark import build_node_specs
from repro.optimizer.memory_model import estimate_node_entries


@dataclass
class NodePlan:
    """Per-node plan facts: stream order, slack, footprint estimate."""

    name: str
    order_levels: tuple[int, ...]
    slack: Slack
    estimated_entries: int

    def describe(self, schema, scan_key: SortKey) -> str:
        parts = []
        for position, (dim, __) in enumerate(scan_key.parts):
            level = self.order_levels[position]
            hierarchy = schema.dimensions[dim].hierarchy
            if level == hierarchy.all_level:
                break
            parts.append(
                f"{schema.dimensions[dim].abbrev}:"
                f"{hierarchy.domain(level).name}"
            )
        order = "<" + ", ".join(parts) + ">"
        return (
            f"{self.name}: order={order} slack={self.slack} "
            f"~{self.estimated_entries} resident entries"
        )


@dataclass
class StreamingPlan:
    """A complete single-pass plan for one sort key."""

    sort_key: SortKey
    nodes: dict[str, NodePlan] = field(default_factory=dict)

    @property
    def total_estimated_entries(self) -> int:
        return sum(plan.estimated_entries for plan in self.nodes.values())

    def explain(self, graph: CompiledGraph) -> str:
        """Readable plan listing, one node per line."""
        lines = [
            f"sort key: {self.sort_key!r}",
            f"estimated resident entries: "
            f"{self.total_estimated_entries}",
        ]
        for node in graph.nodes:
            plan = self.nodes[node.name]
            lines.append(
                "  " + plan.describe(graph.schema, self.sort_key)
            )
        return "\n".join(lines)


def _transform_stream(
    info: StreamInfo, arc: Arc, scan_key: SortKey
) -> StreamInfo:
    """Order/slack transform of one arc (Section 5.3.2's second
    sub-problem: from finalized entries to the downstream update
    stream)."""
    schema = arc.dst.schema
    if arc.role in ("keys", "combine"):
        return info
    cond = arc.cond
    if cond is None or isinstance(cond, ChildParent):
        # Roll-up: handled by compute_order_slack's coarsening when the
        # downstream region set is coarser; pass through here.
        return info
    if isinstance(cond, SelfMatch):
        return info
    if isinstance(cond, ParentChild):
        # The coarse value arrives only when its whole extent has been
        # scanned: the stream lags by the child/parent fan-out on the
        # first attribute where the source is coarser than the scan.
        slack = info.slack
        for position, (dim, scan_level) in enumerate(scan_key.parts):
            src_level = arc.src.granularity.levels[dim]
            hierarchy = schema.dimensions[dim].hierarchy
            if src_level > scan_level:
                if src_level == hierarchy.all_level:
                    break
                fanout = max(1, hierarchy.fanout(scan_level, src_level))
                slack = slack.shifted(position, -fanout, 0)
                break
        return StreamInfo(info.order_levels, slack)
    if isinstance(cond, Sibling):
        slack = info.slack
        windows = cond.resolve(schema)
        for position, (dim, __) in enumerate(scan_key.parts):
            if dim in windows:
                before, after = windows[dim]
                # The update stream runs ahead by `before` (a T entry
                # updates S cells up to T+before) and lags by `after`.
                slack = slack.shifted(position, -max(0, after),
                                      max(0, before))
        return StreamInfo(info.order_levels, slack)
    if isinstance(cond, Lags):
        slack = info.slack
        offsets = cond.resolve(schema)
        for position, (dim, __) in enumerate(scan_key.parts):
            if dim in offsets:
                deltas = offsets[dim]
                slack = slack.shifted(
                    position, -max(0, max(deltas)), max(0, -min(deltas))
                )
        return StreamInfo(info.order_levels, slack)
    raise AssertionError(f"unreachable condition {cond!r}")


def build_streaming_plan(
    graph: CompiledGraph,
    sort_key: SortKey,
    dataset_size: int | None = None,
) -> StreamingPlan:
    """Compute order, slack, and footprint for every node of a graph.

    Orders and slacks follow Table 6: a node's output stream info is
    ``compute_order_slack`` over its (transformed) input streams; the
    raw scan is a zero-slack stream ordered by the sort key itself.
    """
    schema = graph.schema
    width = len(sort_key.parts)
    scan_info = StreamInfo(
        tuple(level for __, level in sort_key.parts), Slack.zero(width)
    )
    specs = build_node_specs(graph, sort_key)
    plan = StreamingPlan(sort_key=sort_key)
    node_info: dict[str, StreamInfo] = {}

    for node in graph.nodes:
        if isinstance(node, BasicNode):
            inputs = [scan_info]
        else:
            inputs = [
                _transform_stream(
                    node_info[arc.src.name], arc, sort_key
                )
                for arc in node.in_arcs
            ]
        info = compute_order_slack(
            schema, sort_key, node.granularity.levels, inputs
        )
        node_info[node.name] = info
        plan.nodes[node.name] = NodePlan(
            name=node.name,
            order_levels=info.order_levels,
            slack=info.slack,
            estimated_entries=estimate_node_entries(
                node, specs[node.name], dataset_size
            ),
        )
    return plan
