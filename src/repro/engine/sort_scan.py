"""The one-pass Sort/Scan engine (Section 5.3, Tables 7 and 8).

The dataset is sorted by a chosen sort key and scanned once.  Every
record updates the basic-measure hash tables; whenever the scan position
advances, a *flush cascade* runs through the evaluation graph in
topological order: each node's finalized entries (per the watermark
predicates of :mod:`repro.engine.watermark`) are finalized, emitted,
propagated along their computational arcs, and evicted.  This is what
keeps the memory footprint bounded by the plan's slack instead of the
dataset's size.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time

from repro.errors import EvaluationError, MemoryBudgetExceeded
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.cube.order import SortKey
from repro.engine.batch import BasicBatchUpdater
from repro.engine.compile import (
    Arc,
    BasicNode,
    CombineNode,
    CompiledGraph,
    CompositeNode,
    Node,
)
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.watermark import NodeChecker, build_node_specs
from repro.obs import get_tracer
from repro.obs.profile import NodeProfile
from repro.storage.columnar import (
    RecordBatch,
    batches_from_records,
    map_column,
    np,
    resolve_batch_size,
)
from repro.storage.external_sort import DEFAULT_RUN_SIZE, external_sort
from repro.storage.flatfile import FlatFileDataset, write_flatfile
from repro.storage.sink import Sink
from repro.storage.table import Dataset, InMemoryDataset
from repro.testkit.failpoints import fire, register

_MISSING = object()

FP_CASCADE = register(
    "sortscan.cascade", "engine",
    "at the start of every flush cascade of the one-pass scan",
)
FP_FINAL_FLUSH = register(
    "sortscan.final-flush", "engine",
    "at the final (end-of-scan) flush cascade",
)


def default_sort_key(graph: CompiledGraph) -> SortKey:
    """Heuristic sort key: every referenced dimension at the finest
    level any node uses, in schema order.

    The optimizer (:mod:`repro.optimizer`) searches for better keys;
    this default guarantees a *correct* streaming plan for any graph.
    """
    schema = graph.schema
    finest = [d.all_level for d in schema.dimensions]
    for node in graph.nodes:
        for dim, level in enumerate(node.granularity.levels):
            finest[dim] = min(finest[dim], level)
    parts = [
        (dim, level)
        for dim, level in enumerate(finest)
        if level != schema.dimensions[dim].all_level
    ]
    if not parts:
        # Every measure is global; any order works.
        parts = [(0, 0)]
    return SortKey(schema, parts)


class _RuntimeNode:
    """Per-node runtime state for one sort/scan pass."""

    __slots__ = (
        "node",
        "kind",
        "table",
        "parents",
        "checker",
        "outputs",
        "flushed_keys",
        "src_levels",
        "touched",
        "prof",
    )

    def __init__(self, node: Node, checker: NodeChecker, outputs) -> None:
        self.node = node
        self.table: dict = {}
        self.parents: dict | None = None
        self.checker = checker
        self.outputs = outputs  # list of (name, out_filter)
        self.flushed_keys: set | None = None
        self.src_levels: tuple | None = None
        #: Set when upstream delivered entries since the last flush scan.
        self.touched = False
        #: Per-node profile counters (``profile=True`` runs only).
        self.prof: NodeProfile | None = None
        if isinstance(node, BasicNode):
            self.kind = "basic"
        elif isinstance(node, CombineNode):
            self.kind = "combine"
        elif isinstance(node, CompositeNode):
            if node.cond is None:
                self.kind = "rollup"
            elif isinstance(node.cond, ParentChild):
                self.kind = "pc-match"
                self.parents = {}
                self.src_levels = node.values_arc.src.granularity.levels
            else:
                self.kind = "match"
        else:  # pragma: no cover - compile produces only these kinds
            raise EvaluationError(f"unknown node type {node!r}")

    def entries(self) -> int:
        total = len(self.table)
        if self.parents is not None:
            total += len(self.parents)
        return total


class SortScanEngine(Engine):
    """One-pass sort/scan with watermark-driven early flushing.

    Args:
        sort_key: The pass's sort key; when omitted, a safe default is
            derived from the graph (see :func:`default_sort_key`), or —
            if ``optimize`` is True — the brute-force optimizer picks
            the estimated-minimal-footprint key (Section 6).
        optimize: Search sort orders with the optimizer when no key is
            given.
        run_size: In-memory run size for the external sort; datasets at
            most this large sort fully in memory.
        memory_budget_entries: Optional hard cap on resident entries
            (hash tables plus parent side tables), checked at every
            cascade; exceeding raises
            :class:`~repro.errors.MemoryBudgetExceeded`.
        cascade_prefix: How many leading sort-key components trigger a
            flush cascade when they change.  Watermark bounds are
            consistent functions of the scan position, so flushing at a
            *subset* of position changes is always correct — it merely
            lets a little more state accumulate between cascades in
            exchange for far less per-record bookkeeping.  ``1`` (the
            default) cascades when the most significant component
            advances; raise it to flush more eagerly.
        max_records_between_cascades: Safety valve forcing a cascade
            after this many records even if the trigger prefix never
            changes (bounds memory under extreme key skew).
        assert_no_late_updates: Testing hook — track every flushed key
            and raise if any update arrives for a finalized entry.
            This turns the watermark-safety theorem into a runtime
            assertion (used by the property-based tests).
        profile: Collect one :class:`~repro.obs.profile.NodeProfile`
            row per graph node (rows in/out, flush counts and seconds,
            per-node peaks, watermark advances) into ``stats.nodes``.
            Off by default; adds one branch per delivery when on.
        batch_size: Rows per columnar batch for the sorted scan.
            ``None`` (default) auto-selects — the columnar default when
            numpy is available, scalar otherwise; ``0`` forces the
            row-at-a-time scalar path.  The batched scan sorts with a
            stable ``numpy.lexsort`` (the same permutation as the
            scalar stable sort), detects trigger-prefix changes with a
            vectorized key-change scan, slices the batch per region,
            and cascades on region boundaries; results are
            bit-identical to the scalar path (see
            :mod:`repro.engine.batch`).
    """

    name = "sort-scan"

    def __init__(
        self,
        sort_key: SortKey | None = None,
        optimize: bool = False,
        run_size: int = DEFAULT_RUN_SIZE,
        memory_budget_entries: int | None = None,
        assert_no_late_updates: bool = False,
        cascade_prefix: int = 1,
        max_records_between_cascades: int = 4096,
        profile: bool = False,
        batch_size: int | None = None,
    ) -> None:
        self.sort_key = sort_key
        self.optimize = optimize
        self.run_size = run_size
        self.memory_budget_entries = memory_budget_entries
        self.assert_no_late_updates = assert_no_late_updates
        self.cascade_prefix = max(1, cascade_prefix)
        self.max_records_between_cascades = max_records_between_cascades
        self.profile = profile
        self.batch_size = batch_size
        self._cascade_count = 0

    # -- top level ---------------------------------------------------------

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        tracer = get_tracer()
        with tracer.span("plan", cat="engine") as plan_span:
            sort_key = self.sort_key
            if sort_key is None:
                if self.optimize:
                    from repro.optimizer.brute_force import best_sort_key

                    sort_key = best_sort_key(graph)
                else:
                    sort_key = default_sort_key(graph)
            stats.notes = f"sort_key={sort_key!r}"
            plan_span.set(sort_key=repr(sort_key), nodes=len(graph.nodes))

            specs = build_node_specs(graph, sort_key)
            runtime: dict[str, _RuntimeNode] = {}
            for node in graph.nodes:
                checker = NodeChecker(node, specs[node.name])
                outputs = [
                    (name, graph.outputs[name][1])
                    for name in graph.output_names_of(node)
                ]
                rt = _RuntimeNode(node, checker, outputs)
                if self.assert_no_late_updates:
                    rt.flushed_keys = set()
                if self.profile:
                    rt.prof = NodeProfile(name=node.name, kind=rt.kind)
                runtime[node.name] = rt
        topo_runtime = [runtime[node.name] for node in graph.nodes]
        if sink.wants_states:
            # Partial-state capture (the measure service's ingestion
            # hook): announce every basic node so the sink can set up
            # one state table per fact-facing measure.
            for node in graph.basic_nodes:
                sink.open_states(node.name, node.granularity)
        # Precompiled per-basic-node update plan: (filter, key_fn,
        # value_index, aggregate, table, runtime) — the innermost loop.
        basic_plan = [
            (
                rt.node.record_filter,
                rt.node.granularity.record_key_fn(),
                rt.node.value_index,
                rt.node.agg.function,
                rt.table,
                rt,
            )
            for rt in topo_runtime
            if isinstance(rt.node, BasicNode)
        ]

        # ---- sort phase ---------------------------------------------------
        batch_size = resolve_batch_size(self.batch_size)
        stats.batched = batch_size > 0
        stats.batch_size = batch_size
        mapper = sort_key.record_mapper()
        sort_started = time.perf_counter()
        with tracer.span("sort", cat="engine"):
            if batch_size > 0:
                batches, cleanup = self._sorted_batches(
                    dataset, sort_key, mapper, batch_size
                )
            else:
                records, cleanup = self._sorted_records(
                    dataset, mapper, stats
                )
        stats.sort_seconds = time.perf_counter() - sort_started

        # ---- scan phase ---------------------------------------------------
        scan_started = time.perf_counter()
        scan_span = tracer.span("scan", cat="engine")
        scan_span.__enter__()
        prefix = self.cascade_prefix
        force_every = self.max_records_between_cascades
        profiling = self.profile
        try:
            if batch_size > 0:
                rows = self._scan_batches(
                    batches, sort_key, mapper, topo_runtime, runtime,
                    sink, stats,
                )
            else:
                prev_trigger: tuple | None = None
                since_cascade = 0
                rows = 0
                for record in records:
                    pos = mapper(record)
                    trigger = pos[:prefix]
                    since_cascade += 1
                    if (
                        trigger != prev_trigger
                        or since_cascade >= force_every
                    ):
                        if prev_trigger is not None:
                            self._cascade(
                                topo_runtime, runtime, pos, sink, stats,
                                final=False,
                            )
                        prev_trigger = trigger
                        since_cascade = 0
                    for rec_filter, key_fn, value_index, agg, table, rt in (
                        basic_plan
                    ):
                        if rec_filter is not None and not rec_filter(
                            record
                        ):
                            continue
                        key = key_fn(record)
                        value = (
                            1
                            if value_index is None
                            else record[value_index]
                        )
                        state = table.get(key, _MISSING)
                        if state is _MISSING:
                            if (
                                rt.flushed_keys is not None
                                and key in rt.flushed_keys
                            ):
                                raise EvaluationError(
                                    f"late update: record for finalized "
                                    f"key {key} of basic node "
                                    f"{rt.node.name!r}"
                                )
                            state = agg.create()
                        table[key] = agg.update(state, value)
                        if profiling:
                            rt.prof.rows_in += 1
                    rows += 1
            stats.rows_scanned = rows
            stats.scans = 1
            self._cascade(
                topo_runtime, runtime, None, sink, stats, final=True
            )
        finally:
            cleanup()
            scan_span.set(rows=stats.rows_scanned)
            scan_span.__exit__(None, None, None)
        stats.scan_seconds = time.perf_counter() - scan_started
        if profiling:
            stats.nodes.extend(
                rt.prof.to_dict() for rt in topo_runtime
            )

    def _scan_batches(
        self,
        batches,
        sort_key: SortKey,
        mapper,
        topo_runtime: list[_RuntimeNode],
        runtime: dict[str, _RuntimeNode],
        sink: Sink,
        stats: EvalStats,
    ) -> int:
        """The batched sorted scan: vectorized trigger detection,
        per-region batch slicing, cascades on region boundaries.

        The cascade *positions* are the same trigger-prefix boundaries
        the scalar loop cascades on (watermark bounds are consistent
        functions of the scan position, so cascading at a subset of
        position changes is always correct); the
        ``max_records_between_cascades`` safety valve is honored by
        splitting long regions.
        """
        prefix = self.cascade_prefix
        force_every = self.max_records_between_cascades
        schema = sort_key.schema
        parts = sort_key.parts
        updaters = [
            BasicBatchUpdater(
                rt.node, rt.table, rt.flushed_keys, rt.prof
            )
            for rt in topo_runtime
            if rt.kind == "basic"
        ]
        prev_trigger: tuple | None = None
        since_cascade = 0
        rows = 0
        for batch in batches:
            n = len(batch)
            if n == 0:
                continue
            if not batch.vector:
                # Defensive fallback for rows that refused the columnar
                # layout: per-record processing, same cascade rule as
                # the scalar loop.
                for record in batch.python_rows():
                    pos = mapper(record)
                    trigger = pos[:prefix]
                    since_cascade += 1
                    if (
                        trigger != prev_trigger
                        or since_cascade >= force_every
                    ):
                        if prev_trigger is not None:
                            self._cascade(
                                topo_runtime, runtime, pos, sink, stats,
                                final=False,
                            )
                        prev_trigger = trigger
                        since_cascade = 0
                    for updater in updaters:
                        updater.apply_record(record)
                    rows += 1
                continue
            part_cols = [
                map_column(
                    schema.dimensions[dim].hierarchy,
                    0,
                    level,
                    batch.columns[dim],
                )
                for dim, level in parts
            ]
            trigger_cols = part_cols[:prefix]
            change = np.zeros(n, dtype=bool)
            change[0] = True
            for col in trigger_cols:
                change[1:] |= col[1:] != col[:-1]
            bounds = np.flatnonzero(change).tolist()
            bounds.append(n)
            for i in range(len(bounds) - 1):
                start, end = bounds[i], bounds[i + 1]
                trigger = tuple(
                    int(col[start]) for col in trigger_cols
                )
                at = start
                while at < end:
                    if (
                        trigger != prev_trigger
                        or since_cascade >= force_every
                    ):
                        if prev_trigger is not None:
                            pos = tuple(
                                int(col[at]) for col in part_cols
                            )
                            self._cascade(
                                topo_runtime, runtime, pos, sink, stats,
                                final=False,
                            )
                        prev_trigger = trigger
                        since_cascade = 0
                    take = min(end - at, force_every - since_cascade)
                    sub = batch.slice(at, at + take)
                    for updater in updaters:
                        updater.apply(sub)
                    since_cascade += take
                    at += take
            rows += n
        return rows

    def _sorted_batches(
        self,
        dataset: Dataset,
        sort_key: SortKey,
        mapper,
        batch_size: int,
    ):
        """Sort the dataset and return (batch iterable, cleanup).

        In-memory datasets sort column-wise with a stable
        ``numpy.lexsort`` over the generalized sort-key part columns —
        the identical permutation to the scalar path's stable
        ``sorted(records, key=mapper)``.  Oversized datasets reuse the
        external sort and re-read the spooled flat file in batches.
        """
        try:
            size = len(dataset)
        except (TypeError, NotImplementedError):
            size = None
        schema = dataset.schema
        if size is not None and size <= self.run_size:
            chunks = list(dataset.scan_batches(batch_size))
            if not chunks:
                return [], lambda: None
            if all(chunk.vector for chunk in chunks):
                width = len(chunks[0].columns)
                cols = [
                    np.concatenate(
                        [chunk.columns[i] for chunk in chunks]
                    )
                    if len(chunks) > 1
                    else chunks[0].columns[i]
                    for i in range(width)
                ]
                part_cols = [
                    map_column(
                        schema.dimensions[dim].hierarchy, 0, level,
                        cols[dim],
                    )
                    for dim, level in sort_key.parts
                ]
                order = np.lexsort(tuple(reversed(part_cols)))
                cols = [col[order] for col in cols]
                total = len(order)
                batches = [
                    RecordBatch(
                        schema,
                        [col[s : s + batch_size] for col in cols],
                        min(batch_size, total - s),
                    )
                    for s in range(0, total, batch_size)
                ]
                return batches, lambda: None
            records = sorted(
                (
                    record
                    for chunk in chunks
                    for record in chunk.python_rows()
                ),
                key=mapper,
            )
            return (
                batches_from_records(schema, records, batch_size),
                lambda: None,
            )
        fd, path = tempfile.mkstemp(
            prefix="awra-sorted-", suffix=".bin"
        )
        os.close(fd)
        write_flatfile(
            path,
            schema,
            external_sort(dataset.scan(), mapper, run_size=self.run_size),
        )
        sorted_dataset = FlatFileDataset(path, schema)

        def cleanup() -> None:
            with contextlib.suppress(OSError):
                os.remove(path)

        return sorted_dataset.scan_batches(batch_size), cleanup

    def _sorted_records(self, dataset: Dataset, mapper, stats: EvalStats):
        """Sort the dataset; returns (iterable, cleanup callable)."""
        try:
            size = len(dataset)
        except (TypeError, NotImplementedError):
            size = None
        if size is not None and size <= self.run_size:
            if isinstance(dataset, InMemoryDataset):
                return sorted(dataset.records, key=mapper), lambda: None
            return sorted(dataset.scan(), key=mapper), lambda: None
        # Two-phase external sort materialized to a temporary flat
        # file, so the sort phase's cost is attributable (Figure 6(e)).
        fd, path = tempfile.mkstemp(prefix="awra-sorted-", suffix=".bin")
        os.close(fd)
        write_flatfile(
            path,
            dataset.schema,
            external_sort(dataset.scan(), mapper, run_size=self.run_size),
        )
        sorted_dataset = FlatFileDataset(path, dataset.schema)

        def cleanup() -> None:
            with contextlib.suppress(OSError):
                os.remove(path)

        return sorted_dataset.scan(), cleanup

    # -- flush cascade ------------------------------------------------------

    def _cascade(
        self,
        topo_runtime: list[_RuntimeNode],
        runtime: dict[str, _RuntimeNode],
        pos: tuple | None,
        sink: Sink,
        stats: EvalStats,
        final: bool,
    ) -> None:
        fire(FP_CASCADE)
        if final:
            fire(FP_FINAL_FLUSH)
        # Sampling the footprint every cascade is wasteful when the
        # position changes with nearly every record; every 32 cascades
        # captures the peak closely (resident state evolves slowly).
        self._cascade_count += 1
        if final or self._cascade_count % 32 == 1:
            resident = 0
            for rt in topo_runtime:
                entries = rt.entries()
                resident += entries
                if rt.prof is not None:
                    rt.prof.peak_entries = max(
                        rt.prof.peak_entries, entries
                    )
            stats.peak_entries = max(stats.peak_entries, resident)
            budget = self.memory_budget_entries
            if budget is not None and resident > budget:
                raise MemoryBudgetExceeded(
                    resident, budget, where="sort-scan cascade"
                )

        tracer = get_tracer()
        flush_started = (
            time.perf_counter() if tracer.enabled else 0.0
        )
        flushed_before = stats.flushed_entries
        for rt in topo_runtime:
            if final:
                self._flush_node(rt, runtime, sink, stats, final)
                continue
            changed = rt.checker.refresh(pos)
            if changed and rt.prof is not None:
                rt.prof.bound_advances += 1
            # Unchanged bounds + no deliveries since the last scan means
            # the previous flush already drained everything finalizable.
            if not changed and not rt.touched:
                continue
            rt.touched = False
            self._flush_node(rt, runtime, sink, stats, final)
        if tracer.enabled:
            tracer.add_complete(
                "flush",
                cat="engine",
                start_perf=flush_started,
                duration=time.perf_counter() - flush_started,
                args={
                    "final": final,
                    "emitted": stats.flushed_entries - flushed_before,
                },
            )

    def _flush_node(
        self,
        rt: _RuntimeNode,
        runtime: dict[str, _RuntimeNode],
        sink: Sink,
        stats: EvalStats,
        final: bool,
    ) -> None:
        prof = rt.prof
        if prof is None:
            self._flush_node_inner(rt, runtime, sink, stats, final)
            return
        prof.flushes += 1
        emitted_before = stats.flushed_entries
        started = time.perf_counter()
        try:
            self._flush_node_inner(rt, runtime, sink, stats, final)
        finally:
            prof.flush_seconds += time.perf_counter() - started
            prof.rows_out += stats.flushed_entries - emitted_before

    def _flush_node_inner(
        self,
        rt: _RuntimeNode,
        runtime: dict[str, _RuntimeNode],
        sink: Sink,
        stats: EvalStats,
        final: bool,
    ) -> None:
        table = rt.table
        if not table:
            self._gc_parents(rt, final)
            return
        if final:
            ready = sorted(table.keys())
        else:
            checker = rt.checker
            if checker.never:
                return
            # The whole resident table must be tested: the plan-time
            # specs promise downstream nodes that *every* entry below
            # the bound has been flushed, so none may be skipped.  The
            # table is small by construction (bounded by the plan's
            # slack), which keeps this cheap.
            ready = sorted(
                key for key in table if checker.is_final(key)
            )
            if not ready:
                self._gc_parents(rt, final)
                return

        node = rt.node
        capture_states = sink.wants_states and rt.kind == "basic"
        for key in ready:
            entry = table.pop(key)
            if rt.flushed_keys is not None:
                rt.flushed_keys.add(key)
            if capture_states:
                # The entry *is* the accumulator state for basic nodes;
                # hand it over before finalization (which never mutates).
                sink.emit_state(node.name, key, entry)
            emit, value = self._finalize_entry(rt, key, entry)
            if not emit:
                continue
            stats.flushed_entries += 1
            for name, out_filter in rt.outputs:
                if out_filter is None or out_filter(key, value):
                    sink.emit(name, key, value)
            for arc in rt.node.out_arcs:
                self._propagate(arc, key, value, runtime)
        del node
        self._gc_parents(rt, final)

    def _gc_parents(self, rt: _RuntimeNode, final: bool) -> None:
        if rt.parents is None or not rt.parents:
            return
        if final:
            rt.parents.clear()
            return
        checker = rt.checker
        src_levels = rt.src_levels
        drop = [
            key
            for key in rt.parents
            if checker.is_final_at_levels(key, src_levels)
        ]
        for key in drop:
            del rt.parents[key]

    def _finalize_entry(self, rt: _RuntimeNode, key: tuple, entry):
        """Compute the output value; returns (emit?, value)."""
        kind = rt.kind
        agg = getattr(rt.node, "agg", None)
        if kind in ("basic", "rollup"):
            return True, agg.function.finalize(entry)
        if kind == "match":
            has_key, state = entry
            if not has_key:
                return False, None
            return True, agg.function.finalize(state)
        if kind == "pc-match":
            has_key = entry[0]
            if not has_key:
                return False, None
            node = rt.node
            ancestor = node.cond.ancestor(
                key,
                node.granularity,
                node.values_arc.src.granularity,
            )
            state = agg.function.create()
            if ancestor in rt.parents:
                state = agg.function.update(state, rt.parents[ancestor])
            return True, agg.function.finalize(state)
        if kind == "combine":
            slots = entry
            if slots[0] is _MISSING:
                return False, None
            args = [
                slot if slot is not _MISSING else None for slot in slots
            ]
            return True, rt.node.fn(*args)
        raise EvaluationError(f"unknown runtime kind {kind!r}")

    def _propagate(
        self, arc: Arc, key: tuple, value, runtime: dict[str, _RuntimeNode]
    ) -> None:
        if arc.filter is not None and not arc.filter(key, value):
            return
        dst = runtime[arc.dst.name]
        dst.touched = True
        if dst.prof is not None:
            dst.prof.rows_in += 1
        if (dst.flushed_keys is not None and arc.role != "values"
                and key in dst.flushed_keys):
            raise EvaluationError(
                f"late update: {arc!r} delivered finalized key {key}"
            )

        if arc.role == "keys":
            entry = dst.table.get(key)
            if entry is None:
                entry = [False, dst.node.agg.function.create()]
                dst.table[key] = entry
            entry[0] = True
            return

        if arc.role == "combine":
            entry = dst.table.get(key)
            if entry is None:
                entry = [_MISSING] * dst.node.num_inputs
                dst.table[key] = entry
            entry[arc.index] = value
            return

        # values arcs --------------------------------------------------
        node = dst.node
        agg = node.agg.function
        cond = arc.cond
        if dst.kind == "rollup" or isinstance(cond, ChildParent):
            out_key = node.granularity.lift_fn(arc.src.granularity)(key)
            self._update_plain(dst, out_key, value, agg)
            return
        if isinstance(cond, SelfMatch):
            self._update_match(dst, key, value, agg)
            return
        if isinstance(cond, ParentChild):
            dst.parents[key] = value
            return
        if isinstance(cond, (Sibling, Lags)):
            for out_key in cond.affected_keys(
                key, node.granularity, arc.src.granularity
            ):
                self._update_match(dst, out_key, value, agg)
            return
        raise EvaluationError(f"unsupported condition {cond!r}")

    @staticmethod
    def _update_plain(dst: _RuntimeNode, key: tuple, value, agg) -> None:
        if dst.flushed_keys is not None and key in dst.flushed_keys:
            raise EvaluationError(
                f"late update for finalized key {key} of {dst.node.name!r}"
            )
        table = dst.table
        state = table.get(key, _MISSING)
        if state is _MISSING:
            state = agg.create()
        table[key] = agg.update(state, value)

    @staticmethod
    def _update_match(dst: _RuntimeNode, key: tuple, value, agg) -> None:
        if dst.flushed_keys is not None and key in dst.flushed_keys:
            raise EvaluationError(
                f"late update for finalized key {key} of {dst.node.name!r}"
            )
        entry = dst.table.get(key)
        if entry is None:
            entry = [False, agg.create()]
            dst.table[key] = entry
        entry[1] = agg.update(entry[1], value)
