"""Compile AW-RA expressions into an evaluation graph (Section 5.2).

The evaluation graph normalizes the algebra into three node types that
all engines share:

- :class:`BasicNode` — ``g_{G,agg}(σ(D))``: aggregates fact records;
- :class:`CompositeNode` — a roll-up (``g`` over another measure) or a
  match join; owns an optional *keys* arc (the paper's ``S``) and one
  *values* arc (the paper's ``T``);
- :class:`CombineNode` — a combine join over same-granularity inputs.

Selections never become nodes: a ``σ`` over a measure folds into the
consuming arc as a filter (and into the output emission when the
selection is itself the query result).  This mirrors the paper's
treatment of selections as cheap streaming predicates.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import PlanError
from repro.aggregates.base import AggSpec
from repro.algebra.conditions import MatchCondition
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema

EntryFilter = Callable[[tuple, object], bool]


class Arc:
    """A computational arc: finalized entries of ``src`` update ``dst``.

    Attributes:
        role: ``"values"`` (measure-bearing input of a composite),
            ``"keys"`` (cell provider of a match join), or
            ``"combine"`` (slot ``index`` of a combine join).
        filter: Optional compiled ``(key, value) -> bool`` selection
            applied to entries travelling this arc.
        cond: The match condition, for ``values`` arcs of match joins.
    """

    __slots__ = ("src", "dst", "role", "index", "filter", "cond")

    def __init__(
        self,
        src: "Node",
        dst: "Node",
        role: str,
        index: int = 0,
        entry_filter: EntryFilter | None = None,
        cond: MatchCondition | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.role = role
        self.index = index
        self.filter = entry_filter
        self.cond = cond

    def __repr__(self) -> str:
        tag = f"{self.role}[{self.index}]" if self.role == "combine" else (
            self.role
        )
        return f"Arc({self.src.name} -> {self.dst.name}, {tag})"


class Node:
    """Base evaluation-graph node: one measure table."""

    def __init__(self, name: str, granularity: Granularity) -> None:
        self.name = name
        self.granularity = granularity
        self.in_arcs: list[Arc] = []
        self.out_arcs: list[Arc] = []

    @property
    def schema(self) -> DatasetSchema:
        return self.granularity.schema

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.granularity!r})"


class BasicNode(Node):
    """``g_{G,agg}(σ(D))`` — aggregates raw records.

    ``value_index`` is the record field fed to the aggregate, or ``None``
    for count-star style (the constant 1).
    """

    def __init__(
        self,
        name: str,
        granularity: Granularity,
        agg: AggSpec,
        record_filter: Callable[[tuple], bool] | None = None,
        value_index: int | None = None,
    ) -> None:
        super().__init__(name, granularity)
        self.agg = agg
        self.record_filter = record_filter
        self.value_index = value_index


class CompositeNode(Node):
    """Roll-up or match join.

    A pure roll-up (``cond is None``) has a single values arc and its
    output keys are the generalizations of its input keys.  A match
    join additionally has a keys arc providing the output cells, with
    left-outer semantics: cells with no matching values still appear.
    """

    def __init__(
        self,
        name: str,
        granularity: Granularity,
        agg: AggSpec,
        cond: MatchCondition | None = None,
    ) -> None:
        super().__init__(name, granularity)
        self.agg = agg
        self.cond = cond

    @property
    def values_arc(self) -> Arc:
        for arc in self.in_arcs:
            if arc.role == "values":
                return arc
        raise PlanError(f"node {self.name!r} has no values arc")

    @property
    def keys_arc(self) -> Arc | None:
        for arc in self.in_arcs:
            if arc.role == "keys":
                return arc
        return None


class CombineNode(Node):
    """``S ⋈̄_fc (T_1..T_n)`` — slot 0 is the base (cell provider)."""

    def __init__(
        self,
        name: str,
        granularity: Granularity,
        fn: CombineFn,
        num_inputs: int,
    ) -> None:
        super().__init__(name, granularity)
        self.fn = fn
        self.num_inputs = num_inputs


class CompiledGraph:
    """The evaluation graph: nodes in topological order, plus outputs.

    ``outputs`` maps each query-output name to ``(node, filter)`` where
    ``filter`` is the residual selection to apply at emission time (a
    ``σ`` sitting on top of the output expression).

    ``workflow`` is the :class:`~repro.workflow.AggregationWorkflow`
    the graph was compiled from, when known (set by
    :func:`compile_workflow`).  A compiled graph itself is *not*
    picklable — its arcs hold compiled filter closures — but a workflow
    is, so distributed evaluators ship the workflow as the serializable
    plan spec and recompile in each worker.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        nodes: list[Node],
        outputs: dict[str, tuple[Node, EntryFilter | None]],
    ) -> None:
        self.schema = schema
        self.nodes = nodes
        self.outputs = outputs
        self.workflow = None
        self._check_topological()

    def _check_topological(self) -> None:
        seen: set[int] = set()
        for node in self.nodes:
            for arc in node.in_arcs:
                if id(arc.src) not in seen:
                    raise PlanError(
                        f"nodes are not topologically ordered: "
                        f"{node.name!r} before its input {arc.src.name!r}"
                    )
            seen.add(id(node))

    @property
    def basic_nodes(self) -> list[BasicNode]:
        return [n for n in self.nodes if isinstance(n, BasicNode)]

    def output_names_of(self, node: Node) -> list[str]:
        return [
            name
            for name, (out_node, __) in self.outputs.items()
            if out_node is node
        ]

    def describe(self) -> str:
        """Readable plan listing, one node per line."""
        lines = []
        for node in self.nodes:
            inputs = ", ".join(
                f"{arc.src.name}:{arc.role}"
                + (f"[σ]" if arc.filter else "")
                for arc in node.in_arcs
            )
            kind = type(node).__name__
            extra = ""
            if isinstance(node, (BasicNode, CompositeNode)):
                extra = f" agg={node.agg!r}"
            if isinstance(node, CompositeNode) and node.cond is not None:
                extra += f" cond={node.cond!r}"
            if isinstance(node, CombineNode):
                extra = f" fn={node.fn!r}"
            lines.append(
                f"{node.name}: {kind}{node.granularity!r}{extra}"
                + (f" <- [{inputs}]" if inputs else "")
            )
        return "\n".join(lines)


class _Compiler:
    def __init__(self, schema: DatasetSchema) -> None:
        self.schema = schema
        self.nodes: list[Node] = []
        self._memo: dict[int, Node] = {}
        self._counter = 0

    def _fresh_name(self, hint: str) -> str:
        self._counter += 1
        return f"_{hint}{self._counter}"

    def _add(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    @staticmethod
    def _peel_selects(expr: Expr) -> tuple[Expr, list]:
        """Strip ``σ`` layers, returning (inner expr, predicates)."""
        predicates = []
        while isinstance(expr, Select):
            predicates.append(expr.predicate)
            expr = expr.child
        return expr, predicates

    def _measure_filter(
        self, predicates: list, granularity: Granularity
    ) -> EntryFilter | None:
        if not predicates:
            return None
        compiled = [
            p.compile_for_measure(self.schema, granularity)
            for p in predicates
        ]
        if len(compiled) == 1:
            return compiled[0]

        def combined(key, value, _fns=tuple(compiled)):
            return all(fn(key, value) for fn in _fns)

        return combined

    def _record_filter(self, predicates: list):
        if not predicates:
            return None
        compiled = [p.compile_for_fact(self.schema) for p in predicates]
        if len(compiled) == 1:
            return compiled[0]

        def combined(record, _fns=tuple(compiled)):
            return all(fn(record) for fn in _fns)

        return combined

    def compile_expr(self, expr: Expr, name_hint: str = "") -> Node:
        """Compile (memoized); ``expr`` must not be a bare σ chain —
        callers peel selections into arc/output filters first."""
        memo_key = id(expr)
        if memo_key in self._memo:
            return self._memo[memo_key]
        node = self._build(expr, name_hint)
        self._memo[memo_key] = node
        return node

    def _input(
        self, expr: Expr
    ) -> tuple[Node, EntryFilter | None]:
        """Compile an arc input: peel σ into an entry filter."""
        inner, predicates = self._peel_selects(expr)
        if isinstance(inner, FactTable):
            raise PlanError(
                "raw fact table used where a measure table is required"
            )
        node = self.compile_expr(inner)
        return node, self._measure_filter(predicates, inner.granularity)

    def _build(self, expr: Expr, name_hint: str) -> Node:
        if isinstance(expr, Aggregate):
            inner, predicates = self._peel_selects(expr.child)
            if isinstance(inner, FactTable):
                value_index = None
                if expr.agg.input_field != "*":
                    value_index = self.schema.measure_index(
                        expr.agg.input_field
                    )
                return self._add(
                    BasicNode(
                        name_hint or self._fresh_name("basic"),
                        expr.granularity,
                        expr.agg,
                        record_filter=self._record_filter(predicates),
                        value_index=value_index,
                    )
                )
            src = self.compile_expr(inner)
            node = CompositeNode(
                name_hint or self._fresh_name("rollup"),
                expr.granularity,
                expr.agg,
                cond=None,
            )
            arc = Arc(
                src,
                node,
                "values",
                entry_filter=self._measure_filter(
                    predicates, inner.granularity
                ),
            )
            src.out_arcs.append(arc)
            node.in_arcs.append(arc)
            return self._add(node)

        if isinstance(expr, MatchJoin):
            keys_node, keys_filter = self._input(expr.target)
            values_node, values_filter = self._input(expr.source)
            node = CompositeNode(
                name_hint or self._fresh_name("match"),
                expr.granularity,
                expr.agg,
                cond=expr.cond,
            )
            keys_arc = Arc(
                keys_node, node, "keys", entry_filter=keys_filter
            )
            values_arc = Arc(
                values_node,
                node,
                "values",
                entry_filter=values_filter,
                cond=expr.cond,
            )
            keys_node.out_arcs.append(keys_arc)
            values_node.out_arcs.append(values_arc)
            node.in_arcs.append(keys_arc)
            node.in_arcs.append(values_arc)
            return self._add(node)

        if isinstance(expr, CombineJoin):
            node = CombineNode(
                name_hint or self._fresh_name("combine"),
                expr.granularity,
                expr.fn,
                num_inputs=1 + len(expr.inputs),
            )
            for index, child in enumerate((expr.base, *expr.inputs)):
                src, entry_filter = self._input(child)
                arc = Arc(
                    src,
                    node,
                    "combine",
                    index=index,
                    entry_filter=entry_filter,
                )
                src.out_arcs.append(arc)
                node.in_arcs.append(arc)
            return self._add(node)

        if isinstance(expr, FactTable):
            raise PlanError(
                "the raw fact table is not a measure; aggregate it first"
            )
        if isinstance(expr, Select):
            raise PlanError(
                "internal error: selection reached _build unpeeled"
            )
        raise PlanError(f"cannot compile expression {expr!r}")


def compile_measures(
    exprs: dict[str, Expr],
    outputs: list[str] | None = None,
) -> CompiledGraph:
    """Compile named AW-RA expressions into a :class:`CompiledGraph`.

    Args:
        exprs: Measure name → expression; shared sub-expression
            *objects* are compiled once (the workflow translator
            guarantees sharing).
        outputs: Names to report as query outputs; defaults to all.
    """
    if not exprs:
        raise PlanError("no measures to compile")
    schema = next(iter(exprs.values())).schema
    compiler = _Compiler(schema)
    output_map: dict[str, tuple[Node, EntryFilter | None]] = {}
    for name, expr in exprs.items():
        inner, predicates = compiler._peel_selects(expr)
        node = compiler.compile_expr(inner, name_hint=name)
        output_map[name] = (
            node,
            compiler._measure_filter(predicates, inner.granularity),
        )
    wanted = outputs if outputs is not None else list(exprs)
    missing = [name for name in wanted if name not in output_map]
    if missing:
        raise PlanError(f"unknown output measures: {missing}")
    return CompiledGraph(
        schema,
        compiler.nodes,
        {name: output_map[name] for name in wanted},
    )


def compile_workflow(workflow) -> CompiledGraph:
    """Compile an :class:`~repro.workflow.AggregationWorkflow`."""
    exprs = workflow.to_algebra()
    graph = compile_measures(exprs, outputs=workflow.outputs())
    graph.workflow = workflow
    return graph
