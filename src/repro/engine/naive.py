"""The relational baseline engine — the paper's "DB" comparator.

Executes a compiled graph the way a relational engine executes the
equivalent SQL (Tables 2-4): every measure is a separate query block.

Cost model faithfully mirrors that plan shape:

- each *basic* measure performs its own full scan of the fact table
  (separate GROUP BY sub-queries over ``D``);
- every intermediate measure is *spooled* — materialized to disk and
  read back by each consumer, the way nested sub-query results are;
- match joins run as index nested-loop joins over the spooled tables.

This is what makes the baseline's cost grow with the number of measures
and nesting depth in Figures 6(a)-6(d), while the sort/scan engine's
cost stays nearly flat.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile

from repro.engine.compile import BasicNode, CompiledGraph
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.semantics import (
    eval_combine,
    eval_composite,
    eval_basic,
)
from repro.storage.sink import Sink
from repro.storage.table import Dataset


class RelationalEngine(Engine):
    """Per-measure relational evaluation with intermediate spooling.

    Args:
        spool: Materialize every intermediate table to disk and reload
            it per consumer (the default, and what the figures model).
            Disable for a pure in-memory variant in tests.
        spool_dir: Directory for spool files; temporary by default.
        memory_budget_entries: Per-operator working-memory limit, the
            way a real DBMS runs each query block under a memory grant.
            A basic GROUP BY whose hash table outgrows the budget falls
            back to *sort-based grouping* (external sort by the group
            key, then a streaming group-by) — each such query block
            pays its own sort, which is exactly why the paper's
            one-sort-for-everything Sort/Scan plan pulls ahead as
            measures multiply.
        run_size: External-sort run size for the fallback path.
        reuse_subexpressions: When False (the default), every output
            measure is evaluated as its own query block, re-computing
            any shared sub-measures — the behaviour of the nested-SQL
            formulations the paper compares against ("the resulting
            query often contains multiply nested sub-queries").
            Sharing work across measures is exactly the aggregation-
            workflow engines' advantage; set True for a stronger
            baseline that materializes common sub-expressions once.
    """

    name = "relational"

    def __init__(
        self,
        spool: bool = True,
        spool_dir: str | None = None,
        memory_budget_entries: int | None = None,
        run_size: int = 200_000,
        reuse_subexpressions: bool = False,
    ) -> None:
        self.spool = spool
        self.spool_dir = spool_dir
        self.memory_budget_entries = memory_budget_entries
        self.run_size = run_size
        self.reuse_subexpressions = reuse_subexpressions

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        if self.reuse_subexpressions:
            self._run_shared(dataset, graph, sink, stats)
        else:
            self._run_per_output(dataset, graph, sink, stats)

    def _run_per_output(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        """One query block per output; shared sub-measures recomputed.

        Within one output's block, each node is evaluated once (a
        nested sub-query appears once in its enclosing query), but
        nothing carries over *between* outputs — two outputs built on
        the same hourly count each pay for it, scans included.
        """
        from repro.engine.compile import CombineNode

        topo_index = {node.name: i for i, node in enumerate(graph.nodes)}
        for name, (out_node, out_filter) in graph.outputs.items():
            needed: set[str] = set()
            frontier = [out_node]
            while frontier:
                node = frontier.pop()
                if node.name in needed:
                    continue
                needed.add(node.name)
                frontier.extend(arc.src for arc in node.in_arcs)
            tables: dict[str, dict] = {}
            for node in sorted(
                (n for n in graph.nodes if n.name in needed),
                key=lambda n: topo_index[n.name],
            ):
                if isinstance(node, BasicNode):
                    table = self._eval_basic_budgeted(node, dataset, stats)
                    stats.scans += 1
                    stats.rows_scanned += len(dataset)
                elif isinstance(node, CombineNode):
                    table = eval_combine(node, tables)
                else:
                    table = eval_composite(node, tables)
                stats.peak_entries = max(stats.peak_entries, len(table))
                tables[node.name] = table
            for key, value in tables[out_node.name].items():
                if out_filter is None or out_filter(key, value):
                    sink.emit(name, key, value)

    def _run_shared(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        own_dir = None
        directory = self.spool_dir
        if self.spool and directory is None:
            own_dir = tempfile.mkdtemp(prefix="awra-spool-")
            directory = own_dir
        spool_paths: dict[str, str] = {}
        in_memory: dict[str, dict] = {}

        def store(name: str, table: dict) -> None:
            if self.spool:
                # Node names may contain arbitrary characters; spool
                # files are numbered and mapped by name.
                path = os.path.join(
                    directory, f"spool-{len(spool_paths):04d}.pkl"
                )
                with open(path, "wb") as fh:
                    pickle.dump(table, fh, pickle.HIGHEST_PROTOCOL)
                spool_paths[name] = path
                stats.spooled_entries += len(table)
            else:
                in_memory[name] = table

        def load(name: str) -> dict:
            if self.spool:
                with open(spool_paths[name], "rb") as fh:
                    return pickle.load(fh)
            return in_memory[name]

        try:
            for node in graph.nodes:
                if isinstance(node, BasicNode):
                    table = self._eval_basic_budgeted(node, dataset, stats)
                    stats.scans += 1
                    stats.rows_scanned += len(dataset)
                else:
                    inputs = {
                        arc.src.name: load(arc.src.name)
                        for arc in node.in_arcs
                    }
                    from repro.engine.compile import CombineNode

                    if isinstance(node, CombineNode):
                        table = eval_combine(node, inputs)
                    else:
                        table = eval_composite(node, inputs)
                stats.peak_entries = max(stats.peak_entries, len(table))
                self._emit(graph, node, table, sink)
                store(node.name, table)
        finally:
            for path in spool_paths.values():
                with contextlib.suppress(OSError):
                    os.remove(path)
            if own_dir is not None:
                with contextlib.suppress(OSError):
                    os.rmdir(own_dir)

    def _eval_basic_budgeted(
        self, node: BasicNode, dataset: Dataset, stats: EvalStats
    ) -> dict:
        """Hash group-by, falling back to sort-grouping over budget."""
        budget = self.memory_budget_entries
        if budget is None:
            return eval_basic(node, dataset)
        agg = node.agg.function
        key_of = node.granularity.record_key_fn()
        record_filter = node.record_filter
        value_index = node.value_index
        table: dict = {}
        overflow = False
        for record in dataset.scan():
            if record_filter is not None and not record_filter(record):
                continue
            key = key_of(record)
            value = 1 if value_index is None else record[value_index]
            state = table.get(key)
            if state is None and key not in table:
                if len(table) >= budget:
                    overflow = True
                    break
                state = agg.create()
            table[key] = agg.update(state, value)
        if not overflow:
            return {k: agg.finalize(s) for k, s in table.items()}
        # Sort-based grouping: external sort by the group key, then a
        # streaming group-by holding one group at a time — the classic
        # DBMS fallback when the hash aggregate exceeds its grant.
        table.clear()
        from repro.storage.external_sort import external_sort

        stats.notes = (stats.notes + " sort-group").strip()

        def filtered_scan():
            for rec in dataset.scan():
                if record_filter is None or record_filter(rec):
                    yield rec

        result: dict = {}
        current_key = None
        current_state = None
        for record in external_sort(
            filtered_scan(), key_of, run_size=self.run_size
        ):
            key = key_of(record)
            value = 1 if value_index is None else record[value_index]
            if key != current_key:
                if current_key is not None:
                    result[current_key] = agg.finalize(current_state)
                current_key = key
                current_state = agg.create()
            current_state = agg.update(current_state, value)
        if current_key is not None:
            result[current_key] = agg.finalize(current_state)
        return result

    @staticmethod
    def _emit(graph: CompiledGraph, node, table: dict, sink: Sink) -> None:
        for name in graph.output_names_of(node):
            __, out_filter = graph.outputs[name]
            for key, value in table.items():
                if out_filter is None or out_filter(key, value):
                    sink.emit(name, key, value)
