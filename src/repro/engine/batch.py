"""Batched (columnar) basic-measure updates shared by the engines.

:class:`BasicBatchUpdater` is the batch-at-a-time counterpart of the
scalar inner loops in :func:`repro.engine.semantics.update_basic_tables`
(single-scan) and the precompiled ``basic_plan`` loop in
:mod:`repro.engine.sort_scan`: it folds a whole
:class:`~repro.storage.columnar.RecordBatch` into one basic node's
hash table.  Per batch it

1. evaluates the node's record filter per row (filters are arbitrary
   Python predicates over record tuples) into a boolean mask,
2. generalizes the dimension columns to the node's granularity with
   vectorized mappers (:func:`repro.storage.columnar.key_columns`),
3. groups rows by region key with one stable lexsort
   (:func:`repro.storage.columnar.group_runs`), and
4. folds each group segment through the aggregate's ``update_many``.

Bit-identity with the scalar loops holds because the lexsort is stable
(within-group value order is scan order), segments are visited in
first-appearance order (hash tables gain keys in exactly the order the
scalar loop would insert them, so downstream folds over ``dict``
iteration order match too), and ``update_many`` folds left-to-right
(see :mod:`repro.aggregates.base`).
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.engine.compile import BasicNode
from repro.schema.domain import ALL_VALUE
from repro.storage.columnar import (
    RecordBatch,
    group_runs,
    key_columns,
    np,
)

_MISSING = object()


class BasicBatchUpdater:
    """Applies record batches to one basic node's hash table.

    Args:
        node: The compiled basic node.
        table: The node's (mutable) accumulator hash table.
        flushed_keys: When the engine tracks flushed keys (the
            ``assert_no_late_updates`` testing hook), updates for keys
            in this set raise — same contract as the scalar loop.
        prof: Optional :class:`~repro.obs.profile.NodeProfile`;
            ``rows_in`` counts post-filter rows, as in the scalar loop.
    """

    __slots__ = (
        "node",
        "table",
        "flushed_keys",
        "prof",
        "granularity",
        "agg",
        "record_filter",
        "value_index",
        "key_dims",
        "template",
        "all_key",
        "_key_fn",
    )

    def __init__(
        self,
        node: BasicNode,
        table: dict,
        flushed_keys: set | None = None,
        prof=None,
    ) -> None:
        self.node = node
        self.table = table
        self.flushed_keys = flushed_keys
        self.prof = prof
        self.granularity = node.granularity
        self.agg = node.agg.function
        self.record_filter = node.record_filter
        self.value_index = node.value_index
        self.key_dims = self.granularity.key_dims
        # Region keys have full dimension width with ALL slots pinned
        # to ALL_VALUE; only the key dims vary per segment.
        self.template = [ALL_VALUE] * self.granularity.schema.num_dimensions
        self.all_key = tuple(self.template)
        self._key_fn = self.granularity.record_key_fn()

    # -- scalar paths -------------------------------------------------

    def _check_flushed(self, key: tuple) -> None:
        if self.flushed_keys is not None and key in self.flushed_keys:
            raise EvaluationError(
                f"late update: record for finalized key {key} of "
                f"basic node {self.node.name!r}"
            )

    def apply_record(self, record: tuple) -> None:
        """Fold one record — the non-vector fallback, identical to the
        scalar engines' inner loop (filter included)."""
        if self.record_filter is not None and not self.record_filter(
            record
        ):
            return
        key = self._key_fn(record)
        value = (
            1 if self.value_index is None else record[self.value_index]
        )
        state = self.table.get(key, _MISSING)
        if state is _MISSING:
            self._check_flushed(key)
            state = self.agg.create()
        self.table[key] = self.agg.update(state, value)
        if self.prof is not None:
            self.prof.rows_in += 1

    # -- batched path -------------------------------------------------

    def apply(self, batch: RecordBatch) -> None:
        """Fold a whole batch (vectorized when the batch is)."""
        if len(batch) == 0:
            return
        if not batch.vector:
            for record in batch.python_rows():
                self.apply_record(record)
            return
        if self.record_filter is not None:
            record_filter = self.record_filter
            mask = np.fromiter(
                (
                    bool(record_filter(row))
                    for row in batch.iter_records()
                ),
                dtype=bool,
                count=len(batch),
            )
            if not mask.any():
                return
            if not mask.all():
                batch = batch.take(mask)
        n = len(batch)
        if self.prof is not None:
            self.prof.rows_in += n
        values = (
            batch.columns[self.value_index]
            if self.value_index is not None
            else None
        )
        agg = self.agg
        table = self.table

        key_cols = key_columns(self.granularity, batch)
        keys = [key_cols[dim] for dim in self.key_dims]
        if not keys:
            # Every dimension at D_ALL: the batch is one segment.
            key = self.all_key
            state = table.get(key, _MISSING)
            if state is _MISSING:
                self._check_flushed(key)
                state = agg.create()
            if values is None:
                table[key] = agg.update_repeat(state, 1, n)
            else:
                table[key] = agg.update_many(state, values)
            return

        order, sorted_keys, starts, ends = group_runs(keys, n)
        ordered_values = values[order] if values is not None else None
        template = self.template
        key_dims = self.key_dims
        for start, end in zip(starts, ends):
            for dim, col in zip(key_dims, sorted_keys):
                template[dim] = int(col[start])
            key = tuple(template)
            state = table.get(key, _MISSING)
            if state is _MISSING:
                self._check_flushed(key)
                state = agg.create()
            if ordered_values is None:
                table[key] = agg.update_repeat(
                    state, 1, int(end - start)
                )
            else:
                table[key] = agg.update_many(
                    state, ordered_values[start:end]
                )
