"""Watermark machinery: when is a hash-table entry finalized?

This is the runtime form of the paper's Tables 6 and 8.  For every node
of the evaluation graph we precompute, at plan time, a set of
*finalization predicates* (:class:`PredSpec`).  Each spec descends from
the scan position through the chain of computational arcs between the
fact table and the node, composing three transform rules:

- **lift** (roll-ups / child-parent arcs): bound components are raised
  to the coarser granularity; the first strictly-raised component ends
  the spec, because finer positions can no longer be trusted — exactly
  the truncation behaviour of Table 6;
- **identity** (self matches, parent/child matches, keys and combine
  arcs): the bound passes through unchanged — for parent/child the
  *finer* entry is generalized up to the bound's levels at check time;
- **shift** (sibling matches): a window reaching ``after`` steps ahead
  delays finalization by ``after`` at that dimension, recorded as a
  per-dimension shift applied to the entry key before comparison (this
  is the stream *slack* of Section 5.3.1).

At run time, an entry of a node is finalized exactly when, for *every*
spec of the node, the entry's (shifted, generalized) key is strictly
lexicographically below the spec's bound evaluated at the current scan
position.  Strictness matters: the current scan group is still open.
A spec with no parts never finalizes anything before the end-of-scan
flush (the node's inputs recur across the whole scan).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import PlanError
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.cube.granularity import Granularity
from repro.cube.order import SortKey
from repro.engine.compile import (
    Arc,
    BasicNode,
    CompiledGraph,
    Node,
)
from repro.schema.dataset_schema import DatasetSchema


class PredSpec:
    """One finalization predicate.

    Attributes:
        parts: ``((dim, level, scan_index, scan_level), ...)`` — the
            bound's components.  ``scan_index``/``scan_level`` say which
            scan-key position produces the component's value and at what
            level the scan key carries it (``level >= scan_level``).
        shifts: ``{dim: (shift_level, amount)}`` — entry keys are
            generalized to ``shift_level``, moved ``amount`` steps
            forward, then generalized on up before comparison.
    """

    __slots__ = ("parts", "shifts")

    def __init__(
        self,
        parts: Sequence[tuple[int, int, int, int]],
        shifts: dict[int, tuple[int, int]] | None = None,
    ) -> None:
        self.parts = tuple(parts)
        self.shifts = dict(shifts or {})

    def signature(self) -> tuple:
        return (self.parts, tuple(sorted(self.shifts.items())))

    def bound_at(self, schema: DatasetSchema, pos: tuple) -> tuple:
        """The bound values for scan position ``pos``."""
        values = []
        for dim, level, scan_index, scan_level in self.parts:
            values.append(
                schema.dimensions[dim].generalize(
                    pos[scan_index], scan_level, level
                )
            )
        return tuple(values)

    def entry_below(
        self,
        schema: DatasetSchema,
        key: tuple,
        key_levels: tuple[int, ...],
        bound: tuple,
    ) -> bool:
        """Strict lexicographic test of an entry key against ``bound``.

        Components whose level is finer than the entry's own level for
        that dimension are unusable (the entry cannot be specialized);
        the comparison truncates there, conservatively.
        """
        for position, (dim, level, __, ___) in enumerate(self.parts):
            have = key_levels[dim]
            if level < have:
                # Bound is finer than the key can express: truncate.
                return False
            value = key[dim]
            shift = self.shifts.get(dim)
            if shift is not None:
                shift_level, amount = shift
                if shift_level < have:
                    return False
                value = schema.dimensions[dim].generalize(
                    value, have, shift_level
                )
                value += amount
                value = schema.dimensions[dim].generalize(
                    value, shift_level, level
                )
            else:
                value = schema.dimensions[dim].generalize(
                    value, have, level
                )
            if value < bound[position]:
                return True
            if value > bound[position]:
                return False
        return False  # equal on every comparable component: not final

    def __repr__(self) -> str:
        parts = ",".join(f"d{d}@{lv}" for d, lv, __, ___ in self.parts)
        shifts = ",".join(
            f"d{d}+{amount}@{lv}"
            for d, (lv, amount) in sorted(self.shifts.items())
        )
        return f"PredSpec([{parts}]{'; ' + shifts if shifts else ''})"


def _basic_spec(
    scan_key: SortKey, granularity: Granularity
) -> PredSpec:
    """The spec of a basic node: scan position lifted to its grain."""
    schema = granularity.schema
    parts: list[tuple[int, int, int, int]] = []
    for scan_index, (dim, scan_level) in enumerate(scan_key.parts):
        node_level = granularity.levels[dim]
        all_level = schema.dimensions[dim].all_level
        if node_level <= scan_level:
            parts.append((dim, scan_level, scan_index, scan_level))
            continue
        if node_level == all_level:
            break  # this dimension recurs over the whole scan
        parts.append((dim, node_level, scan_index, scan_level))
        break  # strictly lifted: nothing finer survives
    return PredSpec(parts)


def _lift_spec(spec: PredSpec, granularity: Granularity) -> PredSpec:
    """Transform a spec across a roll-up / child-parent arc."""
    schema = granularity.schema
    parts: list[tuple[int, int, int, int]] = []
    for dim, level, scan_index, scan_level in spec.parts:
        node_level = granularity.levels[dim]
        all_level = schema.dimensions[dim].all_level
        if node_level <= level:
            if dim in spec.shifts and spec.shifts[dim][0] < node_level:
                # A shift recorded below the new granularity cannot be
                # applied to coarser keys; stop conservatively.
                break
            parts.append((dim, level, scan_index, scan_level))
            continue
        if node_level == all_level:
            break
        if dim in spec.shifts:
            break  # cannot re-apply a fine shift at a coarser level
        parts.append((dim, node_level, scan_index, scan_level))
        break
    kept_dims = {part[0] for part in parts}
    shifts = {
        dim: shift for dim, shift in spec.shifts.items() if dim in kept_dims
    }
    return PredSpec(parts, shifts)


def _shift_spec(
    spec: PredSpec, windows: dict[int, tuple[int, int]],
    granularity: Granularity,
) -> PredSpec:
    """Transform a spec across a sibling arc: add per-dim slack."""
    shifts = dict(spec.shifts)
    for dim, (__, after) in windows.items():
        level = granularity.levels[dim]
        prior = shifts.get(dim)
        if prior is None:
            if after:
                shifts[dim] = (level, after)
        else:
            prior_level, prior_amount = prior
            if prior_level != level:
                raise PlanError(
                    "chained sibling windows at different levels on one "
                    "dimension are not supported by the streaming plan"
                )
            shifts[dim] = (level, prior_amount + after)
    return PredSpec(spec.parts, shifts)


def transform_specs(
    specs: list[PredSpec], arc: Arc
) -> list[PredSpec]:
    """Transform a source node's specs across one computational arc."""
    dst = arc.dst
    if arc.role in ("keys", "combine"):
        return specs
    cond = arc.cond
    if cond is None or isinstance(cond, ChildParent):
        return [_lift_spec(spec, dst.granularity) for spec in specs]
    if isinstance(cond, (SelfMatch, ParentChild)):
        return specs
    if isinstance(cond, Sibling):
        windows = cond.resolve(dst.schema)
        return [
            _shift_spec(spec, windows, dst.granularity) for spec in specs
        ]
    if isinstance(cond, Lags):
        offsets = cond.resolve(dst.schema)
        pseudo_windows = {
            dim: (0, max(0, max(deltas)))
            for dim, deltas in offsets.items()
        }
        return [
            _shift_spec(spec, pseudo_windows, dst.granularity)
            for spec in specs
        ]
    raise PlanError(f"unsupported match condition {cond!r}")


def build_node_specs(
    graph: CompiledGraph, scan_key: SortKey
) -> dict[str, list[PredSpec]]:
    """Finalization specs for every node, by name (plan-time)."""
    specs: dict[str, list[PredSpec]] = {}
    for node in graph.nodes:
        if isinstance(node, BasicNode):
            specs[node.name] = [_basic_spec(scan_key, node.granularity)]
            continue
        collected: list[PredSpec] = []
        seen: set[tuple] = set()
        for arc in node.in_arcs:
            for spec in transform_specs(specs[arc.src.name], arc):
                signature = spec.signature()
                if signature not in seen:
                    seen.add(signature)
                    collected.append(spec)
        specs[node.name] = collected
    return specs


class NodeChecker:
    """Per-node runtime finalization test, refreshed each cascade.

    The per-spec arithmetic (generalize bound components from the scan
    position; shift and generalize entry-key components) is compiled to
    closures once, at construction — these tests run for every resident
    entry at every scan-position change.
    """

    __slots__ = (
        "schema",
        "levels",
        "specs",
        "bounds",
        "_signature",
        "_bound_steps",
        "_entry_steps",
        "never",
    )

    def __init__(self, node: Node, specs: list[PredSpec]) -> None:
        self.schema = node.schema
        self.levels = node.granularity.levels
        self.specs = specs
        self.bounds: list[tuple] = [()] * len(specs)
        self._signature: tuple | None = None
        #: True when no entry can ever finalize before the end flush.
        self.never = not specs or any(not spec.parts for spec in specs)
        self._bound_steps = []
        self._entry_steps = []
        dims = self.schema.dimensions
        for spec in specs:
            bound_steps = []
            entry_steps = []
            for dim, level, scan_index, scan_level in spec.parts:
                hierarchy = dims[dim].hierarchy
                bound_steps.append(
                    (scan_index, hierarchy.mapper(scan_level, level))
                )
                have = self.levels[dim]
                if level < have:
                    # The bound is finer than this node's keys can
                    # express; the spec cannot finalize anything.
                    self.never = True
                    break
                shift = spec.shifts.get(dim)
                if shift is None:
                    entry_steps.append((dim, hierarchy.mapper(have, level)))
                else:
                    shift_level, amount = shift
                    if shift_level < have:
                        self.never = True
                        break
                    to_shift = hierarchy.mapper(have, shift_level)
                    from_shift = hierarchy.mapper(shift_level, level)

                    def shifted(
                        value,
                        _to=to_shift,
                        _amount=amount,
                        _from=from_shift,
                    ):
                        if _to is not None:
                            value = _to(value)
                        value += _amount
                        if _from is not None:
                            value = _from(value)
                        return value

                    entry_steps.append((dim, shifted))
            self._bound_steps.append(tuple(bound_steps))
            self._entry_steps.append(tuple(entry_steps))

    def refresh(self, pos: tuple) -> bool:
        """Recompute bounds for the new scan position.

        Returns False when the bounds did not move (caller may skip the
        node's flush scan entirely).
        """
        if self.never:
            return False
        bounds = [
            tuple(
                pos[idx] if fn is None else fn(pos[idx])
                for idx, fn in steps
            )
            for steps in self._bound_steps
        ]
        if bounds == self._signature:
            return False
        self._signature = bounds
        self.bounds = bounds
        return True

    def is_final(self, key: tuple) -> bool:
        """Would this entry key never be updated again?"""
        if self.never:
            return False
        for steps, bound in zip(self._entry_steps, self.bounds):
            final = False
            for position, (dim, fn) in enumerate(steps):
                value = key[dim]
                if fn is not None:
                    value = fn(value)
                limit = bound[position]
                if value < limit:
                    final = True
                    break
                if value > limit:
                    return False
            if not final:
                return False
        return True

    def is_final_at_levels(
        self, key: tuple, key_levels: tuple[int, ...]
    ) -> bool:
        """Finalization test for keys at a different granularity.

        Used to garbage-collect parent/child side tables, whose keys
        live at the *source* granularity.  Conservative: bound
        components finer than the key truncate the comparison.
        """
        if self.never:
            return False
        for spec, bound in zip(self.specs, self.bounds):
            if not spec.entry_below(self.schema, key, key_levels, bound):
                return False
        return True
