"""Partitioned (parallelizable) evaluation — the paper's future work.

Section 1: "the approach offers potentially unlimited parallelism and
ability to distribute computation, but our current implementation does
not take advantage of these opportunities."  This engine takes the
first step the paper's language was designed for: range-partition the
cube space along one dimension, evaluate each partition with an
independent one-pass sort/scan, and concatenate the (provably disjoint)
results.

Design:

- The **partition dimension** is range-partitioned at the *coarsest*
  level any measure uses for it, so every region of every measure falls
  entirely inside one partition.  Workflows where some measure holds
  the partition dimension at ``D_ALL`` are rejected — those regions
  would span partitions and need cross-partition state merging, which
  is exactly the distributed-aggregation problem the paper defers.
- Sibling windows and lag sets that cross partition boundaries are
  handled with **margin replication**: each partition also *reads*
  records within the workflow's accumulated window reach beyond its
  boundary, but only *emits* regions inside its own range.  The reach
  is derived per node by walking the evaluation graph's arcs (the same
  information the watermark slack uses).
- Partitions are independent; with ``parallel=True`` they run on a
  thread pool (each partition scans, sorts, and aggregates its own
  slice — in CPython the benefit is bounded by the GIL, but the
  execution structure is exactly the distributable plan shape).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Optional

from repro.errors import PlanError
from repro.algebra.conditions import Lags, Sibling
from repro.cube.order import SortKey
from repro.engine.compile import BasicNode, CompiledGraph
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.sort_scan import SortScanEngine, default_sort_key
from repro.storage.sink import MemorySink, Sink
from repro.storage.table import Dataset


def partition_level(graph: CompiledGraph, dim: int) -> int:
    """The coarsest non-ALL level of ``dim`` across all measures.

    Raises:
        PlanError: if any node holds ``dim`` at ``D_ALL`` (its regions
            would span partitions).
    """
    schema = graph.schema
    all_level = schema.dimensions[dim].all_level
    coarsest = 0
    for node in graph.nodes:
        level = node.granularity.levels[dim]
        if level == all_level:
            raise PlanError(
                f"measure {node.name!r} aggregates dimension "
                f"{schema.dimensions[dim].name!r} to ALL; its regions "
                f"span partitions (cross-partition merging is not "
                f"supported — pick another partition dimension)"
            )
        coarsest = max(coarsest, level)
    return coarsest


def window_reach(
    graph: CompiledGraph, dim: int, level: int
) -> tuple[int, int]:
    """Accumulated (backward, forward) window reach on ``dim``.

    Walks the evaluation graph in topological order, accumulating
    sibling/lag extents along every arc path.  To keep units coherent
    across mixed-level chains, all extents are tracked in *base-domain*
    units (a window of ``w`` steps at level ``l`` spans at most
    ``(w + 1) * fanout(base, l)`` base values, the ``+1`` covering
    alignment) and converted to ``level`` units only at the end,
    rounding up with one extra unit of slop.  Over-estimating the
    margin costs a few duplicate reads; under-estimating would corrupt
    boundary regions, so every conversion rounds conservatively.
    """
    schema = graph.schema
    hierarchy = schema.dimensions[dim].hierarchy

    def to_base(extent: int, at_level: int) -> int:
        if extent <= 0:
            return 0
        if at_level == 0:
            return extent
        return (extent + 1) * hierarchy.fanout(0, at_level)

    reach: dict[str, tuple[int, int]] = {}  # in base units
    for node in graph.nodes:
        if isinstance(node, BasicNode):
            reach[node.name] = (0, 0)
            continue
        before = after = 0
        for arc in node.in_arcs:
            src_before, src_after = reach[arc.src.name]
            arc_level = node.granularity.levels[dim]
            arc_before = arc_after = 0
            if isinstance(arc.cond, Sibling):
                windows = arc.cond.resolve(schema)
                if dim in windows:
                    w_before, w_after = windows[dim]
                    arc_before = to_base(max(0, w_before), arc_level)
                    arc_after = to_base(max(0, w_after), arc_level)
            elif isinstance(arc.cond, Lags):
                offsets = arc.cond.resolve(schema)
                if dim in offsets:
                    deltas = offsets[dim]
                    arc_before = to_base(max(0, -min(deltas)), arc_level)
                    arc_after = to_base(max(0, max(deltas)), arc_level)
            before = max(before, src_before + arc_before)
            after = max(after, src_after + arc_after)
        reach[node.name] = (before, after)

    base_before = max(b for b, __ in reach.values())
    base_after = max(a for __, a in reach.values())
    unit = 1 if level == 0 else max(1, hierarchy.fanout(0, level))

    def to_level(base_extent: int) -> int:
        if base_extent <= 0:
            return 0
        return -(-base_extent // unit) + 1

    return to_level(base_before), to_level(base_after)


class _SliceDataset(Dataset):
    """A dataset view: records whose partition value is in a range."""

    def __init__(self, base: Dataset, value_fn, lo, hi) -> None:
        self.schema = base.schema
        self._base = base
        self._value_fn = value_fn
        self._lo = lo
        self._hi = hi
        self._count: Optional[int] = None

    def scan(self) -> Iterator[tuple]:
        lo, hi, value_fn = self._lo, self._hi, self._value_fn
        for record in self._base.scan():
            if lo <= value_fn(record) < hi:
                yield record

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for __ in self.scan())
        return self._count


class _RangeSink(Sink):
    """Forwards only regions owned by this partition."""

    def __init__(
        self, inner: Sink, dim: int, level: int, lo, hi, graph
    ) -> None:
        self._inner = inner
        self._dim = dim
        self._lo = lo
        self._hi = hi
        schema = graph.schema
        hierarchy = schema.dimensions[dim].hierarchy
        self._lift = {}
        for name, (node, __) in graph.outputs.items():
            node_level = node.granularity.levels[dim]
            self._lift[name] = hierarchy.mapper(node_level, level)

    def open_measure(self, name, granularity) -> None:
        self._inner.open_measure(name, granularity)

    def emit(self, name, key, value) -> None:
        lifted = self._lift[name]
        component = key[self._dim]
        if lifted is not None:
            component = lifted(component)
        if self._lo <= component < self._hi:
            self._inner.emit(name, key, value)


class PartitionedEngine(Engine):
    """Range-partitioned, optionally parallel, sort/scan evaluation.

    Args:
        partition_dim: Dimension (index or name) to partition on;
            defaults to the leading dimension of the sort key.
        num_partitions: Target partition count (actual count may be
            lower when the dimension has few distinct values).
        sort_key: Sort key for the per-partition passes.
        parallel: Evaluate partitions on a thread pool.
        run_size: External-sort run size per partition.
    """

    name = "partitioned"

    def __init__(
        self,
        partition_dim: Optional[object] = None,
        num_partitions: int = 4,
        sort_key: Optional[SortKey] = None,
        parallel: bool = False,
        run_size: int = 200_000,
    ) -> None:
        if num_partitions < 1:
            raise PlanError("need at least one partition")
        self.partition_dim = partition_dim
        self.num_partitions = num_partitions
        self.sort_key = sort_key
        self.parallel = parallel
        self.run_size = run_size

    def _resolve_dim(self, graph: CompiledGraph, sort_key: SortKey) -> int:
        if self.partition_dim is None:
            return sort_key.parts[0][0]
        if isinstance(self.partition_dim, int):
            return self.partition_dim
        return graph.schema.dim_index(self.partition_dim)

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        sort_key = self.sort_key or default_sort_key(graph)
        dim = self._resolve_dim(graph, sort_key)
        level = partition_level(graph, dim)
        schema = graph.schema
        value_fn = schema.dimensions[dim].hierarchy.mapper(0, level)

        def partition_value(record, _fn=value_fn, _dim=dim):
            return record[_dim] if _fn is None else _fn(record[_dim])

        # Boundary selection: split the observed distinct partition
        # values into contiguous chunks.
        distinct = sorted({partition_value(r) for r in dataset.scan()})
        if not distinct:
            return  # empty dataset: nothing to emit
        count = min(self.num_partitions, len(distinct))
        boundaries = [
            distinct[(len(distinct) * i) // count] for i in range(count)
        ]
        boundaries.append(distinct[-1] + 1)

        before, after = window_reach(graph, dim, level)
        stats.notes = (
            f"{count} partitions on "
            f"{schema.dimensions[dim].name}@"
            f"{schema.dimensions[dim].hierarchy.domain(level).name}, "
            f"margin=({before},{after}), sort_key={sort_key!r}"
        )

        def run_partition(index: int):
            lo = boundaries[index]
            hi = boundaries[index + 1]
            read_lo = lo - before
            read_hi = hi + after
            slice_ds = _SliceDataset(
                dataset, partition_value, read_lo, read_hi
            )
            partial = MemorySink()
            ranged = _RangeSink(partial, dim, level, lo, hi, graph)
            engine = SortScanEngine(
                sort_key=sort_key, run_size=self.run_size
            )
            result = engine.evaluate(slice_ds, graph, sink=ranged)
            return partial, result.stats

        if self.parallel and count > 1:
            with ThreadPoolExecutor(max_workers=count) as pool:
                outcomes = list(pool.map(run_partition, range(count)))
        else:
            outcomes = [run_partition(i) for i in range(count)]

        for partial, partial_stats in outcomes:
            stats.rows_scanned += partial_stats.rows_scanned
            stats.scans += partial_stats.scans
            stats.sort_seconds += partial_stats.sort_seconds
            stats.scan_seconds += partial_stats.scan_seconds
            stats.peak_entries = max(
                stats.peak_entries, partial_stats.peak_entries
            )
            stats.flushed_entries += partial_stats.flushed_entries
            for name, table in partial.tables.items():
                for key, value in table.rows.items():
                    sink.emit(name, key, value)
        stats.passes = count
