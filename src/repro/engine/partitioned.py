"""Partitioned (parallelizable) evaluation — the paper's future work.

Section 1: "the approach offers potentially unlimited parallelism and
ability to distribute computation, but our current implementation does
not take advantage of these opportunities."  This engine takes the
steps the paper's language was designed for: range-partition the cube
space along one dimension, evaluate each partition with an independent
one-pass sort/scan, and concatenate the (provably disjoint) results —
optionally on a pool of worker *processes*, i.e. true shared-nothing
parallel evaluation unconstrained by the GIL.

Design:

- The **partition dimension** is range-partitioned at the *coarsest*
  level any measure uses for it, so every region of every measure falls
  entirely inside one partition.  Workflows where some measure holds
  the partition dimension at ``D_ALL`` are rejected — those regions
  would span partitions and need cross-partition state merging, which
  is exactly the distributed-aggregation problem the paper defers.
- Sibling windows and lag sets that cross partition boundaries are
  handled with **margin replication**: each partition also *reads*
  records within the workflow's accumulated window reach beyond its
  boundary, but only *emits* regions inside its own range.  The reach
  is derived per node by walking the evaluation graph's arcs (the same
  information the watermark slack uses).
- Partitions are independent.  ``parallel`` selects the execution
  substrate: ``"serial"`` runs them one after another (bounding memory
  without concurrency), ``"threads"`` uses a thread pool (GIL-bound in
  CPython, but zero serialization cost), and ``"processes"`` spawns one
  OS process per partition for real CPU parallelism.
- Process workers are **shared-nothing**: each receives a picklable
  :class:`_ProcessTask` — the source workflow (the serializable plan
  spec; the compiled graph's closures cannot be pickled, so workers
  recompile), the sort-key parts, and either its pre-bucketed record
  slice or the base dataset plus read bounds.  Workers return plain
  ``{measure: {key: value}}`` row dicts plus their
  :class:`~repro.engine.interfaces.EvalStats`; the parent merges the
  provably disjoint tables and accumulates the stats (keeping each
  worker's sort/scan breakdown in ``stats.workers``).
- Anything that cannot be pickled (a lambda combine function, a graph
  compiled without a source workflow, an exotic dataset) triggers a
  **graceful fallback to serial in-process evaluation**; the reason is
  recorded in ``stats.notes`` so the degradation is observable.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Iterator

from repro.errors import PlanError
from repro.algebra.conditions import Lags, Sibling
from repro.cube.order import SortKey
from repro.engine.compile import BasicNode, CompiledGraph, compile_workflow
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.sort_scan import SortScanEngine, default_sort_key
from repro.obs import (
    get_registry,
    get_tracer,
    reset_registry,
    telemetry_forced,
)
from repro.storage.sink import MemorySink, Sink
from repro.storage.table import Dataset, InMemoryDataset
from repro.testkit.failpoints import fire, register

#: Accepted values of the ``parallel`` knob.
PARALLEL_MODES = ("serial", "threads", "processes")

FP_WORKER = register(
    "partitioned.worker", "engine",
    "inside a shared-nothing process worker, before its partition scan",
)


def normalize_parallel_mode(parallel) -> str:
    """Resolve the ``parallel`` knob to one of :data:`PARALLEL_MODES`.

    Booleans are accepted for backward compatibility with the original
    thread-pool-only engine: ``True`` means ``"threads"``, ``False``
    means ``"serial"``.
    """
    if parallel is True:
        return "threads"
    if parallel is False or parallel is None:
        return "serial"
    if parallel in PARALLEL_MODES:
        return parallel
    raise PlanError(
        f"unknown parallel mode {parallel!r}; "
        f"expected one of {PARALLEL_MODES}"
    )


def default_partition_count(cap: int = 16) -> int:
    """CPU-aware partition-count heuristic.

    One partition per available core, clamped to ``[2, cap]``: fewer
    than two partitions defeats the point of partitioning even on a
    single-core box (smaller per-pass working sets), while far more
    partitions than cores only multiplies margin re-reads.
    """
    return max(2, min(os.cpu_count() or 1, cap))


def partition_level(graph: CompiledGraph, dim: int) -> int:
    """The coarsest non-ALL level of ``dim`` across all measures.

    Raises:
        PlanError: if any node holds ``dim`` at ``D_ALL`` (its regions
            would span partitions).
    """
    schema = graph.schema
    all_level = schema.dimensions[dim].all_level
    coarsest = 0
    for node in graph.nodes:
        level = node.granularity.levels[dim]
        if level == all_level:
            raise PlanError(
                f"measure {node.name!r} aggregates dimension "
                f"{schema.dimensions[dim].name!r} to ALL; its regions "
                f"span partitions (cross-partition merging is not "
                f"supported — pick another partition dimension)"
            )
        coarsest = max(coarsest, level)
    return coarsest


def window_reach(
    graph: CompiledGraph, dim: int, level: int
) -> tuple[int, int]:
    """Accumulated (backward, forward) window reach on ``dim``.

    Walks the evaluation graph in topological order, accumulating
    sibling/lag extents along every arc path.  To keep units coherent
    across mixed-level chains, all extents are tracked in *base-domain*
    units (a window of ``w`` steps at level ``l`` spans at most
    ``(w + 1) * fanout(base, l)`` base values, the ``+1`` covering
    alignment) and converted to ``level`` units only at the end,
    rounding up with one extra unit of slop.  Over-estimating the
    margin costs a few duplicate reads; under-estimating would corrupt
    boundary regions, so every conversion rounds conservatively.
    """
    schema = graph.schema
    hierarchy = schema.dimensions[dim].hierarchy

    def to_base(extent: int, at_level: int) -> int:
        if extent <= 0:
            return 0
        if at_level == 0:
            return extent
        return (extent + 1) * hierarchy.fanout(0, at_level)

    reach: dict[str, tuple[int, int]] = {}  # in base units
    for node in graph.nodes:
        if isinstance(node, BasicNode):
            reach[node.name] = (0, 0)
            continue
        before = after = 0
        for arc in node.in_arcs:
            src_before, src_after = reach[arc.src.name]
            arc_level = node.granularity.levels[dim]
            arc_before = arc_after = 0
            if isinstance(arc.cond, Sibling):
                windows = arc.cond.resolve(schema)
                if dim in windows:
                    w_before, w_after = windows[dim]
                    arc_before = to_base(max(0, w_before), arc_level)
                    arc_after = to_base(max(0, w_after), arc_level)
            elif isinstance(arc.cond, Lags):
                offsets = arc.cond.resolve(schema)
                if dim in offsets:
                    deltas = offsets[dim]
                    arc_before = to_base(max(0, -min(deltas)), arc_level)
                    arc_after = to_base(max(0, max(deltas)), arc_level)
            before = max(before, src_before + arc_before)
            after = max(after, src_after + arc_after)
        reach[node.name] = (before, after)

    base_before = max(b for b, __ in reach.values())
    base_after = max(a for __, a in reach.values())
    unit = 1 if level == 0 else max(1, hierarchy.fanout(0, level))

    def to_level(base_extent: int) -> int:
        if base_extent <= 0:
            return 0
        return -(-base_extent // unit) + 1

    return to_level(base_before), to_level(base_after)


class _SliceDataset(Dataset):
    """A dataset view: records whose partition value is in a range.

    Built from ``(dim, level)`` rather than a compiled value function so
    instances can be constructed inside worker processes from picklable
    parts.
    """

    def __init__(self, base: Dataset, dim: int, level: int, lo, hi) -> None:
        self.schema = base.schema
        self._base = base
        self._dim = dim
        self._map = base.schema.dimensions[dim].hierarchy.mapper(0, level)
        self._lo = lo
        self._hi = hi
        self._count: int | None = None

    def scan(self) -> Iterator[tuple]:
        lo, hi, dim, fn = self._lo, self._hi, self._dim, self._map
        if fn is None:
            for record in self._base.scan():
                if lo <= record[dim] < hi:
                    yield record
        else:
            for record in self._base.scan():
                if lo <= fn(record[dim]) < hi:
                    yield record

    def __len__(self) -> int:
        if self._count is None:
            self._count = sum(1 for __ in self.scan())
        return self._count


class _RangeSink(Sink):
    """Forwards only regions owned by this partition."""

    def __init__(
        self, inner: Sink, dim: int, level: int, lo, hi, graph
    ) -> None:
        self._inner = inner
        self._dim = dim
        self._lo = lo
        self._hi = hi
        schema = graph.schema
        hierarchy = schema.dimensions[dim].hierarchy
        self._lift = {}
        for name, (node, __) in graph.outputs.items():
            node_level = node.granularity.levels[dim]
            self._lift[name] = hierarchy.mapper(node_level, level)

    def open_measure(self, name, granularity) -> None:
        self._inner.open_measure(name, granularity)

    def emit(self, name, key, value) -> None:
        lifted = self._lift[name]
        component = key[self._dim]
        if lifted is not None:
            component = lifted(component)
        if self._lo <= component < self._hi:
            self._inner.emit(name, key, value)


class _UnpicklablePlan(Exception):
    """Raised when a plan/task cannot be shipped to worker processes."""


@dataclass
class _PartitionRange:
    """One partition's owned range and (margin-extended) read range."""

    lo: object
    hi: object
    read_lo: object
    read_hi: object


@dataclass
class _ProcessTask:
    """Everything one worker process needs, as picklable state.

    The whole task is pickled as a single object so pickle's memo
    preserves sharing: the workflow, the shipped records/dataset, and
    the sort-key parts all resolve to *one* schema copy inside the
    worker, keeping identity-based checks coherent there.
    """

    workflow: object
    sort_parts: tuple
    run_size: int
    dim: int
    level: int
    span: _PartitionRange
    #: Pre-bucketed record slice (in-memory datasets)…
    records: list | None = None
    #: …or the base dataset for worker-side slicing (file-backed ones).
    dataset: Dataset | None = None
    #: Record spans in the worker and ship them back with the result
    #: (set when the parent's tracer is enabled).
    trace: bool = False


def _evaluate_partition(payload: bytes):
    """Worker entry point: evaluate one partition, shared-nothing.

    Takes the pickled :class:`_ProcessTask`, recompiles the workflow
    (closures never cross the process boundary), runs an independent
    one-pass sort/scan over the partition's slice, and returns plain
    ``({measure: {key: value}}, stats_dict, trace_events,
    metrics_dict)`` data — everything JSON-safe/picklable, so the
    parent can reassemble the run's full telemetry.
    """
    task: _ProcessTask = pickle.loads(payload)
    fire(FP_WORKER)
    # Fork-started workers inherit the parent's recorded events and
    # metric values; both must be cleared or absorbing/merging in the
    # parent would double-count them.
    tracer = get_tracer()
    tracer.reset()
    tracer.enabled = task.trace or telemetry_forced()
    registry = reset_registry()
    workflow = task.workflow
    graph = compile_workflow(workflow)
    schema = workflow.schema
    span = task.span
    if task.records is not None:
        slice_ds: Dataset = InMemoryDataset(schema, task.records)
    else:
        slice_ds = _SliceDataset(
            task.dataset, task.dim, task.level, span.read_lo, span.read_hi
        )
    partial = MemorySink()
    ranged = _RangeSink(
        partial, task.dim, task.level, span.lo, span.hi, graph
    )
    engine = SortScanEngine(
        sort_key=SortKey(schema, task.sort_parts), run_size=task.run_size
    )
    with tracer.span(
        "partition", cat="engine", lo=repr(span.lo), hi=repr(span.hi)
    ):
        # Publishing stays on: the worker's registry is fresh, so it
        # carries exactly this partition's run for the parent to merge.
        result = engine.evaluate(slice_ds, graph, sink=ranged)
    rows = {name: table.rows for name, table in partial.tables.items()}
    return (
        rows,
        result.stats.to_dict(),
        tracer.take_events(),
        registry.to_dict(),
    )


class PartitionedEngine(Engine):
    """Range-partitioned, optionally parallel, sort/scan evaluation.

    Args:
        partition_dim: Dimension (index or name) to partition on;
            defaults to the leading dimension of the sort key.
        num_partitions: Target partition count (actual count may be
            lower when the dimension has few distinct values).  ``None``
            picks a CPU-aware default (:func:`default_partition_count`).
        sort_key: Sort key for the per-partition passes.
        parallel: ``"serial"`` | ``"threads"`` | ``"processes"``
            (booleans accepted: ``True`` → threads, ``False`` → serial).
            Process mode requires the plan and data slices to be
            picklable and falls back to serial — noting why in
            ``stats.notes`` — when they are not.
        run_size: External-sort run size per partition.
        max_workers: Concurrency cap for the thread/process pool;
            defaults to one worker per partition (processes additionally
            clamp to the CPU count).
    """

    name = "partitioned"

    def __init__(
        self,
        partition_dim: object | None = None,
        num_partitions: int | None = None,
        sort_key: SortKey | None = None,
        parallel="serial",
        run_size: int = 200_000,
        max_workers: int | None = None,
    ) -> None:
        if num_partitions is not None and num_partitions < 1:
            raise PlanError("need at least one partition")
        self.partition_dim = partition_dim
        self.num_partitions = num_partitions
        self.sort_key = sort_key
        self.parallel = normalize_parallel_mode(parallel)
        self.run_size = run_size
        self.max_workers = max_workers

    def _resolve_dim(self, graph: CompiledGraph, sort_key: SortKey) -> int:
        if self.partition_dim is None:
            return sort_key.parts[0][0]
        if isinstance(self.partition_dim, int):
            return self.partition_dim
        return graph.schema.dim_index(self.partition_dim)

    # -- process-mode task construction ---------------------------------

    def _build_payloads(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        spans: list[_PartitionRange],
        sort_key: SortKey,
        dim: int,
        level: int,
        partition_value,
    ) -> list[bytes]:
        """Pickle one :class:`_ProcessTask` per partition.

        Raises:
            _UnpicklablePlan: when the workflow is unknown or any part
                of a task refuses to pickle — callers fall back to
                in-process evaluation.
        """
        workflow = getattr(graph, "workflow", None)
        if workflow is None:
            raise _UnpicklablePlan(
                "compiled graph has no source workflow to ship"
            )
        trace = get_tracer().enabled
        tasks = []
        if isinstance(dataset, InMemoryDataset):
            # Shared-nothing bucketing: one parent scan assigns each
            # record to every partition whose read range covers it
            # (margins make boundary records members of several).
            buckets: list[list] = [[] for __ in spans]
            for record in dataset.records:
                value = partition_value(record)
                for index, span in enumerate(spans):
                    if span.read_lo <= value < span.read_hi:
                        buckets[index].append(record)
            for span, bucket in zip(spans, buckets):
                tasks.append(
                    _ProcessTask(
                        workflow,
                        sort_key.parts,
                        self.run_size,
                        dim,
                        level,
                        span,
                        records=bucket,
                        trace=trace,
                    )
                )
        else:
            # File-backed (or otherwise external) datasets ship by
            # reference; each worker scans and filters its own slice.
            for span in spans:
                tasks.append(
                    _ProcessTask(
                        workflow,
                        sort_key.parts,
                        self.run_size,
                        dim,
                        level,
                        span,
                        dataset=dataset,
                        trace=trace,
                    )
                )
        try:
            return [pickle.dumps(task) for task in tasks]
        except Exception as exc:  # pickle raises a zoo of types
            raise _UnpicklablePlan(
                f"plan is not picklable: {type(exc).__name__}: {exc}"
            ) from exc

    # -- top level -------------------------------------------------------

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        sort_key = self.sort_key or default_sort_key(graph)
        dim = self._resolve_dim(graph, sort_key)
        level = partition_level(graph, dim)
        schema = graph.schema
        value_fn = schema.dimensions[dim].hierarchy.mapper(0, level)

        def partition_value(record, _fn=value_fn, _dim=dim):
            return record[_dim] if _fn is None else _fn(record[_dim])

        # Boundary selection: split the observed distinct partition
        # values into contiguous chunks.
        distinct = sorted({partition_value(r) for r in dataset.scan()})
        if not distinct:
            return  # empty dataset: nothing to emit
        wanted = self.num_partitions or default_partition_count()
        count = min(wanted, len(distinct))
        boundaries = [
            distinct[(len(distinct) * i) // count] for i in range(count)
        ]
        boundaries.append(distinct[-1] + 1)

        before, after = window_reach(graph, dim, level)
        spans = [
            _PartitionRange(
                boundaries[i],
                boundaries[i + 1],
                boundaries[i] - before,
                boundaries[i + 1] + after,
            )
            for i in range(count)
        ]

        mode = self.parallel
        fallback = ""
        outcomes = None
        if mode == "processes" and count > 1:
            try:
                payloads = self._build_payloads(
                    dataset, graph, spans, sort_key, dim, level,
                    partition_value,
                )
            except _UnpicklablePlan as exc:
                mode = "serial"
                fallback = f"; fell back to serial: {exc}"
            else:
                workers = min(
                    count, self.max_workers or os.cpu_count() or count
                )
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(
                        pool.map(_evaluate_partition, payloads)
                    )
        elif mode == "processes":
            mode = "serial"  # a single partition needs no pool

        if outcomes is None:

            tracer = get_tracer()

            def run_partition(index: int):
                span = spans[index]
                slice_ds = _SliceDataset(
                    dataset, dim, level, span.read_lo, span.read_hi
                )
                partial = MemorySink()
                ranged = _RangeSink(
                    partial, dim, level, span.lo, span.hi, graph
                )
                engine = SortScanEngine(
                    sort_key=sort_key, run_size=self.run_size
                )
                with tracer.span(
                    "partition",
                    cat="engine",
                    index=index,
                    lo=repr(span.lo),
                    hi=repr(span.hi),
                ):
                    # In-process sub-runs don't publish: the parent
                    # publishes the merged stats once.
                    result = engine.evaluate(
                        slice_ds, graph, sink=ranged,
                        publish_metrics=False,
                    )
                rows = {
                    name: table.rows
                    for name, table in partial.tables.items()
                }
                return rows, result.stats

            if mode == "threads" and count > 1:
                workers = min(count, self.max_workers or count)
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(run_partition, range(count)))
            else:
                outcomes = [run_partition(i) for i in range(count)]

        stats.notes = (
            f"{count} partitions on "
            f"{schema.dimensions[dim].name}@"
            f"{schema.dimensions[dim].hierarchy.domain(level).name}, "
            f"margin=({before},{after}), mode={mode}, "
            f"sort_key={sort_key!r}{fallback}"
        )

        # Merge: tables are disjoint by construction, so emission order
        # between partitions is irrelevant; stats accumulate via
        # EvalStats.merge (each sub-run counts one pass; counters add,
        # peaks take the per-process maximum) with the per-worker
        # breakdown kept for inspection.  Process workers additionally
        # ship their trace events and metric samples, which fold into
        # the parent's tracer and registry here.
        tracer = get_tracer()
        registry = get_registry()
        workers_published = False
        stats.passes = 0
        parent_notes, stats.notes = stats.notes, ""
        for outcome in outcomes:
            rows_by_name, partial_stats = outcome[0], outcome[1]
            if isinstance(partial_stats, dict):
                partial_stats = EvalStats.from_dict(partial_stats)
            if len(outcome) > 2:
                events, metric_samples = outcome[2], outcome[3]
                if events:
                    tracer.absorb(events)
                if metric_samples:
                    registry.merge_dict(metric_samples)
                    workers_published = True
            stats.merge(partial_stats)
            stats.workers.append(partial_stats)
            for name, rows in rows_by_name.items():
                for key, value in rows.items():
                    sink.emit(name, key, value)
        # The parent's own note stays authoritative (worker notes are
        # per-partition sort keys, already summarized in it).
        stats.notes = parent_notes
        if workers_published:
            # Each worker already published its run into its own
            # registry (now merged above); Engine.evaluate must not
            # publish the merged stats a second time.
            stats.published_by_workers = True
