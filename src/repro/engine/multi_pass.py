"""Multi-pass Sort/Scan evaluation (Section 5.3, "Multi-Pass Sort/Scan").

When the intermediate state of a query does not fit in memory under any
single sort order, the dataset is sorted and scanned several times,
each pass with its own key and its own subset of measures.  Composite
measures whose inputs are produced by different passes are materialized
per pass and combined afterwards with ordinary (relational) evaluation,
exactly as the paper prescribes.
"""

from __future__ import annotations


from repro.engine.compile import (
    Arc,
    BasicNode,
    CombineNode,
    CompiledGraph,
    CompositeNode,
    Node,
)
from repro.engine.interfaces import Engine, EvalStats
from repro.engine.semantics import eval_node_from_tables
from repro.obs import get_tracer
from repro.engine.sort_scan import SortScanEngine
from repro.optimizer.greedy import MultiPassPlan, plan_passes
from repro.storage.sink import MemorySink, Sink
from repro.storage.table import Dataset


def extract_subgraph(
    graph: CompiledGraph, node_names: list[str]
) -> CompiledGraph:
    """A self-contained copy of the named nodes and their mutual arcs.

    Every node in the subgraph is reported as an output (no emission
    filter) so that one pass materializes everything later passes or
    the post-combination phase might need.
    """
    wanted = set(node_names)
    clones: dict[str, Node] = {}
    ordered: list[Node] = []
    for node in graph.nodes:
        if node.name not in wanted:
            continue
        if isinstance(node, BasicNode):
            clone: Node = BasicNode(
                node.name,
                node.granularity,
                node.agg,
                record_filter=node.record_filter,
                value_index=node.value_index,
            )
        elif isinstance(node, CombineNode):
            clone = CombineNode(
                node.name, node.granularity, node.fn, node.num_inputs
            )
        elif isinstance(node, CompositeNode):
            clone = CompositeNode(
                node.name, node.granularity, node.agg, cond=node.cond
            )
        else:  # pragma: no cover - only three node kinds exist
            raise TypeError(f"unknown node type {node!r}")
        clones[node.name] = clone
        ordered.append(clone)
    for node in graph.nodes:
        if node.name not in wanted:
            continue
        for arc in node.in_arcs:
            if arc.src.name not in wanted:
                continue
            clone_arc = Arc(
                clones[arc.src.name],
                clones[node.name],
                arc.role,
                index=arc.index,
                entry_filter=arc.filter,
                cond=arc.cond,
            )
            clones[arc.src.name].out_arcs.append(clone_arc)
            clones[node.name].in_arcs.append(clone_arc)
    outputs = {name: (clones[name], None) for name in clones}
    return CompiledGraph(graph.schema, ordered, outputs)


class MultiPassEngine(Engine):
    """Several Sort/Scan iterations under a per-pass memory budget.

    Args:
        memory_budget_entries: Per-pass resident-entry budget handed to
            the greedy planner *and* enforced at run time by each
            pass's :class:`SortScanEngine`.
        plan: An explicit :class:`MultiPassPlan` to execute, bypassing
            the planner (used by tests and ablations).
        run_size: External-sort run size for the passes.
    """

    name = "multi-pass"

    def __init__(
        self,
        memory_budget_entries: int | None = None,
        plan: MultiPassPlan | None = None,
        run_size: int = 200_000,
    ) -> None:
        self.memory_budget_entries = memory_budget_entries
        self.plan = plan
        self.run_size = run_size

    def _run(
        self,
        dataset: Dataset,
        graph: CompiledGraph,
        sink: Sink,
        stats: EvalStats,
    ) -> None:
        try:
            dataset_size: int | None = len(dataset)
        except (TypeError, NotImplementedError):
            dataset_size = None
        plan = self.plan or plan_passes(
            graph,
            memory_budget_entries=self.memory_budget_entries,
            dataset_size=dataset_size,
        )
        # Each sub-run arrives with ``passes == 1`` and merge()
        # accumulates them, so the parent starts from zero.
        stats.passes = 0
        stats.notes = (
            f"{plan.num_passes} passes, {len(plan.deferred)} deferred"
        )

        tracer = get_tracer()
        tables: dict[str, dict] = {}
        for index, pass_plan in enumerate(plan.passes):
            with tracer.span(
                f"pass:{index}",
                cat="engine",
                nodes=len(pass_plan.node_names),
            ):
                subgraph = extract_subgraph(graph, pass_plan.node_names)
                # The budget is the *planning* objective; per the paper,
                # footprint estimates "will not impact the correctness of
                # the evaluation algorithm", so passes are not killed when
                # an estimate proves optimistic — the true peak is
                # reported in the stats instead.
                engine = SortScanEngine(
                    sort_key=pass_plan.sort_key,
                    run_size=self.run_size,
                )
                pass_sink = MemorySink()
                result = engine.evaluate(
                    dataset, subgraph, sink=pass_sink,
                    publish_metrics=False,
                )
                stats.merge(result.stats)
                for name, table in pass_sink.tables.items():
                    tables[name] = table.rows

        # Post-combination: deferred nodes from materialized tables
        # ("traditional join strategies").
        by_name = {node.name: node for node in graph.nodes}
        with tracer.span("post-combine", cat="engine"):
            for name in plan.deferred:
                node = by_name[name]
                tables[name] = eval_node_from_tables(node, tables, dataset)

        for name, (node, out_filter) in graph.outputs.items():
            for key, value in tables[node.name].items():
                if out_filter is None or out_filter(key, value):
                    sink.emit(name, key, value)
