"""Categorical hierarchies with an imposed order (Proposition 1).

Some dimension attributes (cities, product categories, sensor names)
have no natural total order compatible with generalization.  The paper
observes that for a linear hierarchy one can always *encode* extended-
domain values so that such an order exists: "we can encode the values in
the extended domain so as to impose such an ordering over the encoded
domain".

:class:`CategoricalHierarchy` realizes that encoding.  Callers describe
each base value by its full ancestor chain (base, level1, ..., levelK).
We sort chains lexicographically and assign dense integer codes in that
order, level by level; every parent then covers a contiguous code range
of children, so generalization (a code-range lookup) is monotone and
Proposition 1 holds for the encoded domain.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable, Sequence

from repro.errors import DomainError, SchemaError
from repro.schema.domain import Hierarchy


class CategoricalHierarchy(Hierarchy):
    """A linear hierarchy over labelled values, integer-encoded.

    Args:
        domain_names: Names of the non-ALL domains, base first (e.g.
            ``["City", "State", "Country"]``).
        chains: One ancestor chain per base value, each of length
            ``len(domain_names)``: ``(city, state, country)``.  The same
            base label may not appear under two different parents (the
            paper assumes no overlap between domains).

    Use :meth:`encode` to turn labels into record integers and
    :meth:`decode` to recover the label of any encoded value.
    """

    def __init__(
        self,
        domain_names: Sequence[str],
        chains: Sequence[Sequence[Hashable]],
    ) -> None:
        super().__init__(domain_names)
        depth = len(domain_names)
        if not chains:
            raise SchemaError("need at least one value chain")
        for chain in chains:
            if len(chain) != depth:
                raise SchemaError(
                    f"chain {chain!r} has length {len(chain)}, "
                    f"expected {depth}"
                )
        seen_base: dict[Hashable, tuple] = {}
        for chain in chains:
            prior = seen_base.get(chain[0])
            if prior is not None and tuple(chain) != prior:
                raise SchemaError(
                    f"base value {chain[0]!r} appears with two different "
                    f"ancestor chains"
                )
            seen_base[chain[0]] = tuple(chain)
        # Consistency check: each label must map to a single parent
        # (gamma must be a function, Section 2.1).
        for level in range(0, depth - 1):
            child_parent: dict[Hashable, Hashable] = {}
            for chain in chains:
                child, parent = chain[level], chain[level + 1]
                if child_parent.setdefault(child, parent) != parent:
                    raise SchemaError(
                        f"value {child!r} at level {level} has two parents"
                    )

        # Sort by reversed chain (coarsest first) so that every parent's
        # children receive a contiguous block of codes.
        ordered = sorted(
            {tuple(chain) for chain in chains},
            key=lambda c: tuple(repr(part) for part in reversed(c)),
        )
        # Per level: label -> code and code -> label.
        self._encode: list[dict[Hashable, int]] = [{} for __ in range(depth)]
        self._decode: list[list[Hashable]] = [[] for __ in range(depth)]
        # For each level > 0, the starting base-code of each parent code,
        # used for monotone range-lookup generalization.
        self._level_starts: list[list[int]] = [[] for __ in range(depth)]
        for chain in ordered:
            base_code = len(self._decode[0])
            for level in range(depth - 1, -1, -1):
                label = chain[level]
                if label not in self._encode[level]:
                    self._encode[level][label] = len(self._decode[level])
                    self._decode[level].append(label)
                    self._level_starts[level].append(base_code)
        self._num_base = len(self._decode[0])

    # -- label <-> code ------------------------------------------------

    def encode(self, label: Hashable, level: int = 0) -> int:
        """Integer code of ``label`` in the domain at ``level``."""
        self._check_level(level)
        if level == self.all_level:
            return 0
        try:
            return self._encode[level][label]
        except KeyError:
            raise DomainError(
                f"unknown label {label!r} at level {level}"
            ) from None

    def decode(self, code: int, level: int = 0) -> Hashable:
        """Label of integer ``code`` in the domain at ``level``."""
        self._check_level(level)
        if level == self.all_level:
            return "ALL"
        try:
            return self._decode[level][code]
        except IndexError:
            raise DomainError(
                f"code {code} out of range at level {level}"
            ) from None

    # -- Hierarchy interface --------------------------------------------

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        if not 0 <= value < self._num_base:
            raise DomainError(f"base code {value} out of range")
        return bisect_right(self._level_starts[to_level], value) - 1

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:
        # Go via the base range start of the intermediate value; the
        # construction guarantees consistency.
        base_start = self._level_starts[from_level][value]
        return self._generalize_from_base(base_start, to_level)

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        if coarse_level < fine_level:
            raise DomainError("coarse_level must be >= fine_level")
        if fine_level == coarse_level:
            return 1
        fine_n = self.level_cardinality(fine_level)
        coarse_n = self.level_cardinality(coarse_level)
        return max(1, round(fine_n / coarse_n))

    def level_cardinality(self, level: int) -> int:
        self._check_level(level)
        if level == self.all_level:
            return 1
        return len(self._decode[level])

    def format_value(self, value: int, level: int) -> str:
        if level == self.all_level:
            return "ALL"
        return str(self.decode(value, level))
