"""Synthetic uniform hierarchies (paper Section 7.1).

The paper's synthetic workload uses four dimension attributes that share
one hierarchy shape: four domains ``D1 <_D D2 <_D D3 <_D D4 = D_ALL``
where "any value in any domain will cover 10 distinct values of its
sub-domain".  :class:`UniformHierarchy` generalizes this to an arbitrary
number of levels and an arbitrary fan-out: generalizing one level up is
integer division by the fan-out, which is monotone, so Proposition 1
holds trivially.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.domain import Hierarchy, Mapper


class UniformHierarchy(Hierarchy):
    """A linear hierarchy where each level divides values by ``fanout``.

    Args:
        name: Dimension-ish prefix used to name the domains
            (``name.L0``, ``name.L1``, ...).
        levels: Number of domains *excluding* ``D_ALL``.  The paper's
            synthetic setting is ``levels=3`` plus ``D_ALL`` on top
            (``D1 <_D D2 <_D D3 <_D D_ALL``).
        fanout: How many child values map to one parent value.
        base_cardinality: Number of distinct base values; defaults to
            ``fanout ** levels`` so that the top non-ALL domain has
            ``fanout`` values.
    """

    def __init__(
        self,
        name: str,
        levels: int = 3,
        fanout: int = 10,
        base_cardinality: int | None = None,
    ) -> None:
        if levels < 1:
            raise SchemaError("need at least one non-ALL level")
        if fanout < 2:
            raise SchemaError("fanout must be at least 2")
        super().__init__([f"{name}.L{i}" for i in range(levels)])
        self._fanout = fanout
        if base_cardinality is None:
            base_cardinality = fanout**levels
        if base_cardinality < 1:
            raise SchemaError("base_cardinality must be positive")
        self._base_cardinality = base_cardinality

    @property
    def per_level_fanout(self) -> int:
        """The fan-out between two adjacent levels."""
        return self._fanout

    @property
    def base_cardinality(self) -> int:
        """Number of distinct values in the base domain."""
        return self._base_cardinality

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        return value // (self._fanout**to_level)

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:
        return value // (self._fanout ** (to_level - from_level))

    def _mapper(self, from_level: int, to_level: int) -> Mapper:
        divisor = self._fanout ** (to_level - from_level)
        return lambda value: value // divisor

    def array_mapper(self, from_level: int, to_level: int) -> Mapper | None:
        """Vectorized form of :meth:`_mapper`: ``column // divisor``
        works unchanged on numpy int64 arrays."""
        self._check_level(from_level)
        self._check_level(to_level)
        divisor = self._fanout ** (to_level - from_level)
        return lambda column: column // divisor

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        self._check_level(fine_level)
        self._check_level(coarse_level)
        if coarse_level < fine_level:
            raise SchemaError("coarse_level must be >= fine_level")
        if coarse_level == self.all_level:
            return self.level_cardinality(fine_level)
        return self._fanout ** (coarse_level - fine_level)

    def level_cardinality(self, level: int) -> int:
        self._check_level(level)
        if level == self.all_level:
            return 1
        return max(1, self._base_cardinality // (self._fanout**level))
