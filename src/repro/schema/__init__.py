"""Dimension schemas, domains, and domain-generalization hierarchies.

This package implements Section 2 of the paper: base domains, domain
generalization (the ``<_D`` partial order), value generalization
functions (``gamma``), extended domains, and the integer encoding of
Proposition 1 that gives every linear hierarchy a total order compatible
with generalization.
"""

from repro.schema.domain import ALL_VALUE, Domain, Hierarchy
from repro.schema.numeric_hierarchy import UniformHierarchy
from repro.schema.time_hierarchy import TimeHierarchy
from repro.schema.ip_hierarchy import IPv4Hierarchy, format_ip, parse_ip
from repro.schema.port_hierarchy import PortHierarchy
from repro.schema.categorical_hierarchy import CategoricalHierarchy
from repro.schema.dimension import Dimension
from repro.schema.dataset_schema import (
    DatasetSchema,
    network_log_schema,
    synthetic_schema,
)

__all__ = [
    "ALL_VALUE",
    "Domain",
    "Hierarchy",
    "UniformHierarchy",
    "TimeHierarchy",
    "IPv4Hierarchy",
    "PortHierarchy",
    "CategoricalHierarchy",
    "Dimension",
    "DatasetSchema",
    "network_log_schema",
    "synthetic_schema",
    "format_ip",
    "parse_ip",
]
