"""Dataset schemas: the dimension vector plus measure attributes.

A record of a dataset with ``d`` dimensions and ``m`` measure attributes
is a flat tuple ``(x_1, ..., x_d, m_1, ..., m_m)`` where every ``x_i``
is an integer in the base domain of dimension ``i`` (Section 2 of the
paper) and measures are numbers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.errors import SchemaError
from repro.schema.dimension import Dimension
from repro.schema.ip_hierarchy import IPv4Hierarchy
from repro.schema.numeric_hierarchy import UniformHierarchy
from repro.schema.port_hierarchy import PortHierarchy
from repro.schema.time_hierarchy import TimeHierarchy

Record = tuple[Any, ...]  # (dim values..., measure values...)


class DatasetSchema:
    """Schema of a multidimensional fact table.

    Args:
        dimensions: The dimension vector ``X = (X_1, ..., X_d)``.
        measures: Names of measure attributes (may be empty — the
            Dshield dataset of the paper has none; ``count(*)`` style
            aggregations still work).
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        measures: Sequence[str] = (),
    ) -> None:
        if not dimensions:
            raise SchemaError("a schema needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in {names}")
        if len(set(measures)) != len(measures):
            raise SchemaError(f"duplicate measure names in {measures}")
        overlap = set(names) & set(measures)
        if overlap:
            raise SchemaError(
                f"names used as both dimension and measure: {sorted(overlap)}"
            )
        self.dimensions = tuple(dimensions)
        self.measures = tuple(measures)
        self._dim_index = {d.name: i for i, d in enumerate(self.dimensions)}
        for i, dim in enumerate(self.dimensions):
            # Abbreviations resolve too, as in the paper's t/U/T/P.
            self._dim_index.setdefault(dim.abbrev, i)
        self._measure_index = {
            name: len(self.dimensions) + i for i, name in enumerate(measures)
        }

    # -- lookups -------------------------------------------------------

    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    @property
    def record_width(self) -> int:
        """Number of fields in a record (dimensions + measures)."""
        return len(self.dimensions) + len(self.measures)

    def dim_index(self, name: str) -> int:
        """Index of a dimension by name or abbreviation."""
        try:
            return self._dim_index[name]
        except KeyError:
            raise SchemaError(
                f"unknown dimension {name!r}; have "
                f"{[d.name for d in self.dimensions]}"
            ) from None

    def dimension(self, name: str) -> Dimension:
        return self.dimensions[self.dim_index(name)]

    def measure_index(self, name: str) -> int:
        """Record-field index of a measure attribute by name."""
        try:
            return self._measure_index[name]
        except KeyError:
            raise SchemaError(
                f"unknown measure {name!r}; have {list(self.measures)}"
            ) from None

    def field_index(self, name: str) -> int:
        """Record-field index of either a dimension or a measure."""
        if name in self._dim_index:
            return self._dim_index[name]
        return self.measure_index(name)

    # -- validation ------------------------------------------------------

    def validate_record(self, record: Record) -> None:
        """Raise :class:`SchemaError` if ``record`` has the wrong shape."""
        if len(record) != self.record_width:
            raise SchemaError(
                f"record has {len(record)} fields, schema expects "
                f"{self.record_width}: {record!r}"
            )
        for i in range(self.num_dimensions):
            if not isinstance(record[i], int):
                raise SchemaError(
                    f"dimension field {i} of {record!r} is not an int"
                )

    def validate_records(self, records: Iterable[Record]) -> None:
        for record in records:
            self.validate_record(record)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = ", ".join(d.name for d in self.dimensions)
        return f"DatasetSchema(dims=[{dims}], measures={list(self.measures)})"


def network_log_schema(
    span_years: int = 1, active_hosts: int = 1 << 16
) -> DatasetSchema:
    """The Dshield-style network log schema of Table 1.

    Dimensions: Timestamp (t), Source (U), Target (T), TargetPort (P);
    no explicit measure attributes, exactly like the paper's dataset.
    """
    return DatasetSchema(
        [
            Dimension("Timestamp", TimeHierarchy(span_years), "t"),
            Dimension("Source", IPv4Hierarchy(active_hosts), "U"),
            Dimension("Target", IPv4Hierarchy(active_hosts), "T"),
            Dimension("TargetPort", PortHierarchy(), "P"),
        ]
    )


def synthetic_schema(
    num_dimensions: int = 4,
    levels: int = 3,
    fanout: int = 10,
    measures: Sequence[str] = ("v",),
) -> DatasetSchema:
    """The synthetic schema of Section 7.1.

    ``num_dimensions`` attributes sharing a uniform hierarchy with
    ``levels`` non-ALL domains and the given per-level ``fanout``; the
    paper uses four dimensions, four domains (three non-ALL), fanout 10.
    """
    dims = [
        Dimension(f"d{i}", UniformHierarchy(f"d{i}", levels, fanout))
        for i in range(num_dimensions)
    ]
    return DatasetSchema(dims, measures)
