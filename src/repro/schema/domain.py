"""Domains and linear domain-generalization hierarchies (paper Section 2.1).

A *domain* is a set of values for one dimension attribute at a fixed
granularity (e.g. ``Hour`` for the time attribute).  Domains of a
dimension form a *domain generalization hierarchy*; the paper restricts
attention to linear hierarchies (a single chain from the base domain up
to ``D_ALL``) and so do we.

Values in every domain are represented as Python integers.  The crucial
property, Proposition 1 of the paper, is that for a linear hierarchy
there exists a total order on the extended domain such that
generalization is monotone:

    ``u <= v  implies  gamma_D(u) <= gamma_D(v)``

Concrete hierarchies in this package guarantee this by construction:
each :meth:`Hierarchy.generalize` maps base integers to coarser integers
with a monotone non-decreasing function.  Lexicographic comparison of
generalized tuples is then exactly the region order the streaming
engines rely on to detect finalized hash-table entries.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import DomainError, SchemaError

#: The single value of the special ``D_ALL`` domain.  Generalizing any
#: value all the way to the top of a hierarchy yields this constant.
ALL_VALUE = 0

#: A compiled ``value -> value`` generalization closure.
Mapper = Callable[[Any], Any]


@dataclass(frozen=True)
class Domain:
    """One node of a domain generalization hierarchy.

    Attributes:
        name: Human-readable domain name (``"Hour"``, ``"/24 subnet"``).
        level: Position in the hierarchy; ``0`` is the base domain and
            the highest level is always ``D_ALL``.
    """

    name: str
    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise SchemaError(f"domain level must be >= 0, got {self.level}")

    @property
    def is_all(self) -> bool:
        """Whether this is the ``D_ALL`` domain (checked by name)."""
        return self.name == "ALL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class Hierarchy:
    """A linear domain generalization hierarchy for one dimension.

    Subclasses supply the actual generalization arithmetic by overriding
    :meth:`_generalize_from_base`.  The base class provides level
    book-keeping, validation, and the derived operations
    (:meth:`generalize`, :meth:`fanout`, :meth:`children_range`).

    Args:
        domain_names: Names from the base domain upward, *excluding*
            the implicit top ``ALL`` domain, which is appended
            automatically.
    """

    def __init__(self, domain_names: Sequence[str]) -> None:
        if not domain_names:
            raise SchemaError("a hierarchy needs at least a base domain")
        names = list(domain_names)
        if "ALL" in names:
            raise SchemaError("the ALL domain is implicit; do not list it")
        names.append("ALL")
        self._domains = tuple(
            Domain(name, level) for level, name in enumerate(names)
        )

    # -- structure ---------------------------------------------------

    @property
    def domains(self) -> tuple[Domain, ...]:
        """All domains, base first, ``D_ALL`` last."""
        return self._domains

    @property
    def num_levels(self) -> int:
        """Total number of domains including ``D_ALL``."""
        return len(self._domains)

    @property
    def all_level(self) -> int:
        """The level index of the ``D_ALL`` domain."""
        return len(self._domains) - 1

    def domain(self, level: int) -> Domain:
        """Return the domain at ``level``, validating the index."""
        self._check_level(level)
        return self._domains[level]

    def level_of(self, name: str) -> int:
        """Return the level whose domain is called ``name``.

        Raises:
            DomainError: if no domain has that name.
        """
        for dom in self._domains:
            if dom.name == name:
                return dom.level
        raise DomainError(
            f"no domain named {name!r}; have "
            f"{[d.name for d in self._domains]}"
        )

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise DomainError(
                f"level {level} out of range 0..{self.num_levels - 1}"
            )

    # -- generalization ----------------------------------------------

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        """Map a base-domain value to its ancestor at ``to_level``.

        ``to_level`` is strictly between 0 and the ALL level; subclasses
        implement the actual arithmetic and must be monotone
        non-decreasing in ``value``.
        """
        raise NotImplementedError

    def generalize(self, value: int, from_level: int, to_level: int) -> int:
        """The value generalization function ``gamma`` (Section 2.1).

        Maps ``value``, a member of the domain at ``from_level``, to its
        unique ancestor in the domain at ``to_level``.

        Raises:
            DomainError: if ``to_level < from_level`` (generalization
                only moves up the hierarchy) or either level is invalid.
        """
        self._check_level(from_level)
        self._check_level(to_level)
        if to_level < from_level:
            raise DomainError(
                f"cannot generalize downward: {from_level} -> {to_level}"
            )
        if to_level == from_level:
            return value
        if to_level == self.all_level:
            return ALL_VALUE
        if from_level == 0:
            return self._generalize_from_base(value, to_level)
        return self._generalize_between(value, from_level, to_level)

    def mapper(self, from_level: int, to_level: int) -> Mapper | None:
        """A compiled ``value -> value`` generalization closure.

        Levels are validated once, here, so the returned callable can
        skip per-call checks — engines call these millions of times.
        ``None`` is returned for the identity mapping (``from_level ==
        to_level``) so callers can skip the call entirely.
        """
        self._check_level(from_level)
        self._check_level(to_level)
        if to_level < from_level:
            raise DomainError(
                f"cannot generalize downward: {from_level} -> {to_level}"
            )
        if to_level == from_level:
            return None
        if to_level == self.all_level:
            return lambda value: ALL_VALUE
        return self._mapper(from_level, to_level)

    def _mapper(self, from_level: int, to_level: int) -> Mapper:
        """Subclass hook for :meth:`mapper`; the default closes over
        the checked :meth:`generalize` arithmetic."""
        if from_level == 0:
            return lambda value: self._generalize_from_base(value, to_level)
        return lambda value: self._generalize_between(
            value, from_level, to_level
        )

    def array_mapper(self, from_level: int, to_level: int) -> Mapper | None:
        """An optional *vectorized* generalization closure.

        When a hierarchy's generalization has a closed form that numpy
        can evaluate element-wise (e.g. integer division for
        :class:`~repro.schema.numeric_hierarchy.UniformHierarchy`),
        subclasses return a callable mapping a whole int64 array of
        values to the generalized array.  ``None`` — the default —
        makes the columnar scan path fall back to generalizing each
        distinct value once through :meth:`mapper` and scattering the
        results with a lookup table, which is always correct.  Callers
        handle the identity and ``D_ALL`` cases themselves, so this is
        only consulted for ``from_level < to_level < all_level``.
        """
        self._check_level(from_level)
        self._check_level(to_level)
        return None

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:
        """Generalize between two intermediate levels.

        The default implementation requires consistency with base-level
        generalization and is overridden where a closed form exists.
        Consistency (paper Section 2.1) demands that going
        base -> from -> to equals base -> to; subclasses for which
        intermediate values are not simple functions of base values must
        override this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot generalize between intermediate "
            f"levels {from_level} -> {to_level}"
        )

    # -- cardinality estimates ---------------------------------------

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        """Estimate ``card(D_fine, D_coarse)`` (Table 6 of the paper).

        The number of values of the finer domain that map into one value
        of the coarser domain.  Used only for memory-footprint
        *estimation*; the paper notes precision affects size estimates,
        never correctness.
        """
        raise NotImplementedError

    def level_cardinality(self, level: int) -> int:
        """Estimate of the number of distinct values at ``level``."""
        raise NotImplementedError

    # -- misc ----------------------------------------------------------

    def format_value(self, value: int, level: int) -> str:
        """Render ``value`` at ``level`` for humans (override freely)."""
        if level == self.all_level:
            return "ALL"
        return str(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chain = " < ".join(d.name for d in self._domains)
        return f"{type(self).__name__}({chain})"
