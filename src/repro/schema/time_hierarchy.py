"""Calendar time hierarchy: Second < Hour < Day < Month < Year < ALL.

This is the ``Hier(Time)`` chain of the paper (Figure 1) with the Week
domain dropped, exactly as the paper does, to keep the hierarchy linear.

Encoding (Proposition 1): every domain value is an integer measured from
the UNIX epoch — seconds, hours (``sec // 3600``), days
(``sec // 86400``), months since 1970-01, and years since 1970.  All of
these are monotone non-decreasing functions of the base value, so
lexicographic comparison after generalization is order-compatible.

Month boundaries are genuinely calendar-accurate (leap years included);
they are precomputed once for 1970..2199 and looked up with binary
search, so generalization stays O(log #months) with a tiny constant.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any

from repro.errors import DomainError
from repro.schema.domain import Hierarchy, Mapper

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400
HOURS_PER_DAY = 24
MONTHS_PER_YEAR = 12

_EPOCH_YEAR = 1970
_LAST_YEAR = 2199

SECOND, HOUR, DAY, MONTH, YEAR, TIME_ALL = range(6)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _days_in_month(year: int, month: int) -> int:
    if month == 2:
        return 29 if _is_leap(year) else 28
    return 31 if month in (1, 3, 5, 7, 8, 10, 12) else 30


def _build_month_start_days() -> list[int]:
    """Day index (days since epoch) of the first day of each month."""
    starts = []
    day = 0
    for year in range(_EPOCH_YEAR, _LAST_YEAR + 1):
        for month in range(1, 13):
            starts.append(day)
            day += _days_in_month(year, month)
    return starts


#: ``_MONTH_START_DAYS[m]`` = day index of the first day of month ``m``
#: where ``m`` counts months since 1970-01.
_MONTH_START_DAYS = _build_month_start_days()


def day_to_month(day: int) -> int:
    """Map a day index to its month index (months since 1970-01)."""
    if day < 0 or day >= _MONTH_START_DAYS[-1] + 31:
        raise DomainError(f"day index {day} outside supported range")
    return bisect_right(_MONTH_START_DAYS, day) - 1


def month_to_day(month: int) -> int:
    """Day index of the first day of month ``month``."""
    if not 0 <= month < len(_MONTH_START_DAYS):
        raise DomainError(f"month index {month} outside supported range")
    return _MONTH_START_DAYS[month]


class TimeHierarchy(Hierarchy):
    """Second < Hour < Day < Month < Year < ALL over UNIX timestamps.

    Args:
        span_years: Expected span of the data in years; only used for
            cardinality *estimates* fed to the optimizer, never for
            correctness.
    """

    def __init__(self, span_years: int = 2) -> None:
        super().__init__(["Second", "Hour", "Day", "Month", "Year"])
        self._span_years = max(1, span_years)

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        if value < 0:
            raise DomainError(f"negative timestamp {value}")
        if to_level == HOUR:
            return value // SECONDS_PER_HOUR
        if to_level == DAY:
            return value // SECONDS_PER_DAY
        if to_level == MONTH:
            return day_to_month(value // SECONDS_PER_DAY)
        if to_level == YEAR:
            return day_to_month(value // SECONDS_PER_DAY) // MONTHS_PER_YEAR
        raise DomainError(f"bad target level {to_level}")

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:
        if from_level == HOUR:
            day = value // HOURS_PER_DAY
            if to_level == DAY:
                return day
            if to_level == MONTH:
                return day_to_month(day)
            return day_to_month(day) // MONTHS_PER_YEAR
        if from_level == DAY:
            if to_level == MONTH:
                return day_to_month(value)
            return day_to_month(value) // MONTHS_PER_YEAR
        if from_level == MONTH:
            return value // MONTHS_PER_YEAR
        raise DomainError(
            f"cannot generalize time level {from_level} -> {to_level}"
        )

    def _mapper(self, from_level: int, to_level: int) -> Mapper:
        def checked(fn: Mapper) -> Mapper:
            # Mappers from the base domain see raw record values; a
            # negative timestamp must fail loudly, not roll up to a
            # negative hour.
            def wrapped(value: Any, _fn: Mapper = fn) -> Any:
                if value < 0:
                    raise DomainError(f"negative timestamp {value}")
                return _fn(value)

            return wrapped

        closures = {
            (SECOND, HOUR): checked(lambda v: v // SECONDS_PER_HOUR),
            (SECOND, DAY): checked(lambda v: v // SECONDS_PER_DAY),
            (SECOND, MONTH): checked(
                lambda v: day_to_month(v // SECONDS_PER_DAY)
            ),
            (SECOND, YEAR): checked(
                lambda v: (
                    day_to_month(v // SECONDS_PER_DAY) // MONTHS_PER_YEAR
                )
            ),
            (HOUR, DAY): lambda v: v // HOURS_PER_DAY,
            (HOUR, MONTH): lambda v: day_to_month(v // HOURS_PER_DAY),
            (HOUR, YEAR): lambda v: (
                day_to_month(v // HOURS_PER_DAY) // MONTHS_PER_YEAR
            ),
            (DAY, MONTH): day_to_month,
            (DAY, YEAR): lambda v: day_to_month(v) // MONTHS_PER_YEAR,
            (MONTH, YEAR): lambda v: v // MONTHS_PER_YEAR,
        }
        return closures[(from_level, to_level)]

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        if coarse_level < fine_level:
            raise DomainError("coarse_level must be >= fine_level")
        if fine_level == coarse_level:
            return 1
        if coarse_level == self.all_level:
            return self.level_cardinality(fine_level)
        # Average step fan-outs; estimates only (paper: precision of
        # card() affects size estimation, not correctness).
        steps = {
            (SECOND, HOUR): SECONDS_PER_HOUR,
            (HOUR, DAY): HOURS_PER_DAY,
            (DAY, MONTH): 30,
            (MONTH, YEAR): MONTHS_PER_YEAR,
        }
        total = 1
        for lvl in range(fine_level, coarse_level):
            total *= steps[(lvl, lvl + 1)]
        return total

    def level_cardinality(self, level: int) -> int:
        if level == self.all_level:
            return 1
        per_year = {
            SECOND: 365 * SECONDS_PER_DAY,
            HOUR: 365 * HOURS_PER_DAY,
            DAY: 365,
            MONTH: MONTHS_PER_YEAR,
            YEAR: 1,
        }
        return per_year[level] * self._span_years

    def format_value(self, value: int, level: int) -> str:
        if level == self.all_level:
            return "ALL"
        if level == YEAR:
            return str(_EPOCH_YEAR + value)
        if level == MONTH:
            return f"{_EPOCH_YEAR + value // 12}-{value % 12 + 1:02d}"
        if level == DAY:
            month = day_to_month(value)
            dom = value - month_to_day(month) + 1
            return f"{self.format_value(month, MONTH)}-{dom:02d}"
        if level == HOUR:
            day = value // HOURS_PER_DAY
            return (
                f"{self.format_value(day, DAY)}T{value % HOURS_PER_DAY:02d}h"
            )
        return f"@{value}s"
