"""Dimension attributes: a named attribute bound to a hierarchy."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.domain import Domain, Hierarchy


class Dimension:
    """A dimension attribute of a multidimensional dataset.

    Pairs an attribute name (and optional one-letter abbreviation, as in
    Table 1 of the paper: ``t``, ``U``, ``T``, ``P``) with its linear
    domain generalization hierarchy.
    """

    def __init__(
        self, name: str, hierarchy: Hierarchy, abbrev: str | None = None
    ) -> None:
        if not name:
            raise SchemaError("dimension name must be non-empty")
        self.name = name
        self.abbrev = abbrev or name
        self.hierarchy = hierarchy

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels

    @property
    def all_level(self) -> int:
        return self.hierarchy.all_level

    @property
    def domains(self) -> tuple[Domain, ...]:
        return self.hierarchy.domains

    def level_of(self, domain_name: str) -> int:
        """Resolve a domain name (e.g. ``"Hour"``) to its level index."""
        return self.hierarchy.level_of(domain_name)

    def generalize(self, value: int, from_level: int, to_level: int) -> int:
        """Apply this dimension's gamma function."""
        return self.hierarchy.generalize(value, from_level, to_level)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dimension({self.name!r}, {self.hierarchy!r})"
