"""IPv4 address hierarchy: IP < /24 subnet < /16 subnet < /8 subnet < ALL.

This is the ``Hier(Source)`` / ``Hier(Target)`` chain from Figure 1 of
the paper (the paper shows IP and /24; we extend the linear chain with
the conventional /16 and /8 prefixes, which the multi-recon query uses
to talk about "a specific destination network").

Values are 32-bit integers at the base; generalization is a right shift
by 8 bits per level, which is monotone, so Proposition 1 holds.
"""

from __future__ import annotations

from repro.errors import DomainError
from repro.schema.domain import Hierarchy, Mapper

IP, SLASH24, SLASH16, SLASH8, IP_ALL = range(5)

_BITS_PER_LEVEL = 8
_MAX_IP = (1 << 32) - 1


def parse_ip(dotted: str) -> int:
    """Parse dotted-quad notation into the 32-bit base-domain integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise DomainError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise DomainError(f"malformed IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Render a 32-bit base-domain integer as dotted-quad notation."""
    if not 0 <= value <= _MAX_IP:
        raise DomainError(f"IPv4 value {value} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class IPv4Hierarchy(Hierarchy):
    """IP < /24 < /16 < /8 < ALL over 32-bit integers.

    Args:
        active_hosts: Estimated number of distinct base addresses seen
            in the data, used only for optimizer cardinality estimates.
    """

    def __init__(self, active_hosts: int = 1 << 16) -> None:
        super().__init__(["IP", "/24", "/16", "/8"])
        self._active_hosts = max(1, active_hosts)

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        if not 0 <= value <= _MAX_IP:
            raise DomainError(f"IPv4 value {value} out of range")
        return value >> (_BITS_PER_LEVEL * to_level)

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:
        return value >> (_BITS_PER_LEVEL * (to_level - from_level))

    def _mapper(self, from_level: int, to_level: int) -> Mapper:
        shift = _BITS_PER_LEVEL * (to_level - from_level)
        return lambda value: value >> shift

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        if coarse_level < fine_level:
            raise DomainError("coarse_level must be >= fine_level")
        if coarse_level == self.all_level:
            return self.level_cardinality(fine_level)
        return 1 << (_BITS_PER_LEVEL * (coarse_level - fine_level))

    def level_cardinality(self, level: int) -> int:
        if level == self.all_level:
            return 1
        # Scale the active-host estimate down by the prefix fan-out,
        # but never below the structural maximum for that level.
        structural = 1 << (_BITS_PER_LEVEL * (4 - level))
        estimated = max(1, self._active_hosts >> (_BITS_PER_LEVEL * level))
        return min(structural, estimated)

    def format_value(self, value: int, level: int) -> str:
        if level == self.all_level:
            return "ALL"
        if level == IP:
            return format_ip(value)
        width = 4 - level
        octets = [
            str((value >> (8 * i)) & 0xFF) for i in range(width - 1, -1, -1)
        ]
        return ".".join(octets) + f".*/{8 * width}"
