"""Target-port hierarchy: Port < PortRange < ALL.

Figure 1 of the paper shows a linear hierarchy for TargetPort with a
``PortRange`` domain between the raw 16-bit port and ``ALL``.  We use
256-port blocks as the range domain, which keeps generalization a
monotone integer shift (Proposition 1 holds by construction).
"""

from __future__ import annotations

from repro.errors import DomainError
from repro.schema.domain import Hierarchy, Mapper

PORT, PORT_RANGE, PORT_ALL = range(3)

_BLOCK_BITS = 8
_MAX_PORT = (1 << 16) - 1


class PortHierarchy(Hierarchy):
    """Port < PortRange(256-wide blocks) < ALL over 16-bit integers."""

    def __init__(self) -> None:
        super().__init__(["Port", "PortRange"])

    def _generalize_from_base(self, value: int, to_level: int) -> int:
        if not 0 <= value <= _MAX_PORT:
            raise DomainError(f"port {value} out of range")
        return value >> _BLOCK_BITS

    def _generalize_between(
        self, value: int, from_level: int, to_level: int
    ) -> int:  # pragma: no cover - only one intermediate level exists
        raise DomainError("port hierarchy has a single intermediate level")

    def _mapper(self, from_level: int, to_level: int) -> Mapper:
        return lambda value: value >> _BLOCK_BITS

    def fanout(self, fine_level: int, coarse_level: int) -> int:
        if coarse_level < fine_level:
            raise DomainError("coarse_level must be >= fine_level")
        if fine_level == coarse_level:
            return 1
        if coarse_level == self.all_level:
            return self.level_cardinality(fine_level)
        return 1 << _BLOCK_BITS

    def level_cardinality(self, level: int) -> int:
        if level == self.all_level:
            return 1
        if level == PORT:
            return _MAX_PORT + 1
        return (_MAX_PORT + 1) >> _BLOCK_BITS

    def format_value(self, value: int, level: int) -> str:
        if level == self.all_level:
            return "ALL"
        if level == PORT_RANGE:
            low = value << _BLOCK_BITS
            return f"[{low}..{low + (1 << _BLOCK_BITS) - 1}]"
        return str(value)
