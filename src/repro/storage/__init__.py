"""Storage substrate: datasets, flat files, external sort, sinks.

The paper's system is deliberately standalone — "our goal is to develop
a standalone, lightweight yet highly scalable analysis system" that
streams flat files instead of importing data into a DBMS.  This package
provides that substrate: in-memory and flat-file fact tables with a
uniform scan interface, an external merge sort for datasets larger than
memory, and result sinks that receive finalized measure entries.
"""

from repro.storage.table import Dataset, InMemoryDataset, MeasureTable
from repro.storage.flatfile import (
    FlatFileDataset,
    read_csv,
    write_csv,
    write_flatfile,
)
from repro.storage.external_sort import external_sort
from repro.storage.sink import (
    DirectorySink,
    FileSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
)

__all__ = [
    "Dataset",
    "InMemoryDataset",
    "FlatFileDataset",
    "MeasureTable",
    "external_sort",
    "write_flatfile",
    "read_csv",
    "write_csv",
    "Sink",
    "MemorySink",
    "FileSink",
    "DirectorySink",
    "TeeSink",
    "NullSink",
]
