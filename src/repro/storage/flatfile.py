"""Flat-file fact tables: binary fixed-width records, plus CSV.

The paper stores datasets "in flat files as the input for our
algorithm".  The binary format here is fixed-width ``struct`` records —
``int64`` per dimension, ``float64`` per measure — behind a small header
carrying a magic number, a format version, and the field layout, so a
reader can detect schema mismatches instead of silently mis-parsing.
"""

from __future__ import annotations

import csv
import os
import struct
from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.schema.dataset_schema import DatasetSchema, Record
from repro.storage.columnar import (
    DEFAULT_BATCH_SIZE,
    HAVE_NUMPY,
    RecordBatch,
    np,
)
from repro.storage.table import Dataset

_MAGIC = b"AWRA"
_VERSION = 1
_HEADER = struct.Struct("<4sHHI")  # magic, version, width, num_dims
_BATCH = 4096


def _record_struct(schema: DatasetSchema) -> struct.Struct:
    fmt = "<" + "q" * schema.num_dimensions + "d" * len(schema.measures)
    return struct.Struct(fmt)


def write_flatfile(
    path: str, schema: DatasetSchema, records: Iterable[Record]
) -> int:
    """Write records to a binary flat file; returns the record count."""
    rec_struct = _record_struct(schema)
    count = 0
    with open(path, "wb") as fh:
        fh.write(
            _HEADER.pack(
                _MAGIC, _VERSION, schema.record_width, schema.num_dimensions
            )
        )
        buffer = bytearray()
        for record in records:
            buffer += rec_struct.pack(*record)
            count += 1
            if count % _BATCH == 0:
                fh.write(buffer)
                buffer.clear()
        fh.write(buffer)
    return count


class FlatFileDataset(Dataset):
    """A binary flat-file fact table supporting repeated scans."""

    def __init__(self, path: str, schema: DatasetSchema) -> None:
        if not os.path.exists(path):
            raise StorageError(f"no such flat file: {path}")
        self.path = path
        self.schema = schema
        self._struct = _record_struct(schema)
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise StorageError(f"{path}: truncated header")
            magic, version, width, num_dims = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StorageError(f"{path}: not an AWRA flat file")
            if version != _VERSION:
                raise StorageError(
                    f"{path}: format version {version}, expected {_VERSION}"
                )
            if width != schema.record_width or num_dims != (
                schema.num_dimensions
            ):
                raise StorageError(
                    f"{path}: layout ({num_dims} dims, width {width}) does "
                    f"not match schema ({schema.num_dimensions} dims, "
                    f"width {schema.record_width})"
                )
        payload = os.path.getsize(path) - _HEADER.size
        if payload % self._struct.size:
            raise StorageError(f"{path}: truncated record data")
        self._count = payload // self._struct.size

    def __getstate__(self):
        """Pickle ``(path, schema)`` only: ``struct.Struct`` objects are
        not picklable, and re-validating the header in the receiving
        process catches files that vanished in transit."""
        return (self.path, self.schema)

    def __setstate__(self, state) -> None:
        path, schema = state
        self.__init__(path, schema)

    def scan(self) -> Iterator[Record]:
        rec_size = self._struct.size
        num_dims = self.schema.num_dimensions
        num_measures = len(self.schema.measures)
        with open(self.path, "rb") as fh:
            fh.seek(_HEADER.size)
            while True:
                chunk = fh.read(rec_size * _BATCH)
                if not chunk:
                    return
                if len(chunk) % rec_size:
                    raise StorageError(
                        f"{self.path}: torn read mid-record"
                    )
                for fields in self._struct.iter_unpack(chunk):
                    if num_measures:
                        yield fields[:num_dims] + fields[num_dims:]
                    else:
                        yield fields

    def scan_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator["RecordBatch"]:
        """Decode whole batches column-wise with one ``frombuffer``.

        Each chunk of ``batch_size`` records becomes a numpy structured
        array view over the read buffer; the per-field views are the
        batch columns — no per-record ``struct`` unpacking at all.
        Falls back to the generic record-chunking path without numpy.
        """
        if not HAVE_NUMPY:
            yield from super().scan_batches(batch_size)
            return
        if batch_size <= 0:
            raise StorageError("batch_size must be positive")
        schema = self.schema
        num_dims = schema.num_dimensions
        fields = [(f"d{i}", "<i8") for i in range(num_dims)]
        fields += [(f"m{j}", "<f8") for j in range(len(schema.measures))]
        dtype = np.dtype(fields)
        rec_size = self._struct.size
        with open(self.path, "rb") as fh:
            fh.seek(_HEADER.size)
            while True:
                chunk = fh.read(rec_size * batch_size)
                if not chunk:
                    return
                if len(chunk) % rec_size:
                    raise StorageError(
                        f"{self.path}: torn read mid-record"
                    )
                rows = np.frombuffer(chunk, dtype=dtype)
                columns = [rows[name] for name in dtype.names]
                yield RecordBatch(schema, columns, len(rows))

    def __len__(self) -> int:
        return self._count


def write_csv(
    path: str, schema: DatasetSchema, records: Iterable[Record]
) -> int:
    """Write records as CSV with a header row; returns record count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [d.name for d in schema.dimensions] + list(schema.measures)
        )
        for record in records:
            writer.writerow(record)
            count += 1
    return count


def read_csv(path: str, schema: DatasetSchema) -> Iterator[Record]:
    """Read a CSV written by :func:`write_csv`, validating the header."""
    expected = [d.name for d in schema.dimensions] + list(schema.measures)
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != expected:
            raise StorageError(
                f"{path}: header {header} does not match schema {expected}"
            )
        num_dims = schema.num_dimensions
        for row_number, row in enumerate(reader, start=2):
            if len(row) != len(expected):
                raise StorageError(
                    f"{path}:{row_number}: {len(row)} fields, expected "
                    f"{len(expected)}"
                )
            try:
                dims = tuple(int(cell) for cell in row[:num_dims])
                measures = tuple(float(cell) for cell in row[num_dims:])
            except ValueError as exc:
                raise StorageError(
                    f"{path}:{row_number}: malformed value ({exc})"
                ) from None
            yield dims + measures
