"""Datasets (fact tables) and measure tables (query results)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import StorageError
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema, Record
from repro.storage.columnar import (
    DEFAULT_BATCH_SIZE,
    RecordBatch,
    batches_from_records,
)


class Dataset:
    """A scannable fact table.

    Engines only ever need two things from a dataset: a fresh scan
    iterator (multiple scans must be possible — the relational baseline
    re-scans once per basic measure) and the schema.
    """

    schema: DatasetSchema

    def scan(self) -> Iterator[Record]:
        raise NotImplementedError

    def scan_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[RecordBatch]:
        """Scan as columnar :class:`RecordBatch` chunks.

        The default chunks :meth:`scan`; subclasses override when they
        can build columns more directly (e.g. flat files decode whole
        batches with one ``numpy.frombuffer`` call).
        """
        return batches_from_records(self.schema, self.scan(), batch_size)

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryDataset(Dataset):
    """A fact table held as a Python list — the default for tests."""

    def __init__(
        self,
        schema: DatasetSchema,
        records: Iterable[Record],
        validate: bool = False,
    ) -> None:
        self.schema = schema
        self.records = [tuple(record) for record in records]
        if validate:
            schema.validate_records(self.records)

    def scan(self) -> Iterator[Record]:
        return iter(self.records)

    def scan_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[RecordBatch]:
        """Chunk the record list directly — no iterator indirection."""
        return batches_from_records(
            self.schema, self.records, batch_size
        )

    def __len__(self) -> int:
        return len(self.records)

    def sorted_copy(self, key_fn) -> "InMemoryDataset":
        """A new dataset with records sorted by ``key_fn``."""
        dataset = InMemoryDataset.__new__(InMemoryDataset)
        dataset.schema = self.schema
        dataset.records = sorted(self.records, key=key_fn)
        return dataset


class MeasureTable:
    """The result of one measure: schema ``<G, M>`` (Section 3.2).

    Thin wrapper around ``dict[key, value]`` with the granularity
    attached, plus ordering and formatting helpers.  ``key`` tuples have
    full dimension width with ``ALL`` slots holding the ALL value.
    """

    def __init__(
        self,
        name: str,
        granularity: Granularity,
        rows: dict | None = None,
    ) -> None:
        self.name = name
        self.granularity = granularity
        self.rows: dict = rows if rows is not None else {}

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, key: tuple):
        return self.rows[key]

    def get(self, key: tuple, default=None):
        return self.rows.get(key, default)

    def __contains__(self, key: tuple) -> bool:
        return key in self.rows

    def __iter__(self):
        """Iterate region keys in ascending order."""
        return iter(sorted(self.rows))

    def keys(self) -> list[tuple]:
        """Region keys in ascending order."""
        return sorted(self.rows)

    def items(self) -> list[tuple[tuple, object]]:
        """Rows in ascending region-key order (deterministic output)."""
        return sorted(self.rows.items())

    def items_sorted(self) -> list[tuple[tuple, object]]:
        """Alias of :meth:`items`, kept for callers of the old name."""
        return self.items()

    def pretty(self, limit: int = 20) -> str:
        """Human-readable rendering of up to ``limit`` rows."""
        schema = self.granularity.schema
        lines = [f"{self.name} {self.granularity!r} ({len(self.rows)} rows)"]
        for key, value in self.items()[:limit]:
            parts = []
            for i, dim in enumerate(schema.dimensions):
                level = self.granularity.levels[i]
                if level != dim.all_level:
                    parts.append(
                        f"{dim.abbrev}="
                        f"{dim.hierarchy.format_value(key[i], level)}"
                    )
            rendered = ", ".join(parts) if parts else "ALL"
            lines.append(f"  [{rendered}] -> {value}")
        if len(self.rows) > limit:
            lines.append(f"  ... {len(self.rows) - limit} more")
        return "\n".join(lines)

    def equal_rows(self, other: "MeasureTable", tol: float = 1e-9) -> bool:
        """Value comparison with float tolerance (for engine checks)."""
        if set(self.rows) != set(other.rows):
            return False
        for key, value in self.rows.items():
            other_value = other.rows[key]
            if value is None or other_value is None:
                if value is not other_value:
                    return False
            elif isinstance(value, (int, float)):
                if not isinstance(other_value, (int, float)):
                    return False
                if abs(value - other_value) > tol * max(
                    1.0, abs(value), abs(other_value)
                ):
                    return False
            elif value != other_value:
                return False
        return True

    def diff(self, other: "MeasureTable", limit: int = 5) -> str:
        """Describe row differences — used in error messages."""
        missing = set(self.rows) - set(other.rows)
        extra = set(other.rows) - set(self.rows)
        changed = [
            (key, self.rows[key], other.rows[key])
            for key in set(self.rows) & set(other.rows)
            if self.rows[key] != other.rows[key]
        ]
        parts = []
        if missing:
            parts.append(f"missing: {sorted(missing)[:limit]}")
        if extra:
            parts.append(f"extra: {sorted(extra)[:limit]}")
        if changed:
            parts.append(f"changed: {changed[:limit]}")
        return "; ".join(parts) if parts else "identical"


def require_same_schema(a: Dataset, b: DatasetSchema) -> None:
    """Guard helper for code paths that mix datasets and schemas."""
    if a.schema is not b:
        raise StorageError("dataset does not use the expected schema")
