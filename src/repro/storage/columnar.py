"""Columnar record batches for vectorized scans (MonetDB/X100 style).

The engines' inner loops are pure Python; at any realistic scale the
interpreter — not the paper's algorithm — dominates the runtime.  This
module provides the batch-at-a-time substrate that removes most of that
overhead: a :class:`RecordBatch` holds a few thousand records as
parallel columns (numpy arrays when numpy is importable, plain lists
otherwise), datasets yield batches via ``Dataset.scan_batches``, and
the helpers here vectorize the two per-record operations engines
actually perform — key generalization (:func:`map_column`,
:func:`key_columns`) and group segmentation (:func:`group_runs`).

Everything is gated on ``HAVE_NUMPY``: without numpy the engines fall
back to their row-at-a-time scalar loops, so numpy stays an optional
dependency.

Bit-identity contract
---------------------
The batched path must produce *bit-identical* results to the scalar
path.  Two properties make that possible:

* ``group_runs`` sorts with a **stable** lexsort, so records within a
  group keep their scan order and per-group accumulation order is
  unchanged; segments are then visited in first-appearance order so
  hash tables are populated in exactly the order the scalar loop would
  populate them (downstream float folds over ``dict`` iteration order
  therefore match too).
* ``AggregateFunction.update_many`` implementations fold in strict
  left-to-right order (see :mod:`repro.aggregates.base`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

from repro.schema.domain import ALL_VALUE

try:  # pragma: no cover - exercised indirectly via HAVE_NUMPY gates
    import numpy as np
except ImportError:  # pragma: no cover - CI installs numpy; keep gated
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.cube.granularity import Granularity
    from repro.schema.dataset_schema import DatasetSchema, Record
    from repro.schema.domain import Hierarchy

#: Whether the vectorized path is available at all.
HAVE_NUMPY = np is not None

#: Default rows per batch.  4k rows keeps the working set of one batch
#: (a few columns of int64/float64) comfortably in L2 while amortizing
#: the per-batch Python overhead ~4000x.
DEFAULT_BATCH_SIZE = 4096


def default_batch_size() -> int:
    """The engines' automatic batch size: 0 (scalar) without numpy."""
    return DEFAULT_BATCH_SIZE if HAVE_NUMPY else 0


def resolve_batch_size(requested: int | None) -> int:
    """Normalize an engine's ``batch_size`` option to an effective size.

    ``None`` means "auto" (the default batch size when numpy is
    available, scalar otherwise); ``0`` or negative forces the scalar
    path; a positive request is honored only when numpy is importable,
    because the pure-Python batched path would merely add overhead.
    """
    if requested is None:
        return default_batch_size()
    if requested <= 0 or not HAVE_NUMPY:
        return 0
    return int(requested)


class RecordBatch:
    """A slice of a fact table stored column-wise.

    ``columns[i]`` holds field ``i`` of every record in the batch —
    int64 arrays for dimensions and float64 arrays for measures when
    numpy is available (``vector`` is then ``True``), plain lists
    otherwise.  Zero-length batches have no columns.
    """

    __slots__ = ("schema", "columns", "length", "vector")

    def __init__(
        self,
        schema: "DatasetSchema",
        columns: Sequence[Any],
        length: int,
    ) -> None:
        self.schema = schema
        self.columns = list(columns)
        self.length = length
        self.vector = bool(
            HAVE_NUMPY
            and self.columns
            and isinstance(self.columns[0], np.ndarray)
        )

    @classmethod
    def from_records(
        cls, schema: "DatasetSchema", records: Sequence["Record"]
    ) -> "RecordBatch":
        """Transpose a record slice into columns.

        Falls back to list columns when numpy is unavailable or a
        field refuses the int64/float64 layout.
        """
        n = len(records)
        if n == 0:
            return cls(schema, [], 0)
        cols = list(zip(*records))
        if HAVE_NUMPY:
            num_dims = schema.num_dimensions
            converted = []
            for i, col in enumerate(cols):
                # None measures are SQL NULLs; numpy would silently
                # coerce them to NaN, so such batches stay list-backed.
                if None in col:
                    converted = None
                    break
                dtype = np.int64 if i < num_dims else np.float64
                try:
                    converted.append(np.asarray(col, dtype=dtype))
                except (TypeError, ValueError, OverflowError):
                    converted = None
                    break
            if converted is not None:
                return cls(schema, converted, n)
        return cls(schema, [list(col) for col in cols], n)

    def __len__(self) -> int:
        return self.length

    def column(self, index: int) -> Any:
        return self.columns[index]

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A zero-copy (for numpy) sub-batch of rows ``[start, stop)``."""
        stop = min(stop, self.length)
        if start <= 0 and stop >= self.length:
            return self
        return RecordBatch(
            self.schema,
            [col[start:stop] for col in self.columns],
            max(0, stop - start),
        )

    def take(self, mask: Any) -> "RecordBatch":
        """Rows where ``mask`` (a boolean array) is true; vector only."""
        kept = [col[mask] for col in self.columns]
        length = int(len(kept[0])) if kept else 0
        return RecordBatch(self.schema, kept, length)

    def iter_records(self) -> Iterator[tuple]:
        """Row tuples (numpy scalars for vector batches) — cheap zip."""
        if not self.columns:
            return iter(())
        return zip(*self.columns)

    def python_rows(self) -> list[tuple]:
        """Row tuples of plain Python scalars (for scalar fallbacks)."""
        if not self.columns:
            return []
        if self.vector:
            return list(zip(*[col.tolist() for col in self.columns]))
        return list(zip(*self.columns))


def batches_from_records(
    schema: "DatasetSchema",
    records: Iterable["Record"],
    batch_size: int,
) -> Iterator[RecordBatch]:
    """Chunk any record iterable into :class:`RecordBatch` objects."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if isinstance(records, (list, tuple)):
        for start in range(0, len(records), batch_size):
            yield RecordBatch.from_records(
                schema, records[start : start + batch_size]
            )
        return
    chunk: list[Record] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= batch_size:
            yield RecordBatch.from_records(schema, chunk)
            chunk = []
    if chunk:
        yield RecordBatch.from_records(schema, chunk)


# -- vectorized key generalization ------------------------------------


def map_column(
    hierarchy: "Hierarchy",
    from_level: int,
    to_level: int,
    column: Any,
) -> Any:
    """Vectorized :meth:`Hierarchy.generalize` over an int64 array.

    Uses the hierarchy's closed-form :meth:`~Hierarchy.array_mapper`
    when one exists (e.g. integer division for
    :class:`~repro.schema.numeric_hierarchy.UniformHierarchy`);
    otherwise generalizes each *distinct* value once through the scalar
    mapper and scatters the results back with a lookup table, which is
    still a large win because batches carry far fewer distinct values
    than rows.
    """
    if to_level == from_level:
        return column
    if to_level == hierarchy.all_level:
        return np.full(len(column), ALL_VALUE, dtype=np.int64)
    fast = hierarchy.array_mapper(from_level, to_level)
    if fast is not None:
        return fast(column)
    mapper = hierarchy.mapper(from_level, to_level)
    uniques, inverse = np.unique(column, return_inverse=True)
    lut = np.fromiter(
        (mapper(int(value)) for value in uniques),
        dtype=np.int64,
        count=len(uniques),
    )
    return lut[inverse]


def key_columns(
    granularity: "Granularity", batch: RecordBatch
) -> list[Any]:
    """Per-dimension generalized key arrays for a vector batch.

    Returns one entry per dimension: ``None`` for dimensions at
    ``D_ALL`` (their key slot is the constant ``ALL_VALUE``), else the
    int64 array of generalized values.
    """
    schema = granularity.schema
    cols: list[Any] = []
    for i, dim in enumerate(schema.dimensions):
        level = granularity.levels[i]
        if level == dim.all_level:
            cols.append(None)
        else:
            cols.append(
                map_column(dim.hierarchy, 0, level, batch.columns[i])
            )
    return cols


# -- group segmentation ------------------------------------------------


def group_runs(
    keys: Sequence[Any], length: int
) -> tuple[Any, list[Any], Any, Any]:
    """Stable grouping of a batch by its key arrays.

    Returns ``(order, sorted_keys, starts, ends)`` where ``order`` is a
    stable permutation gathering equal keys into contiguous runs,
    ``sorted_keys`` are the key arrays under that permutation, and
    ``starts[j]:ends[j]`` is run ``j`` *in first-appearance order* —
    the order in which the scalar loop would first see each key.
    Stability gives both guarantees at once: rows within a run stay in
    scan order, and ``order[start]`` is each run's first original row
    index, so sorting runs by it recovers appearance order.
    """
    order = np.lexsort(tuple(reversed(list(keys))))
    sorted_keys = [key[order] for key in keys]
    change = np.zeros(length, dtype=bool)
    change[0] = True
    for key in sorted_keys:
        change[1:] |= key[1:] != key[:-1]
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], length)
    appearance = np.argsort(order[starts], kind="stable")
    return order, sorted_keys, starts[appearance], ends[appearance]
