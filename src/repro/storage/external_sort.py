"""External merge sort over record streams.

The sort phase of a Sort/Scan pass (Section 5.3) must handle datasets
larger than memory.  This is the textbook two-phase approach: cut the
input into runs that fit the memory budget, sort each in memory, spill
it, then ``heapq.merge`` all runs back in key order.

Runs are spilled with ``pickle`` (records are plain tuples); spill files
live in a caller-provided or temporary directory and are always removed
— even when the consumer abandons the iterator early, a spill write
dies half way through, or a reader raises mid-merge.  Every spill path
is claimed (and therefore tracked for cleanup) *before* its file is
written, so a partially written run can never outlive the sort.
"""

from __future__ import annotations

import contextlib
import heapq
import os
import pickle
import shutil
import tempfile
from collections.abc import Callable, Iterable, Iterator

from repro.errors import StorageError
from repro.schema.dataset_schema import Record
from repro.testkit.failpoints import fire, register

#: Default run size: comfortably in-memory for tuple records.
DEFAULT_RUN_SIZE = 200_000

FP_SPILL = register(
    "sort.spill", "sort",
    "after one sorted run is spilled to disk",
)
FP_MERGE = register(
    "sort.merge", "sort",
    "after all runs are spilled, before the k-way merge starts",
)


def _spill_run(run: list, path: str) -> None:
    with open(path, "wb") as fh:
        pickle.dump(run, fh, protocol=pickle.HIGHEST_PROTOCOL)
    fire(FP_SPILL, path=path)


def _read_run(path: str) -> Iterator[Record]:
    with open(path, "rb") as fh:
        run = pickle.load(fh)
    yield from run


def external_sort(
    records: Iterable[Record],
    key_fn: Callable[[Record], tuple],
    run_size: int = DEFAULT_RUN_SIZE,
    tmp_dir: str | None = None,
) -> Iterator[Record]:
    """Yield ``records`` sorted by ``key_fn`` using bounded memory.

    Args:
        records: The input stream.
        key_fn: Sort key extractor; must be deterministic.
        run_size: Maximum records held in memory at once.
        tmp_dir: Directory for spill files; a private temporary
            directory is created (and removed) when omitted.

    Yields:
        Records in ascending ``key_fn`` order.
    """
    if run_size < 1:
        raise StorageError(f"run_size must be positive, got {run_size}")

    first_run: list = []
    iterator = iter(records)
    for record in iterator:
        first_run.append(record)
        if len(first_run) >= run_size:
            break
    else:
        # Everything fit in a single run: pure in-memory sort.
        first_run.sort(key=key_fn)
        yield from first_run
        return

    own_tmp = tmp_dir is None
    directory = tempfile.mkdtemp(prefix="awra-sort-") if own_tmp else tmp_dir
    spill_paths: list[str] = []

    def claim_path() -> str:
        # Claimed before the write so a run that dies half way through
        # is still removed by the cleanup below.
        path = os.path.join(directory, f"run-{len(spill_paths):05d}.pkl")
        spill_paths.append(path)
        return path

    try:
        first_run.sort(key=key_fn)
        _spill_run(first_run, claim_path())
        del first_run

        run: list = []
        for record in iterator:
            run.append(record)
            if len(run) >= run_size:
                run.sort(key=key_fn)
                _spill_run(run, claim_path())
                run = []
        if run:
            run.sort(key=key_fn)
            _spill_run(run, claim_path())
            del run

        fire(FP_MERGE)
        streams = [_read_run(path) for path in spill_paths]
        yield from heapq.merge(*streams, key=key_fn)
    finally:
        for path in spill_paths:
            with contextlib.suppress(OSError):
                os.remove(path)
        if own_tmp:
            # rmtree, not rmdir: even if a stray file somehow landed in
            # the owned directory, the sort owns the whole tree.
            shutil.rmtree(directory, ignore_errors=True)
