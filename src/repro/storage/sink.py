"""Result sinks: where finalized measure entries are flushed.

The one-pass algorithm (Table 7, line 13) flushes finalized entries "to
disk" as soon as they are known complete.  Engines write through a
:class:`Sink` so that callers choose the destination: keep everything in
memory (the default, and what tests compare), append to files, or drop
values entirely when only statistics are wanted.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.cube.granularity import Granularity
from repro.storage.table import MeasureTable


class Sink:
    """Receives finalized ``(key, value)`` entries per measure."""

    def open_measure(self, name: str, granularity: Granularity) -> None:
        """Called once per measure before any emit."""

    def emit(self, name: str, key: tuple, value) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Called once after the scan completes."""

    def result(self) -> Optional[dict[str, MeasureTable]]:
        """The collected tables, if this sink retains them."""
        return None


class MemorySink(Sink):
    """Collects every finalized entry into :class:`MeasureTable`s."""

    def __init__(self) -> None:
        self.tables: dict[str, MeasureTable] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self.tables.setdefault(name, MeasureTable(name, granularity))

    def emit(self, name: str, key: tuple, value) -> None:
        self.tables[name].rows[key] = value

    def result(self) -> dict[str, MeasureTable]:
        return self.tables


class NullSink(Sink):
    """Counts emissions and discards values — for benchmarking."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self.counts.setdefault(name, 0)

    def emit(self, name: str, key: tuple, value) -> None:
        self.counts[name] += 1


class FileSink(Sink):
    """Appends finalized entries to one text file per measure.

    This matches the paper's "flush the finalized entries to disk":
    entries arrive (and are written) in finalized order, so the output
    files are sorted by the plan's output order without any extra sort.
    """

    def __init__(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._files: dict[str, object] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        if name not in self._files:
            path = os.path.join(self.directory, f"{name}.tsv")
            self._files[name] = open(path, "w")

    def emit(self, name: str, key: tuple, value) -> None:
        fields = "\t".join(str(part) for part in key)
        self._files[name].write(f"{fields}\t{value}\n")

    def close(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files.clear()
