"""Result sinks: where finalized measure entries are flushed.

The one-pass algorithm (Table 7, line 13) flushes finalized entries "to
disk" as soon as they are known complete.  Engines write through a
:class:`Sink` so that callers choose the destination: keep everything in
memory (the default, and what tests compare), append to files, fan out
to several destinations at once (:class:`TeeSink`), or drop values
entirely when only statistics are wanted.

Sinks may additionally ask for *raw accumulator states*: a sink that
sets :attr:`Sink.wants_states` receives every basic measure's
pre-finalization state through :meth:`Sink.emit_state` as entries
finalize.  States of disjoint record batches are combinable with
:meth:`~repro.aggregates.base.AggregateFunction.merge`, which is what
the measure service's incremental ingestion builds on (only the
one-pass :class:`~repro.engine.sort_scan.SortScanEngine` offers state
capture — multi-pass and partitioned evaluation spool finalized values
between stages).
"""

from __future__ import annotations

import os

from repro.cube.granularity import Granularity
from repro.storage.table import MeasureTable


class Sink:
    """Receives finalized ``(key, value)`` entries per measure."""

    #: Set by sinks that also want raw basic-node accumulator states;
    #: engines supporting capture check this before finalizing entries.
    wants_states = False

    def open_measure(self, name: str, granularity: Granularity) -> None:
        """Called once per measure before any emit."""

    def emit(self, name: str, key: tuple, value) -> None:
        raise NotImplementedError

    def open_states(self, name: str, granularity: Granularity) -> None:
        """Called once per basic node when :attr:`wants_states` is set."""

    def emit_state(self, name: str, key: tuple, state) -> None:
        """One basic node's raw accumulator state, as it finalizes.

        Only called by state-capturing engines, and only when
        :attr:`wants_states` is set.  ``state`` must not be mutated by
        the receiver — the engine finalizes the same object next.
        """

    def close(self) -> None:
        """Called once after the scan completes."""

    def result(self) -> dict[str, MeasureTable] | None:
        """The collected tables, if this sink retains them."""
        return None


class MemorySink(Sink):
    """Collects every finalized entry into :class:`MeasureTable`s."""

    def __init__(self) -> None:
        self.tables: dict[str, MeasureTable] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self.tables.setdefault(name, MeasureTable(name, granularity))

    def emit(self, name: str, key: tuple, value) -> None:
        self.tables[name].rows[key] = value

    def result(self) -> dict[str, MeasureTable]:
        return self.tables


class NullSink(Sink):
    """Counts emissions and discards values — for benchmarking."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self.counts.setdefault(name, 0)

    def emit(self, name: str, key: tuple, value) -> None:
        self.counts[name] += 1


class FileSink(Sink):
    """Appends finalized entries to one text file per measure.

    This matches the paper's "flush the finalized entries to disk":
    entries arrive (and are written) in finalized order, so the output
    files are sorted by the plan's output order without any extra sort.
    """

    def __init__(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._files: dict[str, object] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        if name not in self._files:
            path = os.path.join(self.directory, f"{name}.tsv")
            self._files[name] = open(path, "w")

    def emit(self, name: str, key: tuple, value) -> None:
        fields = "\t".join(str(part) for part in key)
        self._files[name].write(f"{fields}\t{value}\n")

    def close(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files.clear()


class DirectorySink(FileSink):
    """One TSV per measure under a directory — the CLI's ``--out``.

    A thin, documented alias of :class:`FileSink` kept as its own class
    so callers can say what they mean: a *directory of measure files*
    rather than an arbitrary file destination.
    """


class ObservedSink(Sink):
    """Wraps a sink and publishes per-measure emission counts.

    Counts accumulate in a local dict (one increment per emitted entry)
    and land in the process metrics registry — the
    ``repro_sink_emitted_total`` counter, labelled by measure — in one
    batch at :meth:`close`, keeping the per-entry hot path free of
    metric locks.
    """

    def __init__(self, inner: Sink) -> None:
        self.inner = inner
        self.wants_states = inner.wants_states
        self._emitted: dict[str, int] = {}

    def open_measure(self, name: str, granularity: Granularity) -> None:
        self._emitted.setdefault(name, 0)
        self.inner.open_measure(name, granularity)

    def emit(self, name: str, key: tuple, value) -> None:
        self._emitted[name] += 1
        self.inner.emit(name, key, value)

    def open_states(self, name: str, granularity: Granularity) -> None:
        self.inner.open_states(name, granularity)

    def emit_state(self, name: str, key: tuple, state) -> None:
        self.inner.emit_state(name, key, state)

    def close(self) -> None:
        self.inner.close()
        from repro.obs import get_registry
        from repro.obs.metrics import SINK_EMITTED

        counter = get_registry().counter(
            SINK_EMITTED,
            "Finalized entries emitted to sinks, by measure",
            labelnames=("measure",),
        )
        for name, count in self._emitted.items():
            if count:
                counter.labels(measure=name).inc(count)

    def result(self) -> dict[str, MeasureTable] | None:
        return self.inner.result()


class TeeSink(Sink):
    """Fans every sink callback out to several child sinks.

    The canonical use is keeping tables in memory for printing while
    also writing TSVs::

        sink = TeeSink(MemorySink(), DirectorySink(out_dir))

    :meth:`result` returns the first child's non-``None`` result, in
    construction order.  State capture is offered to children that ask
    for it (:attr:`Sink.wants_states`), and the tee itself advertises
    ``wants_states`` when any child does.
    """

    def __init__(self, *sinks: Sink) -> None:
        self.sinks: tuple[Sink, ...] = tuple(sinks)
        self.wants_states = any(sink.wants_states for sink in sinks)

    def open_measure(self, name: str, granularity: Granularity) -> None:
        for sink in self.sinks:
            sink.open_measure(name, granularity)

    def emit(self, name: str, key: tuple, value) -> None:
        for sink in self.sinks:
            sink.emit(name, key, value)

    def open_states(self, name: str, granularity: Granularity) -> None:
        for sink in self.sinks:
            if sink.wants_states:
                sink.open_states(name, granularity)

    def emit_state(self, name: str, key: tuple, state) -> None:
        for sink in self.sinks:
            if sink.wants_states:
                sink.emit_state(name, key, state)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def result(self) -> dict[str, MeasureTable] | None:
        for sink in self.sinks:
            tables = sink.result()
            if tables is not None:
                return tables
        return None
