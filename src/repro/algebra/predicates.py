"""Selection predicates for AW-RA expressions.

A predicate is evaluated against either a fact-table record or a
measure-table entry ``(key, M)``.  The small AST here (fields, constant
comparisons, boolean connectives) is enough for every query in the paper
and keeps predicates *inspectable*, which the rewrite rules (Property 2)
and the optimizer rely on; :class:`RawPredicate` is the escape hatch for
arbitrary callables at the cost of inspectability.

Field references:

- ``Field("M")`` — the measure value of a measure table;
- ``Field("<dimension>")`` — the (generalized, integer-encoded) value
  of a dimension attribute, resolved by name or abbreviation;
- ``Field("<measure attr>")`` — a measure attribute of the fact table.
"""

from __future__ import annotations

import operator
from collections.abc import Callable

from repro.errors import AlgebraError
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema

#: Name of the single measure column of a measure table (paper: T:<G,M>).
MEASURE_FIELD = "M"

_OPS: dict[str, Callable] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base predicate; build concrete ones via :class:`Field` and ``&|~``."""

    def compile_for_fact(
        self, schema: DatasetSchema
    ) -> Callable[[tuple], bool]:
        """Compile to a fast ``record -> bool`` over fact-table rows."""
        raise NotImplementedError

    def compile_for_measure(
        self, schema: DatasetSchema, granularity: Granularity
    ) -> Callable[[tuple, object], bool]:
        """Compile to ``(key, value) -> bool`` over measure entries."""
        raise NotImplementedError

    def references_measure(self) -> bool:
        """Whether the predicate reads ``M`` (blocks Property-2 pushes)."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Field:
    """A named field; comparison operators produce :class:`Comparison`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _cmp(self, op: str, value) -> "Comparison":
        return Comparison(self.name, op, value)

    def __eq__(self, value) -> "Comparison":  # type: ignore[override]
        return self._cmp("==", value)

    def __ne__(self, value) -> "Comparison":  # type: ignore[override]
        return self._cmp("!=", value)

    def __lt__(self, value) -> "Comparison":
        return self._cmp("<", value)

    def __le__(self, value) -> "Comparison":
        return self._cmp("<=", value)

    def __gt__(self, value) -> "Comparison":
        return self._cmp(">", value)

    def __ge__(self, value) -> "Comparison":
        return self._cmp(">=", value)

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Field({self.name!r})"


class Comparison(Predicate):
    """``field <op> constant`` — NULL-safe: None never satisfies."""

    __slots__ = ("field", "op", "value")

    def __init__(self, field: str, op: str, value) -> None:
        if op not in _OPS:
            raise AlgebraError(f"unknown comparison operator {op!r}")
        self.field = field
        self.op = op
        self.value = value

    def compile_for_fact(self, schema):
        idx = schema.field_index(self.field)
        fn = _OPS[self.op]
        const = self.value

        def test(record, _idx=idx, _fn=fn, _const=const):
            field_value = record[_idx]
            return field_value is not None and _fn(field_value, _const)

        return test

    def compile_for_measure(self, schema, granularity):
        fn = _OPS[self.op]
        const = self.value
        if self.field == MEASURE_FIELD:
            def test_m(key, value, _fn=fn, _const=const):
                return value is not None and _fn(value, _const)

            return test_m
        idx = schema.dim_index(self.field)
        if granularity.levels[idx] == schema.dimensions[idx].all_level:
            raise AlgebraError(
                f"predicate references dimension {self.field!r} which is "
                f"at ALL in granularity {granularity}"
            )

        def test_dim(key, value, _idx=idx, _fn=fn, _const=const):
            return _fn(key[_idx], _const)

        return test_dim

    def references_measure(self) -> bool:
        return self.field == MEASURE_FIELD

    def __repr__(self) -> str:
        return f"{self.field} {self.op} {self.value!r}"


class And(Predicate):
    """Conjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left, self.right = left, right

    def compile_for_fact(self, schema):
        lhs = self.left.compile_for_fact(schema)
        rhs = self.right.compile_for_fact(schema)
        return lambda record: lhs(record) and rhs(record)

    def compile_for_measure(self, schema, granularity):
        lhs = self.left.compile_for_measure(schema, granularity)
        rhs = self.right.compile_for_measure(schema, granularity)
        return lambda key, value: lhs(key, value) and rhs(key, value)

    def references_measure(self) -> bool:
        return (
            self.left.references_measure()
            or self.right.references_measure()
        )

    def __repr__(self) -> str:
        return f"({self.left!r}) AND ({self.right!r})"


class Or(Predicate):
    """Disjunction of two predicates."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left, self.right = left, right

    def compile_for_fact(self, schema):
        lhs = self.left.compile_for_fact(schema)
        rhs = self.right.compile_for_fact(schema)
        return lambda record: lhs(record) or rhs(record)

    def compile_for_measure(self, schema, granularity):
        lhs = self.left.compile_for_measure(schema, granularity)
        rhs = self.right.compile_for_measure(schema, granularity)
        return lambda key, value: lhs(key, value) or rhs(key, value)

    def references_measure(self) -> bool:
        return (
            self.left.references_measure()
            or self.right.references_measure()
        )

    def __repr__(self) -> str:
        return f"({self.left!r}) OR ({self.right!r})"


class Not(Predicate):
    """Negation of a predicate."""

    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def compile_for_fact(self, schema):
        fn = self.inner.compile_for_fact(schema)
        return lambda record: not fn(record)

    def compile_for_measure(self, schema, granularity):
        fn = self.inner.compile_for_measure(schema, granularity)
        return lambda key, value: not fn(key, value)

    def references_measure(self) -> bool:
        return self.inner.references_measure()

    def __repr__(self) -> str:
        return f"NOT ({self.inner!r})"


class RawPredicate(Predicate):
    """Escape hatch: wrap arbitrary callables.

    Args:
        fact_fn: ``record -> bool`` for fact-table selections.
        measure_fn: ``(key, value) -> bool`` for measure selections.
        reads_measure: Declare whether ``measure_fn`` inspects the
            value; conservative default True (blocks rewrites).
    """

    def __init__(
        self,
        fact_fn: Callable | None = None,
        measure_fn: Callable | None = None,
        reads_measure: bool = True,
        label: str = "<raw>",
    ) -> None:
        self._fact_fn = fact_fn
        self._measure_fn = measure_fn
        self._reads_measure = reads_measure
        self.label = label

    def compile_for_fact(self, schema):
        if self._fact_fn is None:
            raise AlgebraError(
                f"{self.label}: no fact-table form for this predicate"
            )
        return self._fact_fn

    def compile_for_measure(self, schema, granularity):
        if self._measure_fn is None:
            raise AlgebraError(
                f"{self.label}: no measure-table form for this predicate"
            )
        return self._measure_fn

    def references_measure(self) -> bool:
        return self._reads_measure

    def __repr__(self) -> str:
        return self.label
