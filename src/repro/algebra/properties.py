"""Algebraic identities of AW-RA (Theorem 1) as rewrite functions.

Each function returns a *new* expression; inputs are never mutated.
Rewrites only fire when their side conditions provably hold — otherwise
the expression is returned unchanged (Property 1's distributivity
requirement, Property 2's dimension-only condition, and so on).

Property 3 (match join is not associative) is a *negative* result; there
is nothing to rewrite, and the test suite demonstrates the inequality.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import AlgebraError
from repro.aggregates.base import AggSpec, Kind
from repro.aggregates.distributive import ConstantAggregate
from repro.algebra.conditions import ChildParent
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    RawPredicate,
)

#: Outer/inner aggregate pairs for which two-level aggregation collapses
#: (Property 1).  For SUM/MIN/MAX the combiner is the function itself;
#: COUNT's combiner is SUM (counting counts would be wrong), and the
#: collapsed single-level function is COUNT again.
_COLLAPSIBLE: dict[tuple[str, str], str] = {
    ("sum", "sum"): "sum",
    ("min", "min"): "min",
    ("max", "max"): "max",
    ("sum", "count"): "count",
}


def collapse_aggregations(expr: Expr) -> Expr:
    """Property 1: ``g_{G1,agg}(g_{G2,agg}(T)) = g_{G1,agg}(T)``.

    Fires when the outer aggregate is the *combiner* of the inner
    distributive aggregate; the collapsed expression aggregates ``T``
    directly at the outer granularity.
    """
    if not isinstance(expr, Aggregate):
        return expr
    inner = expr.child
    if not isinstance(inner, Aggregate):
        return expr
    if (
        inner.agg.function.kind is not Kind.DISTRIBUTIVE
        or expr.agg.function.kind is not Kind.DISTRIBUTIVE
    ):
        return expr
    pair = (expr.agg.function.name, inner.agg.function.name)
    collapsed_name = _COLLAPSIBLE.get(pair)
    if collapsed_name is None:
        return expr
    return Aggregate(
        inner.child,
        expr.granularity,
        AggSpec(collapsed_name, inner.agg.input_field),
    )


def _generalize_predicate(
    predicate: Predicate, coarse_levels, schema
) -> Predicate:
    """Rewrite ``cond1`` into ``cond2`` for Property 2.

    ``cond1`` compares dimension values at the aggregate's (coarse)
    granularity; the pushed-down ``cond2`` must compare
    ``gamma(x)`` instead.  Equality comparisons on dimensions become
    raw predicates that generalize the finer value first.
    """
    if isinstance(predicate, Comparison):
        if predicate.field == "M":
            raise AlgebraError("cannot push a measure predicate")
        dim_idx = schema.dim_index(predicate.field)
        coarse_level = coarse_levels[dim_idx]
        op = predicate.op
        const = predicate.value
        dim = schema.dimensions[dim_idx]
        from repro.algebra.predicates import _OPS

        fn = _OPS[op]

        def fact_fn(record, _d=dim, _i=dim_idx, _lv=coarse_level):
            return fn(_d.generalize(record[_i], 0, _lv), const)

        def measure_fn(key, value, _d=dim, _i=dim_idx, _lv=coarse_level):
            # The finer table's key carries values at its own levels; we
            # conservatively support base-level children only, which is
            # what pushing all the way to D produces.
            return fn(_d.generalize(key[_i], 0, _lv), const)

        return RawPredicate(
            fact_fn=fact_fn,
            measure_fn=measure_fn,
            reads_measure=False,
            label=f"γ[{dim.name}->{coarse_level}] {op} {const!r}",
        )
    if isinstance(predicate, And):
        return And(
            _generalize_predicate(predicate.left, coarse_levels, schema),
            _generalize_predicate(predicate.right, coarse_levels, schema),
        )
    if isinstance(predicate, Or):
        return Or(
            _generalize_predicate(predicate.left, coarse_levels, schema),
            _generalize_predicate(predicate.right, coarse_levels, schema),
        )
    if isinstance(predicate, Not):
        return Not(
            _generalize_predicate(predicate.inner, coarse_levels, schema)
        )
    raise AlgebraError(
        f"cannot push predicate {predicate!r} through an aggregation"
    )


def push_selection_below_aggregate(expr: Expr) -> Expr:
    """Property 2: ``σ_c1(g_{G,agg}(T)) = g_{G,agg}(σ_c2(T))``.

    Legal only when the selection reads dimension attributes alone; the
    pushed predicate generalizes each dimension value before comparing.
    The rewrite fires when ``T`` is the fact table (the common and
    always-sound case); otherwise the expression is returned unchanged.
    """
    if not isinstance(expr, Select):
        return expr
    agg_expr = expr.child
    if not isinstance(agg_expr, Aggregate):
        return expr
    if expr.predicate.references_measure():
        return expr
    if not isinstance(agg_expr.child, FactTable):
        return expr
    pushed = _generalize_predicate(
        expr.predicate, agg_expr.granularity.levels, expr.schema
    )
    return Aggregate(
        Select(agg_expr.child, pushed),
        agg_expr.granularity,
        agg_expr.agg,
    )


def reorder_combine_inputs(
    expr: CombineJoin, permutation: Sequence[int]
) -> CombineJoin:
    """Property 4: permute combine-join inputs, adapting ``f_c``.

    ``permutation[i]`` gives the old index of the input placed at new
    position ``i``.  The adapted combine function un-permutes its
    arguments before calling the original.
    """
    n = len(expr.inputs)
    if sorted(permutation) != list(range(n)):
        raise AlgebraError(
            f"not a permutation of {n} inputs: {list(permutation)}"
        )
    perm = tuple(permutation)
    inverse = [0] * n
    for new_pos, old_pos in enumerate(perm):
        inverse[old_pos] = new_pos
    original = expr.fn

    def adapted(base_value, *values):
        reordered = tuple(values[inverse[i]] for i in range(n))
        return original.fn(base_value, *reordered)

    fn = CombineFn(
        adapted,
        name=f"{original.name}∘π{list(perm)}",
        handles_null=original.handles_null,
    )
    return CombineJoin(
        expr.base, [expr.inputs[old] for old in perm], fn
    )


def split_combine_join(
    expr: CombineJoin,
    split_at: int,
    fc1: Callable[..., float],
    fc2: Callable[..., float],
    handles_null: bool = False,
) -> CombineJoin:
    """Property 5: decompose ``S ⋈̄_fc (T_1..T_n)`` into two joins.

    The caller supplies the decomposition
    ``fc(v, v_1..v_n) == fc2(fc1(v, v_1..v_k), v_{k+1}..v_n)`` —
    the existence of such functions is the property's side condition and
    cannot be derived mechanically.
    """
    if not 0 < split_at < len(expr.inputs):
        raise AlgebraError(
            f"split point {split_at} out of range 1.."
            f"{len(expr.inputs) - 1}"
        )
    first = CombineJoin(
        expr.base,
        expr.inputs[:split_at],
        CombineFn(fc1, name=f"{expr.fn.name}_1", handles_null=handles_null),
    )
    return CombineJoin(
        first,
        expr.inputs[split_at:],
        CombineFn(fc2, name=f"{expr.fn.name}_2", handles_null=handles_null),
    )


def _cell_preserving_lineage(expr: Expr) -> Expr | None:
    """Return the root :class:`FactTable` if ``expr`` is a chain of
    aggregations over it with no selections (so no region ever drops
    out), else ``None``."""
    node = expr
    while isinstance(node, Aggregate):
        node = node.child
    return node if isinstance(node, FactTable) else None


def match_join_as_aggregate(expr: Expr) -> Expr:
    """Rewrite a child/parent match join into a plain aggregation.

    The paper notes "a match join with cond_cp is essentially equal to
    an aggregation operator".  The subtlety is left-outer semantics: the
    join keeps every S-cell even when T contributes nothing.  The
    rewrite therefore fires only when both sides are selection-free
    aggregation chains over the same fact table, which guarantees S's
    cells coincide with the roll-up of T's keys.
    """
    if not isinstance(expr, MatchJoin):
        return expr
    if not isinstance(expr.cond, ChildParent):
        return expr
    target_root = _cell_preserving_lineage(expr.target)
    source_root = _cell_preserving_lineage(expr.source)
    if target_root is None or source_root is None:
        return expr
    if target_root is not source_root:
        return expr
    return Aggregate(expr.source, expr.granularity, expr.agg)


def cells(fact: FactTable, granularity) -> Aggregate:
    """The paper's ``S_base = g_{G,0}(D)`` idiom: materialize cells."""
    return Aggregate(fact, granularity, AggSpec(ConstantAggregate(0), "*"))


def simplify(expr: Expr) -> Expr:
    """Apply the always-sound rewrites bottom-up until a fixpoint."""
    changed = True
    current = expr
    while changed:
        rebuilt = _rewrite_bottom_up(current)
        changed = rebuilt is not current and repr(rebuilt) != repr(current)
        current = rebuilt
    return current


def _rewrite_bottom_up(expr: Expr) -> Expr:
    if isinstance(expr, Select):
        child = _rewrite_bottom_up(expr.child)
        node = Select(child, expr.predicate)
        return push_selection_below_aggregate(node)
    if isinstance(expr, Aggregate):
        child = _rewrite_bottom_up(expr.child)
        node = Aggregate(child, expr.granularity, expr.agg)
        return collapse_aggregations(node)
    if isinstance(expr, MatchJoin):
        target = _rewrite_bottom_up(expr.target)
        source = _rewrite_bottom_up(expr.source)
        node = MatchJoin(target, source, expr.cond, expr.agg)
        return match_join_as_aggregate(node)
    if isinstance(expr, CombineJoin):
        base = _rewrite_bottom_up(expr.base)
        inputs = [_rewrite_bottom_up(child) for child in expr.inputs]
        return CombineJoin(base, inputs, expr.fn)
    return expr
