"""The AW-RA algebra (Section 3.2).

Expression nodes (:mod:`repro.algebra.expr`) follow Table 5 of the
paper: the fact table ``D``, selection, aggregation ``g_{G,agg}``, match
join, and combine join.  Match conditions (self, parent/child,
child/parent, sibling) live in :mod:`repro.algebra.conditions`,
selection predicates in :mod:`repro.algebra.predicates`, and the
algebraic identities of Theorem 1 in :mod:`repro.algebra.properties`.
"""

from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    MatchCondition,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Field,
    Not,
    Or,
    Predicate,
    RawPredicate,
)
from repro.algebra.properties import (
    cells,
    collapse_aggregations,
    match_join_as_aggregate,
    push_selection_below_aggregate,
    reorder_combine_inputs,
    simplify,
    split_combine_join,
)
from repro.algebra.display import explain, to_formula

__all__ = [
    "Expr",
    "FactTable",
    "Select",
    "Aggregate",
    "MatchJoin",
    "CombineJoin",
    "CombineFn",
    "MatchCondition",
    "SelfMatch",
    "ParentChild",
    "ChildParent",
    "Sibling",
    "Lags",
    "Predicate",
    "Field",
    "Comparison",
    "And",
    "Or",
    "Not",
    "RawPredicate",
    "simplify",
    "cells",
    "explain",
    "to_formula",
    "collapse_aggregations",
    "push_selection_below_aggregate",
    "match_join_as_aggregate",
    "reorder_combine_inputs",
    "split_combine_join",
]
