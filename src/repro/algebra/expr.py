"""AW-RA expression nodes (Table 5 of the paper).

Every expression denotes a *measure table* with schema ``<G, M>``: one
row per region of granularity ``G``, carrying a single measure value
``M``.  The construction rules of Table 5 are enforced at build time:

====================  =====================================================
``FactTable``         the raw dataset ``D`` (granularity ``G_0``)
``Select``            ``σ_cond(T)``, any ``T``
``Aggregate``         ``g_{G,agg}(T)``, needs ``T.G <=_G G``
``MatchJoin``         ``S ⋈_{cond,agg} T``, ``S`` must not be ``D``/``σ(D)``
``CombineJoin``       ``S ⋈̄_fc (T_1..T_n)``, equal granularities, no raw
                      fact-table inputs
====================  =====================================================
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import AlgebraError
from repro.aggregates.base import AggSpec
from repro.algebra.conditions import MatchCondition
from repro.algebra.predicates import Predicate
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema


class Expr:
    """Base class for AW-RA expressions."""

    schema: DatasetSchema
    granularity: Granularity

    def is_fact_like(self) -> bool:
        """True for ``D`` or ``σ(...σ(D))`` — the shapes Table 5 bans
        as match/combine-join inputs."""
        return False

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (for traversals and rewrites)."""
        return ()

    # Fluent constructors, so queries read like the paper's formulas.

    def where(self, predicate: Predicate) -> "Select":
        """``σ_predicate(self)``."""
        return Select(self, predicate)

    def roll_up(self, granularity: Granularity, agg: AggSpec) -> "Aggregate":
        """``g_{granularity, agg}(self)``."""
        return Aggregate(self, granularity, agg)

    def match(
        self,
        source: "Expr",
        cond: MatchCondition,
        agg: AggSpec,
    ) -> "MatchJoin":
        """``self ⋈_{cond, agg} source`` (self provides the keys)."""
        return MatchJoin(self, source, cond, agg)

    def combine(
        self,
        inputs: Sequence["Expr"],
        fn: "CombineFn",
    ) -> "CombineJoin":
        """``self ⋈̄_fn (inputs...)``."""
        return CombineJoin(self, inputs, fn)


class FactTable(Expr):
    """The raw fact table ``D`` at base granularity ``G_0``."""

    def __init__(self, schema: DatasetSchema) -> None:
        self.schema = schema
        self.granularity = Granularity.base(schema)

    def is_fact_like(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "D"


class Select(Expr):
    """``σ_cond(T)`` — filter rows; granularity unchanged."""

    def __init__(self, child: Expr, predicate: Predicate) -> None:
        if not isinstance(predicate, Predicate):
            raise AlgebraError(
                f"selection needs a Predicate, got {type(predicate).__name__}"
            )
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.granularity = child.granularity

    def is_fact_like(self) -> bool:
        return self.child.is_fact_like()

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]({self.child!r})"


class Aggregate(Expr):
    """``g_{G,agg}(T)`` — roll ``T`` up to granularity ``G``.

    Table 5 precondition: ``T.G <=_G G`` (the input must be finer).
    """

    def __init__(
        self, child: Expr, granularity: Granularity, agg: AggSpec
    ) -> None:
        if not isinstance(agg, AggSpec):
            raise AlgebraError(f"aggregation needs an AggSpec, got {agg!r}")
        if not child.granularity.finer_or_equal(granularity):
            raise AlgebraError(
                f"cannot aggregate {child.granularity} up to "
                f"{granularity}: input is not finer"
            )
        if not child.is_fact_like() and agg.input_field not in ("M", "*"):
            raise AlgebraError(
                f"measure tables carry a single measure M; cannot "
                f"aggregate field {agg.input_field!r}"
            )
        self.child = child
        self.granularity = granularity
        self.agg = agg
        self.schema = child.schema

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"g[{self.granularity!r},{self.agg!r}]({self.child!r})"


class MatchJoin(Expr):
    """``S ⋈_{cond,agg} T`` — aggregate related regions' measures.

    ``target`` (S) provides the output keys; ``source`` (T) provides the
    measures fed to ``agg``.  Left-outer semantics (Table 3): every
    S-region appears in the output even with zero matches.
    """

    def __init__(
        self,
        target: Expr,
        source: Expr,
        cond: MatchCondition,
        agg: AggSpec,
    ) -> None:
        if target.is_fact_like():
            raise AlgebraError(
                "match join target must not be the raw fact table or a "
                "selection over it (Table 5)"
            )
        if target.schema is not source.schema:
            raise AlgebraError("match join inputs use different schemas")
        if not isinstance(agg, AggSpec):
            raise AlgebraError(f"match join needs an AggSpec, got {agg!r}")
        if agg.input_field not in ("M", "*"):
            raise AlgebraError(
                "match joins aggregate the source measure M (or count *)"
            )
        cond.validate(target.granularity, source.granularity)
        self.target = target
        self.source = source
        self.cond = cond
        self.agg = agg
        self.schema = target.schema
        self.granularity = target.granularity

    def children(self) -> tuple[Expr, ...]:
        return (self.target, self.source)

    def __repr__(self) -> str:
        return (
            f"({self.target!r} ⋈[{self.cond!r},{self.agg!r}] "
            f"{self.source!r})"
        )


class CombineFn:
    """The combine function ``f_c`` of a combine join.

    Wraps a Python callable over ``(S.M, T_1.M, ..., T_n.M)``.  By
    default, any ``None`` input (a missing left-outer match or a NULL
    measure) short-circuits to ``None``, matching SQL arithmetic over
    NULL; pass ``handles_null=True`` for functions that want the raw
    values.
    """

    def __init__(
        self,
        fn: Callable[..., float | None],
        name: str = "fc",
        handles_null: bool = False,
    ) -> None:
        self.fn = fn
        self.name = name
        self.handles_null = handles_null

    def __call__(self, *values) -> float | None:
        if not self.handles_null and any(v is None for v in values):
            return None
        return self.fn(*values)

    def __repr__(self) -> str:
        return self.name


class CombineJoin(Expr):
    """``S ⋈̄_fc (T_1, ..., T_n)`` — combine same-region measures.

    Table 5 preconditions: all inputs share ``S``'s granularity and none
    is the raw fact table (or a selection over it).
    """

    def __init__(
        self, base: Expr, inputs: Sequence[Expr], fn: CombineFn
    ) -> None:
        if not isinstance(fn, CombineFn):
            raise AlgebraError(
                f"combine join needs a CombineFn, got {type(fn).__name__}"
            )
        if base.is_fact_like():
            raise AlgebraError(
                "combine join base must not be fact-like (Table 5)"
            )
        if not inputs:
            raise AlgebraError("combine join needs at least one input")
        for expr in inputs:
            if expr.is_fact_like():
                raise AlgebraError(
                    "combine join inputs must not be fact-like (Table 5)"
                )
            if expr.schema is not base.schema:
                raise AlgebraError(
                    "combine join inputs use different schemas"
                )
            if expr.granularity != base.granularity:
                raise AlgebraError(
                    f"combine join needs equal granularities: "
                    f"{base.granularity} vs {expr.granularity}"
                )
        self.base = base
        self.inputs = tuple(inputs)
        self.fn = fn
        self.schema = base.schema
        self.granularity = base.granularity

    def children(self) -> tuple[Expr, ...]:
        return (self.base, *self.inputs)

    def __repr__(self) -> str:
        inner = ", ".join(repr(expr) for expr in self.inputs)
        return f"({self.base!r} ⋈̄[{self.fn!r}] ({inner}))"
