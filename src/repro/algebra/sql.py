"""SQL generation: the Tables 2-4 equivalents of AW-RA expressions.

The paper defines each AW-RA operator by an equivalent SQL query
(aggregation = Table 2, match join = Table 3, combine join = Table 4).
``to_sql`` emits that translation for any expression, as a ``WITH``
query with one CTE per measure sub-expression — both documentation
(the generated SQL *is* the paper's semantics) and a vivid illustration
of the paper's complaint that "the resulting query often contains
multiply nested sub-queries".

Two rendering *dialects* share the translation skeleton:

- :data:`PAPER` (the default) reproduces the paper's prose form.
  Value generalization appears as ``GAMMA_<attr>_<domain>(col)``
  calls — in a real deployment those are the dimension-table lookups
  the paper treats as inexpensive functions (Section 3.2) — and
  combine functions appear as ``FC(...)``-style pseudo-calls.
- :data:`SQLITE` / :data:`DUCKDB` are *executable*: every ``GAMMA``
  becomes a real join (or scalar lookup) against a materialized
  dimension table, combine functions become registered UDF calls, and
  aggregates without a native SQL form compile to portable arithmetic
  (``var``/``stddev`` via the moment formula) or raise a structured
  :class:`SqlUnsupportedError` (``median``, ``approx_distinct`` on
  sqlite).  :func:`compile_sql` returns the query *plus* the lookup
  tables and functions the executing backend must provide
  (:mod:`repro.backends`).

Identifier hygiene (the part the paper never needed): SQL engines
resolve identifiers case-insensitively, so the network schema's ``t``
(Timestamp) and ``T`` (Target) abbreviations would collide as column
names.  :func:`fact_columns` and :func:`dim_columns` assign unique,
reserved-word-free names deterministically (first occurrence keeps its
name; later case-insensitive duplicates get a ``_<dim index>`` suffix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AlgebraError
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    MatchCondition,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema

#: SQL keywords an identifier must not collide with (the union of the
#: sqlite and common-ANSI words a schema author could plausibly use as
#: a dimension or measure name).  Renaming beats quoting: the emitted
#: SQL stays copy-pasteable into any engine's shell.
RESERVED_WORDS = frozenset(
    """
    ALL AND AS ASC BETWEEN BY CASE CAST CHECK COLUMN CREATE CROSS
    DEFAULT DELETE DESC DISTINCT DROP ELSE END EXCEPT EXISTS FROM FULL
    GROUP HAVING IN INDEX INNER INSERT INTERSECT INTO IS JOIN KEY LEFT
    LIKE LIMIT NATURAL NOT NULL OFFSET ON OR ORDER OUTER PRIMARY RIGHT
    SELECT SET TABLE THEN TO UNION UNIQUE UPDATE USING VALUES WHEN
    WHERE WITH
    """.split()
)


class SqlUnsupportedError(AlgebraError):
    """A feature with no executable SQL form in the target dialect.

    ``feature`` names what failed (e.g. ``"median"``); ``measure`` is
    filled in by the workflow compiler so the error names the exact
    measure that cannot run (:mod:`repro.backends.compiler`).
    """

    def __init__(
        self, message: str, feature: str = "", measure: str | None = None
    ) -> None:
        super().__init__(message)
        self.feature = feature
        self.measure = measure


# -- identifier assignment --------------------------------------------------


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def _identifier(name: str) -> str:
    """A parseable bare identifier: sanitized, not reserved, not
    starting with a digit."""
    out = _sanitize(name) or "c"
    if out[0].isdigit():
        out = f"c_{out}"
    if out.upper() in RESERVED_WORDS:
        out = f"{out}_col"
    return out


def _claim(base: str, taken: set[str], index: int) -> str:
    """Claim ``base`` in ``taken`` (case-insensitive), suffixing with
    ``index`` on collision — deterministic, first occurrence wins."""
    name = base
    if name.lower() in taken:
        name = f"{base}_{index}"
        while name.lower() in taken:
            name += "_"
    taken.add(name.lower())
    return name


def fact_columns(schema: DatasetSchema) -> dict[str, str]:
    """Fact-table column per field (dimension abbrevs, then measures).

    Keyed by dimension *name* and measure name; values are unique even
    under case-insensitive resolution (sqlite folds ``t``/``T``).
    """
    taken: set[str] = set()
    columns: dict[str, str] = {}
    for i, dim in enumerate(schema.dimensions):
        columns[dim.name] = _claim(_identifier(dim.abbrev), taken, i)
    for j, measure in enumerate(schema.measures):
        columns[measure] = _claim(
            _identifier(measure), taken, len(schema.dimensions) + j
        )
    return columns


def _fact_column(schema: DatasetSchema, dim: int) -> str:
    return fact_columns(schema)[schema.dimensions[dim].name]


def dim_columns(granularity: Granularity) -> list[tuple[int, str]]:
    """(dim index, SQL column name) for every non-ALL dimension.

    The measure-table analogue of :func:`fact_columns`: names follow
    the paper's ``<abbrev>_<domain>`` scheme, deduplicated
    case-insensitively within the granularity.
    """
    schema = granularity.schema
    taken: set[str] = {"m"}  # the measure column is always M
    columns = []
    for dim in granularity.key_dims:
        domain = schema.dimensions[dim].hierarchy.domain(
            granularity.levels[dim]
        )
        name = _identifier(
            f"{schema.dimensions[dim].abbrev}_{domain.name}"
        )
        columns.append((dim, _claim(name, taken, dim)))
    return columns


#: Backwards-compatible alias (pre-dialect name).
_dim_columns = dim_columns


# -- dialects ---------------------------------------------------------------


def _moment_variance(arg: str) -> str:
    """Population variance via the moment formula.

    Portable single-expression SQL; numerically this differs from the
    engines' Welford/Chan recurrence by O(1e-12) relative at the test
    workloads' magnitudes — the documented reason the sql differential
    oracle compares with a looser tolerance than the engine-vs-engine
    checks (``repro.testkit.differential.SQL_ORACLE_TOLERANCE``).
    """
    return f"AVG(({arg}) * ({arg})) - AVG({arg}) * AVG({arg})"


class SqlDialect:
    """How AW-RA renders to SQL.

    The base dialect is the paper's documentation form: not meant to be
    executed, faithful to the prose of Tables 2-4.
    """

    name = "paper"
    #: Whether the output runs on a real engine (gammas become lookup
    #: tables, combine fns become registered UDFs, empty-input
    #: aggregates are guarded).
    executable = False
    #: Column type of fact measure attributes in generated DDL.
    measure_type = "REAL"

    def aggregate_sql(self, function_name: str, arg: str) -> str:
        """Render one aggregate call; the paper form never refuses."""
        return f"{function_name.upper()}({arg})"


class SqliteDialect(SqlDialect):
    """Executable SQL for stdlib ``sqlite3`` (the always-on engine)."""

    name = "sqlite"
    executable = True

    #: Aggregates with a direct native form.
    _NATIVE = {"count", "sum", "min", "max", "avg"}

    def aggregate_sql(self, function_name: str, arg: str) -> str:
        name = function_name.lower()
        if name in self._NATIVE:
            return f"{name.upper()}({arg})"
        if name == "count_distinct":
            return f"COUNT(DISTINCT {arg})"
        if name == "var":
            return _moment_variance(arg)
        if name == "stddev":
            # MAX() here is sqlite's two-argument scalar max, clamping
            # the moment formula's tiny negative float residue.
            return f"SQRT(MAX(0.0, {_moment_variance(arg)}))"
        raise SqlUnsupportedError(
            f"aggregate {function_name!r} has no executable "
            f"{self.name} form (holistic aggregates need per-group "
            f"value lists; use the in-memory engines or the duckdb "
            f"backend)",
            feature=function_name,
        )


class DuckDbDialect(SqliteDialect):
    """Executable SQL for DuckDB (optional second engine).

    DuckDB has native holistic/algebraic aggregates, so ``median``,
    ``var`` and ``stddev`` compile directly.  ``approx_distinct`` stays
    unsupported: DuckDB's ``approx_count_distinct`` is a different
    sketch than this repo's HyperLogLog, so their estimates would
    legitimately disagree and the differential oracle could not tell a
    backend bug from estimator variance.
    """

    name = "duckdb"
    measure_type = "DOUBLE"

    def aggregate_sql(self, function_name: str, arg: str) -> str:
        name = function_name.lower()
        if name == "median":
            return f"MEDIAN({arg})"
        if name == "var":
            return f"VAR_POP({arg})"
        if name == "stddev":
            return f"STDDEV_POP({arg})"
        return super().aggregate_sql(function_name, arg)


PAPER = SqlDialect()
SQLITE = SqliteDialect()
DUCKDB = DuckDbDialect()

#: Executable dialects by engine name (the backend registry's view).
EXECUTABLE_DIALECTS = {"sqlite": SQLITE, "duckdb": DUCKDB}


def _constant_aggregate_value(function_name: str) -> float | int | None:
    """The literal of a constant aggregate, or None if not constant.

    ``cells`` (the paper's ``g_{G,0}`` idiom) and its ``const[c]``
    spellings render as a literal — no SQL engine has a ``CELLS(*)``
    aggregate, and none is needed: the value is data-independent.
    """
    name = function_name.lower()
    if name == "cells":
        return 0
    if name.startswith("const[") and name.endswith("]"):
        text = name[len("const["):-1]
        try:
            number = float(text)
        except ValueError:
            return None
        return int(number) if number.is_integer() else number
    return None


# -- predicates -------------------------------------------------------------


def _render_value(value) -> str:
    """A SQL literal for a predicate constant (executable dialects)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


class _FactContext:
    """Resolve predicate fields against the physical fact table."""

    def __init__(
        self, schema: DatasetSchema, alias: str | None = None
    ) -> None:
        self.schema = schema
        self.alias = alias
        self._columns = fact_columns(schema)

    def resolve(self, field_name: str) -> str:
        index = self.schema.field_index(field_name)  # raises on unknown
        if index < self.schema.num_dimensions:
            key = self.schema.dimensions[index].name
        else:
            key = self.schema.measures[
                index - self.schema.num_dimensions
            ]
        column = self._columns[key]
        return f"{self.alias}.{column}" if self.alias else column


class _MeasureContext:
    """Resolve predicate fields against a measure table ``<G, M>``."""

    def __init__(
        self, granularity: Granularity, alias: str | None = None
    ) -> None:
        self.granularity = granularity
        self.alias = alias
        self._columns = dict(dim_columns(granularity))

    def resolve(self, field_name: str) -> str:
        if field_name == "M":
            return f"{self.alias}.M" if self.alias else "M"
        schema = self.granularity.schema
        index = schema.dim_index(field_name)
        if index not in self._columns:
            # Mirrors Comparison.compile_for_measure: a dimension at
            # ALL has no column to compare against.
            raise AlgebraError(
                f"predicate references dimension {field_name!r} which "
                f"is at ALL in granularity {self.granularity}"
            )
        column = self._columns[index]
        return f"{self.alias}.{column}" if self.alias else column


def predicate_to_sql(
    predicate: Predicate, measure_col: str = "M", context=None
) -> str:
    """Render a predicate as a SQL boolean expression.

    Without a ``context`` this is the paper's documentation rendering
    (fields appear sanitized but unresolved).  With a
    :class:`_FactContext` / :class:`_MeasureContext`, fields resolve to
    the actual columns of the table in scope — the form the executable
    dialects require, which also rejects fields the reference engines
    would reject (unknown names, dimensions held at ALL).
    """
    if isinstance(predicate, Comparison):
        if context is not None:
            field_name = context.resolve(predicate.field)
            rendered = _render_value(predicate.value)
        else:
            field_name = (
                measure_col
                if predicate.field == "M"
                else _sanitize(predicate.field)
            )
            value = predicate.value
            rendered = (
                repr(value) if isinstance(value, str) else str(value)
            )
        op = {"==": "=", "!=": "<>"}.get(predicate.op, predicate.op)
        return f"{field_name} {op} {rendered}"
    if isinstance(predicate, And):
        return (
            f"({predicate_to_sql(predicate.left, measure_col, context)}"
            f" AND "
            f"{predicate_to_sql(predicate.right, measure_col, context)})"
        )
    if isinstance(predicate, Or):
        return (
            f"({predicate_to_sql(predicate.left, measure_col, context)}"
            f" OR "
            f"{predicate_to_sql(predicate.right, measure_col, context)})"
        )
    if isinstance(predicate, Not):
        return (
            f"NOT "
            f"({predicate_to_sql(predicate.inner, measure_col, context)})"
        )
    raise AlgebraError(
        f"predicate {predicate!r} has no SQL rendering (raw predicates "
        f"are Python-only)"
    )


# -- compilation output -----------------------------------------------------


@dataclass
class SqlCompilation:
    """One expression compiled to SQL plus its runtime requirements.

    ``lookups`` maps ``(dim, from_level, to_level)`` to the dimension
    lookup table the query joins (``src``/``dst`` columns, rows
    materialized from the dataset by the backend); ``functions`` maps
    registered UDF names to ``(CombineFn, arity)``.  Both are empty
    for the paper dialect.
    """

    sql: str
    dialect: SqlDialect = PAPER
    lookups: dict[tuple[int, int, int], str] = field(default_factory=dict)
    functions: dict[str, tuple[CombineFn, int]] = field(
        default_factory=dict
    )


def _lookup_table_name(dim: int, from_level: int, to_level: int) -> str:
    return f"gamma_d{dim}_{from_level}_{to_level}"


# -- the translation --------------------------------------------------------


def _gamma_pseudo(schema, dim: int, level: int, column: str) -> str:
    """The paper's ``GAMMA_<attr>_<domain>(col)`` pseudo-call."""
    domain = schema.dimensions[dim].hierarchy.domain(level)
    fn = _sanitize(
        f"GAMMA_{schema.dimensions[dim].abbrev}_{domain.name}"
    ).upper()
    return f"{fn}({column})"


class _SqlBuilder:
    def __init__(
        self,
        fact_table_name: str,
        dialect: SqlDialect = PAPER,
        lookups: dict[tuple[int, int, int], str] | None = None,
        functions: dict[str, tuple[CombineFn, int]] | None = None,
    ) -> None:
        self.fact_table_name = fact_table_name
        self.dialect = dialect
        self.ctes: list[tuple[str, str]] = []
        self._memo: dict[int, str] = {}
        self._counter = 0
        # Shared across measures of one workflow compilation so every
        # query agrees on lookup-table and UDF names.
        self.lookups = lookups if lookups is not None else {}
        self.functions = functions if functions is not None else {}

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    # -- runtime requirements -------------------------------------------

    def lookup(self, dim: int, from_level: int, to_level: int) -> str:
        """Register (and name) a dimension lookup table need."""
        key = (dim, from_level, to_level)
        if key not in self.lookups:
            self.lookups[key] = _lookup_table_name(*key)
        return self.lookups[key]

    def function_name(self, fn: CombineFn, arity: int) -> str:
        """Register a combine fn as a UDF; stable name per (fn, arity)."""
        for name, (registered, registered_arity) in self.functions.items():
            if registered is fn and registered_arity == arity:
                return name
        base = _identifier(fn.name).lower() or "fc"
        name = f"fc_{len(self.functions)}_{base}"
        self.functions[name] = (fn, arity)
        return name

    # -- gamma ----------------------------------------------------------

    def gamma_between(
        self,
        schema,
        dim: int,
        fine: Granularity,
        coarse: Granularity,
        column: str,
    ) -> str:
        """Generalize ``column`` from ``fine`` to ``coarse`` levels.

        Paper dialect: the ``GAMMA_*`` pseudo-call.  Executable
        dialects: a scalar lookup against the materialized dimension
        table (used inside join conditions, where a join-based rewrite
        has no table to attach to).
        """
        level = coarse.levels[dim]
        if level == fine.levels[dim]:
            return column
        if not self.dialect.executable:
            return _gamma_pseudo(schema, dim, level, column)
        table = self.lookup(dim, fine.levels[dim], level)
        return f"(SELECT dst FROM {table} WHERE src = {column})"

    # -- dispatch --------------------------------------------------------

    def build(self, expr: Expr) -> str:
        if id(expr) in self._memo:
            return self._memo[id(expr)]
        name = self._translate(expr)
        self._memo[id(expr)] = name
        return name

    # Each _translate_* returns the CTE name holding the result.

    def _translate(self, expr: Expr) -> str:
        if isinstance(expr, Select):
            inner = self.build(expr.child)
            name = self._fresh("filtered")
            self.ctes.append(
                (
                    name,
                    f"SELECT * FROM {inner}\n"
                    f"  WHERE "
                    + self._predicate(expr.predicate, expr.child),
                )
            )
            return name
        if isinstance(expr, Aggregate):
            return self._translate_aggregate(expr)
        if isinstance(expr, MatchJoin):
            return self._translate_match_join(expr)
        if isinstance(expr, CombineJoin):
            return self._translate_combine_join(expr)
        if isinstance(expr, FactTable):
            return self.fact_table_name
        raise AlgebraError(f"no SQL rendering for {expr!r}")

    # -- predicates ------------------------------------------------------

    def _predicate(self, predicate: Predicate, over: Expr) -> str:
        """Render a predicate in the context of the table ``over``."""
        if not self.dialect.executable:
            return predicate_to_sql(predicate)
        if over.is_fact_like():
            context = _FactContext(over.schema)
        else:
            context = _MeasureContext(over.granularity)
        return predicate_to_sql(predicate, context=context)

    def _predicates(self, predicates, over: Expr) -> str:
        return " AND ".join(
            self._predicate(p, over) for p in predicates
        )

    # -- Table 2: aggregation --------------------------------------------

    def _translate_aggregate(self, expr: Aggregate) -> str:
        if self.dialect.executable:
            return self._translate_aggregate_executable(expr)
        inner_expr, predicates = _peel(expr.child)
        if isinstance(inner_expr, FactTable):
            source = self.fact_table_name
            source_gran = inner_expr.granularity
            measure_arg = (
                "*"
                if expr.agg.input_field == "*"
                else _sanitize(expr.agg.input_field)
            )
        else:
            source = self.build(inner_expr)
            source_gran = inner_expr.granularity
            measure_arg = "*" if expr.agg.input_field == "*" else "M"
        select_cols = []
        group_cols = []
        schema = expr.schema
        for dim, col in dim_columns(expr.granularity):
            base_col = (
                _fact_column(schema, dim)
                if isinstance(inner_expr, FactTable)
                else dict(dim_columns(source_gran))[dim]
            )
            rendered = self.gamma_between(
                schema, dim, source_gran, expr.granularity, base_col
            )
            select_cols.append(f"{rendered} AS {col}")
            group_cols.append(rendered)
        agg_sql = self.dialect.aggregate_sql(
            expr.agg.function.name, measure_arg
        )
        select_cols.append(f"{agg_sql} AS M")
        where = ""
        if predicates:
            where = (
                f"\n  WHERE "
                f"{self._predicates(predicates, inner_expr)}"
            )
        group = (
            f"\n  GROUP BY {', '.join(group_cols)}" if group_cols else ""
        )
        name = self._fresh("agg")
        self.ctes.append(
            (
                name,
                f"SELECT {', '.join(select_cols)}\n  FROM {source}"
                f"{where}{group}",
            )
        )
        return name

    def _translate_aggregate_executable(self, expr: Aggregate) -> str:
        """Table 2 with gammas as *real joins* on lookup tables.

        The source (fact table or measure CTE) is aliased ``B``; every
        dimension that generalizes joins its ``gamma_d<i>_<f>_<t>``
        lookup table and groups by the looked-up ``dst``.  A constant
        ``GROUP BY`` guards the zero-key-column case: SQL's global
        aggregate returns one row even over empty input, while the
        engines' region sets contain only non-empty groups.
        """
        inner_expr, predicates = _peel(expr.child)
        schema = expr.schema
        from_fact = isinstance(inner_expr, FactTable)
        source = (
            self.fact_table_name if from_fact else self.build(inner_expr)
        )
        source_gran = inner_expr.granularity
        source_cols = (
            None if from_fact else dict(dim_columns(source_gran))
        )

        joins: list[str] = []
        select_cols: list[str] = []
        group_cols: list[str] = []
        for dim, col in dim_columns(expr.granularity):
            base_col = (
                _fact_column(schema, dim)
                if from_fact
                else source_cols[dim]
            )
            base_expr = f"B.{base_col}"
            from_level = source_gran.levels[dim]
            to_level = expr.granularity.levels[dim]
            if to_level == from_level:
                rendered = base_expr
            else:
                table = self.lookup(dim, from_level, to_level)
                alias = f"g{dim}"
                joins.append(
                    f"\n  JOIN {table} {alias} "
                    f"ON {alias}.src = {base_expr}"
                )
                rendered = f"{alias}.dst"
            select_cols.append(f"{rendered} AS {col}")
            group_cols.append(rendered)

        function_name = expr.agg.function.name
        constant = _constant_aggregate_value(function_name)
        if constant is not None:
            agg_sql = _render_value(constant)
        else:
            if from_fact:
                if expr.agg.input_field == "*":
                    arg = "*"
                else:
                    context = _FactContext(schema, alias="B")
                    arg = context.resolve(expr.agg.input_field)
            else:
                # Measure tables carry a single measure M; the engines
                # feed it to the aggregate even for count(*) specs
                # (COUNT over a measure table counts non-NULL M).
                arg = "B.M"
            agg_sql = self.dialect.aggregate_sql(function_name, arg)
        select_cols.append(f"{agg_sql} AS M")

        where = ""
        if predicates:
            if from_fact:
                context = _FactContext(schema, alias="B")
            else:
                context = _MeasureContext(source_gran, alias="B")
            rendered = " AND ".join(
                predicate_to_sql(p, context=context) for p in predicates
            )
            where = f"\n  WHERE {rendered}"
        group = (
            f"\n  GROUP BY {', '.join(group_cols)}"
            if group_cols
            else "\n  GROUP BY 'all'"
        )
        name = self._fresh("agg")
        self.ctes.append(
            (
                name,
                f"SELECT {', '.join(select_cols)}\n"
                f"  FROM {source} B{''.join(joins)}{where}{group}",
            )
        )
        return name

    # -- Table 3: match join ---------------------------------------------

    def _translate_match_join(self, expr: MatchJoin) -> str:
        target = self.build(expr.target)
        source_expr, predicates = _peel(expr.source)
        source = self.build(source_expr)
        if predicates:
            filtered = self._fresh("filtered")
            rendered = self._predicates(predicates, source_expr)
            self.ctes.append(
                (filtered, f"SELECT * FROM {source}\n  WHERE {rendered}")
            )
            source = filtered
        s_cols = [col for __, col in dim_columns(expr.granularity)]
        cond = self._cond_to_sql(
            expr.cond,
            expr.granularity,
            source_expr.granularity,
            "S",
            "T",
        )
        function_name = expr.agg.function.name
        constant = _constant_aggregate_value(function_name)
        if constant is not None and self.dialect.executable:
            agg_sql = _render_value(constant)
        else:
            agg_sql = self.dialect.aggregate_sql(function_name, "T.M")
        select = ", ".join(f"S.{col}" for col in s_cols)
        if not select and not self.dialect.executable:
            select = "1 AS one"
        if s_cols:
            group = "\n  GROUP BY " + ", ".join(
                f"S.{col}" for col in s_cols
            )
        else:
            # Same zero-key-column guard as aggregation: without it a
            # grouped-less SQL aggregate fabricates one row over an
            # empty S.
            group = "\n  GROUP BY 'all'" if self.dialect.executable else ""
        name = self._fresh("match")
        prefix = f"{select}, " if select else ""
        self.ctes.append(
            (
                name,
                f"SELECT {prefix}{agg_sql} AS M\n"
                f"  FROM {target} S\n"
                f"  LEFT OUTER JOIN {source} T ON {cond}{group}",
            )
        )
        return name

    def _cond_to_sql(
        self,
        cond: MatchCondition,
        s_gran: Granularity,
        t_gran: Granularity,
        s_alias: str,
        t_alias: str,
    ) -> str:
        schema = s_gran.schema
        clauses = []
        if isinstance(cond, SelfMatch):
            for __, col in dim_columns(s_gran):
                clauses.append(f"{s_alias}.{col} = {t_alias}.{col}")
        elif isinstance(cond, ParentChild):
            # gamma(S.X) = T.X
            for dim, t_col in dim_columns(t_gran):
                s_col = dict(dim_columns(s_gran))[dim]
                lifted = self.gamma_between(
                    schema, dim, s_gran, t_gran, f"{s_alias}.{s_col}"
                )
                clauses.append(f"{lifted} = {t_alias}.{t_col}")
        elif isinstance(cond, ChildParent):
            for dim, s_col in dim_columns(s_gran):
                t_col = dict(dim_columns(t_gran))[dim]
                lifted = self.gamma_between(
                    schema, dim, t_gran, s_gran, f"{t_alias}.{t_col}"
                )
                clauses.append(f"{lifted} = {s_alias}.{s_col}")
        elif isinstance(cond, Sibling):
            windows = cond.resolve(schema)
            for dim, col in dim_columns(s_gran):
                if dim in windows:
                    before, after = windows[dim]
                    clauses.append(
                        f"{t_alias}.{col} BETWEEN "
                        f"{s_alias}.{col} - {before} "
                        f"AND {s_alias}.{col} + {after}"
                    )
                else:
                    clauses.append(
                        f"{s_alias}.{col} = {t_alias}.{col}"
                    )
        elif isinstance(cond, Lags):
            offsets = cond.resolve(schema)
            for dim, col in dim_columns(s_gran):
                if dim in offsets:
                    deltas = ", ".join(
                        str(d) for d in offsets[dim]
                    )
                    clauses.append(
                        f"({t_alias}.{col} - {s_alias}.{col}) "
                        f"IN ({deltas})"
                    )
                else:
                    clauses.append(
                        f"{s_alias}.{col} = {t_alias}.{col}"
                    )
        else:
            raise AlgebraError(
                f"no SQL rendering for condition {cond!r}"
            )
        return " AND ".join(clauses) if clauses else "1 = 1"

    # -- Table 4: combine join -------------------------------------------

    def _translate_combine_join(self, expr: CombineJoin) -> str:
        base = self.build(expr.base)
        cols = [col for __, col in dim_columns(expr.granularity)]
        joins = []
        args = ["S.M"]
        for i, child in enumerate(expr.inputs, start=1):
            child_expr, predicates = _peel(child)
            child_name = self.build(child_expr)
            if predicates:
                filtered = self._fresh("filtered")
                rendered = self._predicates(predicates, child_expr)
                self.ctes.append(
                    (
                        filtered,
                        f"SELECT * FROM {child_name}\n"
                        f"  WHERE {rendered}",
                    )
                )
                child_name = filtered
            alias = f"T{i}"
            on = " AND ".join(
                f"S.{col} = {alias}.{col}" for col in cols
            ) or "1 = 1"
            joins.append(
                f"  LEFT OUTER JOIN {child_name} {alias} ON {on}"
            )
            args.append(f"{alias}.M")
        select = ", ".join(f"S.{col}" for col in cols)
        if self.dialect.executable:
            fc = self.function_name(expr.fn, len(args))
        else:
            fc = _sanitize(expr.fn.name).upper() or "FC"
        name = self._fresh("combine")
        body = (
            f"SELECT {select + ', ' if select else ''}"
            f"{fc}({', '.join(args)}) AS M\n"
            f"  FROM {base} S\n" + "\n".join(joins)
        )
        self.ctes.append((name, body))
        return name


def _peel(expr: Expr) -> tuple[Expr, list]:
    predicates = []
    while isinstance(expr, Select):
        predicates.append(expr.predicate)
        expr = expr.child
    return expr, predicates


def compile_sql(
    expr: Expr,
    fact_table_name: str = "D",
    dialect: SqlDialect = PAPER,
    lookups: dict[tuple[int, int, int], str] | None = None,
    functions: dict[str, tuple[CombineFn, int]] | None = None,
) -> SqlCompilation:
    """Compile an AW-RA expression to one SQL query.

    ``lookups`` / ``functions`` may be shared across calls so a
    multi-measure workflow compiles to queries that agree on lookup
    table and UDF names (:mod:`repro.backends.compiler` does this).
    """
    builder = _SqlBuilder(
        fact_table_name,
        dialect=dialect,
        lookups=lookups,
        functions=functions,
    )
    final = builder.build(expr)
    if not builder.ctes:
        sql = f"SELECT * FROM {final};"
    else:
        rendered = ",\n".join(
            f"{name} AS (\n  {body}\n)" for name, body in builder.ctes
        )
        sql = f"WITH {rendered}\nSELECT * FROM {final};"
    return SqlCompilation(
        sql=sql,
        dialect=dialect,
        lookups=builder.lookups,
        functions=builder.functions,
    )


def to_sql(
    expr: Expr,
    fact_table_name: str = "D",
    dialect: SqlDialect = PAPER,
) -> str:
    """Render an AW-RA expression as the paper's equivalent SQL.

    Returns a ``WITH`` query whose final ``SELECT`` yields the
    expression's measure table (dimension columns plus ``M``).
    """
    return compile_sql(expr, fact_table_name, dialect).sql
