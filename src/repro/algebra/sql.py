"""SQL generation: the Tables 2-4 equivalents of AW-RA expressions.

The paper defines each AW-RA operator by an equivalent SQL query
(aggregation = Table 2, match join = Table 3, combine join = Table 4).
``to_sql`` emits that translation for any expression, as a ``WITH``
query with one CTE per measure sub-expression — both documentation
(the generated SQL *is* the paper's semantics) and a vivid illustration
of the paper's complaint that "the resulting query often contains
multiply nested sub-queries".

Value generalization appears as ``GAMMA_<attr>_<domain>(col)`` calls —
in a real deployment those are the dimension-table lookups the paper
treats as inexpensive functions (Section 3.2).
"""

from __future__ import annotations

from repro.errors import AlgebraError
from repro.algebra.conditions import (
    ChildParent,
    Lags,
    MatchCondition,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.algebra.expr import (
    Aggregate,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
)
from repro.cube.granularity import Granularity


def _dim_columns(granularity: Granularity) -> list[tuple[int, str]]:
    """(dim index, SQL column name) for every non-ALL dimension."""
    schema = granularity.schema
    columns = []
    for dim in granularity.key_dims:
        domain = schema.dimensions[dim].hierarchy.domain(
            granularity.levels[dim]
        )
        name = f"{schema.dimensions[dim].abbrev}_{domain.name}"
        columns.append((dim, _sanitize(name)))
    return columns


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def _gamma(granularity: Granularity, dim: int, source_col: str) -> str:
    schema = granularity.schema
    level = granularity.levels[dim]
    if level == 0:
        return source_col
    domain = schema.dimensions[dim].hierarchy.domain(level)
    fn = _sanitize(
        f"GAMMA_{schema.dimensions[dim].abbrev}_{domain.name}"
    ).upper()
    return f"{fn}({source_col})"


def predicate_to_sql(predicate: Predicate, measure_col: str = "M") -> str:
    """Render a predicate as a SQL boolean expression."""
    if isinstance(predicate, Comparison):
        field = measure_col if predicate.field == "M" else _sanitize(
            predicate.field
        )
        op = {"==": "=", "!=": "<>"}.get(predicate.op, predicate.op)
        value = predicate.value
        rendered = repr(value) if isinstance(value, str) else str(value)
        return f"{field} {op} {rendered}"
    if isinstance(predicate, And):
        return (
            f"({predicate_to_sql(predicate.left, measure_col)} AND "
            f"{predicate_to_sql(predicate.right, measure_col)})"
        )
    if isinstance(predicate, Or):
        return (
            f"({predicate_to_sql(predicate.left, measure_col)} OR "
            f"{predicate_to_sql(predicate.right, measure_col)})"
        )
    if isinstance(predicate, Not):
        return f"NOT ({predicate_to_sql(predicate.inner, measure_col)})"
    raise AlgebraError(
        f"predicate {predicate!r} has no SQL rendering (raw predicates "
        f"are Python-only)"
    )


def _cond_to_sql(
    cond: MatchCondition,
    s_gran: Granularity,
    t_gran: Granularity,
    s_alias: str,
    t_alias: str,
) -> str:
    schema = s_gran.schema
    clauses = []
    if isinstance(cond, SelfMatch):
        for __, col in _dim_columns(s_gran):
            clauses.append(f"{s_alias}.{col} = {t_alias}.{col}")
    elif isinstance(cond, ParentChild):
        # gamma(S.X) = T.X
        for dim, t_col in _dim_columns(t_gran):
            s_col = dict(_dim_columns(s_gran))[dim]
            lifted = _gamma_between(schema, dim, s_gran, t_gran,
                                    f"{s_alias}.{s_col}")
            clauses.append(f"{lifted} = {t_alias}.{t_col}")
    elif isinstance(cond, ChildParent):
        for dim, s_col in _dim_columns(s_gran):
            t_col = dict(_dim_columns(t_gran))[dim]
            lifted = _gamma_between(schema, dim, t_gran, s_gran,
                                    f"{t_alias}.{t_col}")
            clauses.append(f"{lifted} = {s_alias}.{s_col}")
    elif isinstance(cond, Sibling):
        windows = cond.resolve(schema)
        for dim, col in _dim_columns(s_gran):
            if dim in windows:
                before, after = windows[dim]
                clauses.append(
                    f"{t_alias}.{col} BETWEEN {s_alias}.{col} - {before} "
                    f"AND {s_alias}.{col} + {after}"
                )
            else:
                clauses.append(f"{s_alias}.{col} = {t_alias}.{col}")
    elif isinstance(cond, Lags):
        offsets = cond.resolve(schema)
        for dim, col in _dim_columns(s_gran):
            if dim in offsets:
                deltas = ", ".join(str(d) for d in offsets[dim])
                clauses.append(
                    f"({t_alias}.{col} - {s_alias}.{col}) IN ({deltas})"
                )
            else:
                clauses.append(f"{s_alias}.{col} = {t_alias}.{col}")
    else:
        raise AlgebraError(f"no SQL rendering for condition {cond!r}")
    return " AND ".join(clauses) if clauses else "1 = 1"


def _gamma_between(schema, dim, fine: Granularity, coarse: Granularity,
                   column: str) -> str:
    level = coarse.levels[dim]
    if level == fine.levels[dim]:
        return column
    domain = schema.dimensions[dim].hierarchy.domain(level)
    fn = _sanitize(
        f"GAMMA_{schema.dimensions[dim].abbrev}_{domain.name}"
    ).upper()
    return f"{fn}({column})"


class _SqlBuilder:
    def __init__(self, fact_table_name: str) -> None:
        self.fact_table_name = fact_table_name
        self.ctes: list[tuple[str, str]] = []
        self._memo: dict[int, str] = {}
        self._counter = 0

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    def build(self, expr: Expr) -> str:
        if id(expr) in self._memo:
            return self._memo[id(expr)]
        name = self._translate(expr)
        self._memo[id(expr)] = name
        return name

    # Each _translate_* returns the CTE name holding the result.

    def _translate(self, expr: Expr) -> str:
        if isinstance(expr, Select):
            inner = self.build(expr.child)
            name = self._fresh("filtered")
            self.ctes.append(
                (
                    name,
                    f"SELECT * FROM {inner}\n"
                    f"  WHERE {predicate_to_sql(expr.predicate)}",
                )
            )
            return name
        if isinstance(expr, Aggregate):
            return self._translate_aggregate(expr)
        if isinstance(expr, MatchJoin):
            return self._translate_match_join(expr)
        if isinstance(expr, CombineJoin):
            return self._translate_combine_join(expr)
        if isinstance(expr, FactTable):
            return self.fact_table_name
        raise AlgebraError(f"no SQL rendering for {expr!r}")

    def _translate_aggregate(self, expr: Aggregate) -> str:
        inner_expr, predicates = _peel(expr.child)
        if isinstance(inner_expr, FactTable):
            source = self.fact_table_name
            source_gran = inner_expr.granularity
            measure_arg = (
                "*" if expr.agg.input_field == "*" else _sanitize(
                    expr.agg.input_field
                )
            )
        else:
            source = self.build(inner_expr)
            source_gran = inner_expr.granularity
            measure_arg = "*" if expr.agg.input_field == "*" else "M"
        select_cols = []
        group_cols = []
        schema = expr.schema
        for dim, col in _dim_columns(expr.granularity):
            base_col = (
                _sanitize(schema.dimensions[dim].abbrev)
                if isinstance(inner_expr, FactTable)
                else dict(_dim_columns(source_gran))[dim]
            )
            rendered = _gamma_between(
                schema, dim, source_gran, expr.granularity, base_col
            )
            select_cols.append(f"{rendered} AS {col}")
            group_cols.append(rendered)
        agg_fn = expr.agg.function.name.upper()
        select_cols.append(f"{agg_fn}({measure_arg}) AS M")
        where = ""
        if predicates:
            rendered = " AND ".join(
                predicate_to_sql(p) for p in predicates
            )
            where = f"\n  WHERE {rendered}"
        group = (
            f"\n  GROUP BY {', '.join(group_cols)}" if group_cols else ""
        )
        name = self._fresh("agg")
        self.ctes.append(
            (
                name,
                f"SELECT {', '.join(select_cols)}\n  FROM {source}"
                f"{where}{group}",
            )
        )
        return name

    def _translate_match_join(self, expr: MatchJoin) -> str:
        target = self.build(expr.target)
        source_expr, predicates = _peel(expr.source)
        source = self.build(source_expr)
        if predicates:
            filtered = self._fresh("filtered")
            rendered = " AND ".join(
                predicate_to_sql(p) for p in predicates
            )
            self.ctes.append(
                (filtered, f"SELECT * FROM {source}\n  WHERE {rendered}")
            )
            source = filtered
        s_cols = [col for __, col in _dim_columns(expr.granularity)]
        cond = _cond_to_sql(
            expr.cond,
            expr.granularity,
            source_expr.granularity,
            "S",
            "T",
        )
        agg_fn = expr.agg.function.name.upper()
        select = ", ".join(f"S.{col}" for col in s_cols) or "1 AS one"
        group = (
            "\n  GROUP BY " + ", ".join(f"S.{col}" for col in s_cols)
            if s_cols
            else ""
        )
        name = self._fresh("match")
        self.ctes.append(
            (
                name,
                f"SELECT {select}, {agg_fn}(T.M) AS M\n"
                f"  FROM {target} S\n"
                f"  LEFT OUTER JOIN {source} T ON {cond}{group}",
            )
        )
        return name

    def _translate_combine_join(self, expr: CombineJoin) -> str:
        base = self.build(expr.base)
        cols = [col for __, col in _dim_columns(expr.granularity)]
        joins = []
        args = ["S.M"]
        for i, child in enumerate(expr.inputs, start=1):
            child_expr, predicates = _peel(child)
            child_name = self.build(child_expr)
            if predicates:
                filtered = self._fresh("filtered")
                rendered = " AND ".join(
                    predicate_to_sql(p) for p in predicates
                )
                self.ctes.append(
                    (
                        filtered,
                        f"SELECT * FROM {child_name}\n"
                        f"  WHERE {rendered}",
                    )
                )
                child_name = filtered
            alias = f"T{i}"
            on = " AND ".join(
                f"S.{col} = {alias}.{col}" for col in cols
            ) or "1 = 1"
            joins.append(
                f"  LEFT OUTER JOIN {child_name} {alias} ON {on}"
            )
            args.append(f"{alias}.M")
        select = ", ".join(f"S.{col}" for col in cols)
        fc = _sanitize(expr.fn.name).upper() or "FC"
        name = self._fresh("combine")
        body = (
            f"SELECT {select + ', ' if select else ''}"
            f"{fc}({', '.join(args)}) AS M\n"
            f"  FROM {base} S\n" + "\n".join(joins)
        )
        self.ctes.append((name, body))
        return name


def _peel(expr: Expr) -> tuple[Expr, list]:
    predicates = []
    while isinstance(expr, Select):
        predicates.append(expr.predicate)
        expr = expr.child
    return expr, predicates


def to_sql(expr: Expr, fact_table_name: str = "D") -> str:
    """Render an AW-RA expression as the paper's equivalent SQL.

    Returns a ``WITH`` query whose final ``SELECT`` yields the
    expression's measure table (dimension columns plus ``M``).
    """
    builder = _SqlBuilder(fact_table_name)
    final = builder.build(expr)
    if not builder.ctes:
        return f"SELECT * FROM {final};"
    rendered = ",\n".join(
        f"{name} AS (\n  {body}\n)" for name, body in builder.ctes
    )
    return f"WITH {rendered}\nSELECT * FROM {final};"
