"""Pretty-printing of AW-RA expressions.

``explain`` renders an expression as an indented operator tree, the way
database EXPLAIN output reads; ``to_formula`` renders the compact
algebra string used in the paper's running text.
"""

from __future__ import annotations

from repro.algebra.expr import (
    Aggregate,
    CombineJoin,
    Expr,
    FactTable,
    MatchJoin,
    Select,
)


def to_formula(expr: Expr) -> str:
    """One-line algebra formula (delegates to the nodes' ``repr``)."""
    return repr(expr)


def explain(expr: Expr, indent: int = 0) -> str:
    """Multi-line, indented operator-tree rendering."""
    pad = "  " * indent
    if isinstance(expr, FactTable):
        return f"{pad}FactTable D {expr.granularity!r}"
    if isinstance(expr, Select):
        return (
            f"{pad}Select [{expr.predicate!r}]\n"
            + explain(expr.child, indent + 1)
        )
    if isinstance(expr, Aggregate):
        return (
            f"{pad}Aggregate g{expr.granularity!r} {expr.agg!r}\n"
            + explain(expr.child, indent + 1)
        )
    if isinstance(expr, MatchJoin):
        return (
            f"{pad}MatchJoin {expr.cond!r} {expr.agg!r} "
            f"-> {expr.granularity!r}\n"
            f"{pad}  keys:\n" + explain(expr.target, indent + 2) + "\n"
            f"{pad}  measures:\n" + explain(expr.source, indent + 2)
        )
    if isinstance(expr, CombineJoin):
        lines = [
            f"{pad}CombineJoin {expr.fn!r} -> {expr.granularity!r}",
            f"{pad}  base:",
            explain(expr.base, indent + 2),
        ]
        for i, child in enumerate(expr.inputs):
            lines.append(f"{pad}  input[{i}]:")
            lines.append(explain(child, indent + 2))
        return "\n".join(lines)
    return f"{pad}{expr!r}"
