"""Match-join conditions (Section 3.2, "commonly used join conditions").

A match condition relates the rows of the *target* expression ``S``
(which provides the output keys) to the rows of the *source-of-measures*
expression ``T`` in ``S ⋈_{cond,agg} T``:

- :class:`SelfMatch` — ``S.X = T.X``;
- :class:`ParentChild` — ``γ(S.X) = T.X``: ``S`` is finer, each
  ``S``-region matches its unique ancestor in ``T``;
- :class:`ChildParent` — ``γ(T.X) = S.X``: ``S`` is coarser, each
  ``S``-region matches all of its descendants in ``T`` (equivalent to
  the aggregation operator);
- :class:`Sibling` — moving windows: ``T.X_i ∈ [S.X_i - before_i,
  S.X_i + after_i]`` per windowed dimension, same granularity.

Each condition knows how to *validate* a pair of granularities, how to
*enumerate* the target keys affected by one T-entry (driving the
streaming engines), and how to *match* pairs directly (driving the
relational baseline).
"""

from __future__ import annotations

from itertools import product
from collections.abc import Iterator, Mapping

from repro.errors import AlgebraError
from repro.cube.granularity import Granularity, Key
from repro.schema.dataset_schema import DatasetSchema


class MatchCondition:
    """Base class for match-join conditions."""

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        """Raise :class:`AlgebraError` if the granularities don't fit."""
        raise NotImplementedError

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        """Target (S) keys whose windows/ancestry include ``t_key``.

        Only defined for conditions where the set is enumerable from the
        T side (self, child/parent, sibling).  Parent/child is handled
        by ancestor lookup from the S side instead.
        """
        raise NotImplementedError

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        """Direct pair test — the relational baseline's join predicate."""
        raise NotImplementedError

    @property
    def enumerable_from_t(self) -> bool:
        """Whether :meth:`affected_keys` is available."""
        return True


class SelfMatch(MatchCondition):
    """``S.X = T.X``: same region; equivalent to a combine join."""

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        if s_gran != t_gran:
            raise AlgebraError(
                f"self match needs equal granularities, got {s_gran} "
                f"vs {t_gran}"
            )

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        yield t_key

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        return s_key == t_key

    def __repr__(self) -> str:
        return "cond_self"


class ParentChild(MatchCondition):
    """``γ(S.X) = T.X``: S finer; each S-region sees its T ancestor."""

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        if not s_gran.strictly_finer(t_gran):
            raise AlgebraError(
                f"parent/child match needs S strictly finer than T, got "
                f"{s_gran} vs {t_gran}"
            )

    @property
    def enumerable_from_t(self) -> bool:
        return False

    def ancestor(
        self, s_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Key:
        """The unique T key matched by an S key."""
        return t_gran.generalize_key(s_key, s_gran)

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        raise AlgebraError(
            "parent/child matches cannot be enumerated from the T side; "
            "use ancestor()"
        )

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        return self.ancestor(s_key, s_gran, t_gran) == t_key

    def __repr__(self) -> str:
        return "cond_pc"


class ChildParent(MatchCondition):
    """``γ(T.X) = S.X``: S coarser; aggregates T's descendants."""

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        if not t_gran.strictly_finer(s_gran):
            raise AlgebraError(
                f"child/parent match needs T strictly finer than S, got "
                f"S={s_gran} vs T={t_gran}"
            )

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        yield s_gran.generalize_key(t_key, t_gran)

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        return s_gran.generalize_key(t_key, t_gran) == s_key

    def __repr__(self) -> str:
        return "cond_cp"


class Sibling(MatchCondition):
    """Moving-window neighbours at equal granularity.

    ``windows`` maps dimension name/abbreviation to ``(before, after)``:
    the T rows matched by target region S are those with
    ``T.X_i ∈ [S.X_i - before_i, S.X_i + after_i]`` on every windowed
    dimension and ``T.X_i = S.X_i`` elsewhere.  Example 4 of the paper
    (six-hour forward window) is ``Sibling({"t": (0, 5)})``.

    Negative extents express windows that exclude the current region:
    ``(3, -1)`` is "the previous three steps" — the window must simply
    be non-empty (``before + after >= 0``).

    Window arithmetic happens on the integer-encoded domain at the
    region set's granularity, which is exactly the paper's
    ``NEIGHBOR``-set notion for linear hierarchies.
    """

    def __init__(self, windows: Mapping[str, tuple[int, int]]) -> None:
        if not windows:
            raise AlgebraError("sibling match needs at least one window")
        for name, (before, after) in windows.items():
            if before + after < 0:
                raise AlgebraError(
                    f"window for {name!r} is empty: "
                    f"[S-{before}, S+{after}]"
                )
        self.windows = dict(windows)
        self._resolved: dict[int, tuple[int, int]] | None = None
        self._resolved_schema: DatasetSchema | None = None

    def resolve(self, schema: DatasetSchema) -> dict[int, tuple[int, int]]:
        """Window extents keyed by dimension index."""
        if self._resolved is None or self._resolved_schema is not schema:
            self._resolved = {
                schema.dim_index(name): extent
                for name, extent in self.windows.items()
            }
            self._resolved_schema = schema
        return self._resolved

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        if s_gran != t_gran:
            raise AlgebraError(
                f"sibling match needs equal granularities, got {s_gran} "
                f"vs {t_gran}"
            )
        schema = s_gran.schema
        for dim_idx in self.resolve(schema):
            if s_gran.levels[dim_idx] == schema.dimensions[dim_idx].all_level:
                raise AlgebraError(
                    f"sibling window on dimension "
                    f"{schema.dimensions[dim_idx].name!r} which is at ALL "
                    f"in {s_gran}"
                )

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        """All S keys whose window contains ``t_key``.

        ``T.X ∈ [S.X - before, S.X + after]`` inverts to
        ``S.X ∈ [T.X - after, T.X + before]``.
        """
        windows = self.resolve(s_gran.schema)
        dim_ranges = []
        for i in range(len(t_key)):
            if i in windows:
                before, after = windows[i]
                lo = t_key[i] - after
                hi = t_key[i] + before
                dim_ranges.append(range(max(0, lo), hi + 1))
            else:
                dim_ranges.append((t_key[i],))
        for combo in product(*dim_ranges):
            yield tuple(combo)

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        windows = self.resolve(s_gran.schema)
        for i in range(len(s_key)):
            if i in windows:
                before, after = windows[i]
                if not s_key[i] - before <= t_key[i] <= s_key[i] + after:
                    return False
            elif s_key[i] != t_key[i]:
                return False
        return True

    def max_reach(self) -> int:
        """Largest window extent — used by slack/footprint estimates."""
        return max(
            max(before, after) for before, after in self.windows.values()
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}∈[-{before},+{after}]"
            for name, (before, after) in sorted(self.windows.items())
        )
        return f"cond_sb({inner})"


class Lags(MatchCondition):
    """Discrete neighbour offsets: ``T.X_i ∈ {S.X_i + δ : δ ∈ offsets}``.

    The paper's ``NEIGHBOR`` set is "a collection of regions that are
    adjacent" at the same granularity; contiguous windows
    (:class:`Sibling`) are the common case, but comparisons against
    *specific* lags — the same hour yesterday (δ = -24) and last week
    (δ = -168) — need sparse offset sets.  ``Lags({"t": (-24, -168)})``
    matches exactly those regions.

    Offsets may be negative (past), zero (self), or positive (future);
    dimensions not listed must match exactly.
    """

    def __init__(self, offsets: Mapping[str, tuple[int, ...]]) -> None:
        if not offsets:
            raise AlgebraError("lag match needs at least one dimension")
        cleaned: dict[str, tuple[int, ...]] = {}
        for name, deltas in offsets.items():
            deltas = tuple(sorted(set(int(d) for d in deltas)))
            if not deltas:
                raise AlgebraError(
                    f"lag set for {name!r} must be non-empty"
                )
            cleaned[name] = deltas
        self.offsets = cleaned
        self._resolved: dict[int, tuple[int, ...]] | None = None
        self._resolved_schema: DatasetSchema | None = None

    def resolve(self, schema: DatasetSchema) -> dict[int, tuple[int, ...]]:
        """Offsets keyed by dimension index."""
        if self._resolved is None or self._resolved_schema is not schema:
            self._resolved = {
                schema.dim_index(name): deltas
                for name, deltas in self.offsets.items()
            }
            self._resolved_schema = schema
        return self._resolved

    def validate(self, s_gran: Granularity, t_gran: Granularity) -> None:
        if s_gran != t_gran:
            raise AlgebraError(
                f"lag match needs equal granularities, got {s_gran} "
                f"vs {t_gran}"
            )
        schema = s_gran.schema
        for dim_idx in self.resolve(schema):
            if s_gran.levels[dim_idx] == schema.dimensions[dim_idx].all_level:
                raise AlgebraError(
                    f"lag offsets on dimension "
                    f"{schema.dimensions[dim_idx].name!r} which is at "
                    f"ALL in {s_gran}"
                )

    def affected_keys(
        self, t_key: Key, s_gran: Granularity, t_gran: Granularity
    ) -> Iterator[Key]:
        """S keys with ``t = s + δ`` for some δ, i.e. ``s = t - δ``."""
        offsets = self.resolve(s_gran.schema)
        dim_choices = []
        for i in range(len(t_key)):
            if i in offsets:
                candidates = sorted(
                    {t_key[i] - delta for delta in offsets[i]}
                )
                dim_choices.append(
                    [c for c in candidates if c >= 0] or [None]
                )
            else:
                dim_choices.append([t_key[i]])
        for combo in product(*dim_choices):
            if None not in combo:
                yield tuple(combo)

    def matches(
        self,
        s_key: Key,
        t_key: Key,
        s_gran: Granularity,
        t_gran: Granularity,
    ) -> bool:
        offsets = self.resolve(s_gran.schema)
        for i in range(len(s_key)):
            if i in offsets:
                if t_key[i] - s_key[i] not in offsets[i]:
                    return False
            elif s_key[i] != t_key[i]:
                return False
        return True

    def max_reach(self) -> int:
        """Largest absolute offset — used by slack/footprint estimates."""
        return max(
            max(abs(d) for d in deltas)
            for deltas in self.offsets.values()
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}∈{{{','.join(f'{d:+d}' for d in deltas)}}}"
            for name, deltas in sorted(self.offsets.items())
        )
        return f"cond_lag({inner})"
