"""Seeded random workflow/dataset generator with shrinkable recipes.

A :class:`RandomCase` is fully determined by its seed: a random
dataset, a random-but-valid workflow (random granularities, rollup
chains, sibling windows, lag sets, and a mix of distributive,
algebraic, and holistic aggregates), and a partition count.  The same
generator feeds the differential tests, the metamorphic oracles
(:mod:`repro.testkit.oracles`), and the crash-recovery sweeper
(:mod:`repro.testkit.sweeper`).

Beyond the printable recipe (one builder call per line, reprinted by
every failure message), the workflow is recorded as structured
:class:`Step` records — each knows its name, the measures it depends
on, and how to re-issue its builder call.  That makes a failing case
*shrinkable*: :func:`shrink_steps` greedily deletes steps (dragging
their dependents along, so the reduced recipe is always valid) while
the caller-supplied predicate keeps failing, yielding a 1-minimal
reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.algebra.conditions import Lags
from repro.cube.granularity import Granularity
from repro.engine.partitioned import PartitionedEngine
from repro.storage.table import InMemoryDataset
from repro.testkit.differential import assert_engines_agree
from repro.workflow.workflow import AggregationWorkflow

__all__ = [
    "ALGEBRAIC",
    "ALL_AGGS",
    "DISTRIBUTIVE",
    "HOLISTIC",
    "PARTITION_DIM",
    "RandomCase",
    "Step",
    "build_workflow",
    "ingestion_divergence",
    "shrink_steps",
]

#: Aggregates by Gray et al. class; every class must be exercised.
DISTRIBUTIVE = ["count", "sum", "min", "max"]
ALGEBRAIC = ["avg", "var"]
HOLISTIC = ["median", "count_distinct"]
ALL_AGGS = DISTRIBUTIVE + ALGEBRAIC + HOLISTIC

#: Dimension the partitioned engine splits on; the generator keeps it
#: below ``D_ALL`` in every measure so partition planning never rejects.
PARTITION_DIM = 0


@dataclass(frozen=True)
class Step:
    """One workflow builder call of a generated recipe.

    ``deps`` names the measures this step reads, so deleting a step
    during shrinking can drag its transitive dependents along and the
    reduced recipe stays buildable.  ``payload`` exposes the call's
    arguments (granularity, agg, windows, ...) so the metamorphic
    oracles can derive variant workflows from a recipe without parsing
    its printable lines.
    """

    kind: str
    name: str
    deps: tuple[str, ...]
    build: Callable[[AggregationWorkflow], None]
    line: str
    payload: dict


def build_workflow(
    schema, steps: Sequence[Step], name: str = "rebuilt"
) -> AggregationWorkflow:
    """Re-issue a recipe's builder calls against a fresh workflow."""
    wf = AggregationWorkflow(schema, name=name)
    for step in steps:
        step.build(wf)
    return wf


def _drop_with_dependents(
    steps: Sequence[Step], victim: Step
) -> list[Step]:
    """``steps`` minus ``victim`` and everything depending on it.

    Steps are in builder order (topological), so one forward pass
    closes the dependency set.
    """
    dropped = {victim.name}
    kept: list[Step] = []
    for step in steps:
        if step.name in dropped or any(
            dep in dropped for dep in step.deps
        ):
            dropped.add(step.name)
            continue
        kept.append(step)
    return kept


def shrink_steps(
    schema,
    steps: Sequence[Step],
    still_fails: Callable[[AggregationWorkflow], bool],
) -> list[Step]:
    """Greedy 1-minimal reduction of a failing recipe.

    Repeatedly tries to delete one step (plus its dependents); a
    deletion sticks when ``still_fails`` still returns True for the
    reduced workflow.  A predicate that *raises* on a candidate is
    treated as "does not reproduce" — only the original failure
    counts.  Returns the surviving steps (possibly all of them).
    """
    current = list(steps)
    changed = True
    while changed:
        changed = False
        for victim in reversed(list(current)):
            candidate = _drop_with_dependents(current, victim)
            if len(candidate) == len(current):
                continue
            try:
                reproduces = still_fails(
                    build_workflow(schema, candidate)
                )
            except Exception:
                reproduces = False
            if reproduces:
                current = candidate
                changed = True
    return current


class RandomCase:
    """One differential test case, fully determined by its seed."""

    def __init__(self, seed: int, schema) -> None:
        self.seed = seed
        self.schema = schema
        self.recipe: list[str] = []
        self.steps: list[Step] = []
        rng = random.Random(seed)
        self.dataset = self._random_dataset(rng)
        self.workflow = self._random_workflow(rng)
        self.num_partitions = rng.randint(2, 5)

    # -- building blocks ------------------------------------------------

    def _random_dataset(self, rng: random.Random) -> InMemoryDataset:
        count = rng.randint(150, 450)
        records = [
            (
                rng.randrange(64),
                rng.randrange(64),
                rng.randrange(64),
                round(rng.random() * 100, 3),
            )
            for __ in range(count)
        ]
        self.recipe.append(f"# dataset: {count} uniform records")
        return InMemoryDataset(self.schema, records)

    def _random_granularity(self, rng: random.Random) -> Granularity:
        """A random granularity with the partition dimension non-ALL."""
        schema = self.schema
        levels = []
        for i, dim in enumerate(schema.dimensions):
            if i == PARTITION_DIM:
                # Keep the partition dimension fine enough for rollups
                # *and* strictly below ALL for partition planning.
                levels.append(rng.randint(0, dim.all_level - 2))
            else:
                levels.append(rng.randint(0, dim.all_level))
        return Granularity(schema, levels)

    def _coarsen(
        self, rng: random.Random, gran: Granularity
    ) -> Granularity | None:
        """A strictly coarser granularity (partition dim kept non-ALL)."""
        schema = self.schema
        levels = list(gran.levels)
        raisable = [
            i
            for i, level in enumerate(levels)
            if level
            < (
                schema.dimensions[i].all_level - 1
                if i == PARTITION_DIM
                else schema.dimensions[i].all_level
            )
        ]
        if not raisable:
            return None
        for i in rng.sample(raisable, rng.randint(1, len(raisable))):
            cap = schema.dimensions[i].all_level
            if i == PARTITION_DIM:
                cap -= 1
            levels[i] = rng.randint(levels[i] + 1, cap)
        return Granularity(schema, levels)

    def _windowable_dims(self, gran: Granularity) -> list[int]:
        return [
            i
            for i, level in enumerate(gran.levels)
            if level != self.schema.dimensions[i].all_level
        ]

    # -- workflow generation --------------------------------------------

    def _step(
        self, wf: AggregationWorkflow, step: Step
    ) -> None:
        """Record one builder call and apply it to the live workflow."""
        step.build(wf)
        self.steps.append(step)
        self.recipe.append(step.line)

    def _random_workflow(self, rng: random.Random) -> AggregationWorkflow:
        schema = self.schema
        wf = AggregationWorkflow(schema, name=f"rand{self.seed}")
        sources: list[str] = []

        def spec(gran: Granularity) -> dict:
            return {
                schema.dimensions[i].name: schema.dimensions[i]
                .hierarchy.domain(level)
                .name
                for i, level in enumerate(gran.levels)
                if level != schema.dimensions[i].all_level
            }

        for b in range(rng.randint(1, 2)):
            gran = self._random_granularity(rng)
            agg = rng.choice(ALL_AGGS)
            agg_spec = "count" if agg == "count" else (agg, "v")
            name = f"base{b}"
            self._step(
                wf,
                Step(
                    kind="basic",
                    name=name,
                    deps=(),
                    build=lambda w, _n=name, _g=gran, _a=agg_spec: (
                        w.basic(_n, _g, agg=_a)
                    ),
                    line=(
                        f"wf.basic({name!r}, {spec(gran)}, "
                        f"agg={agg_spec!r})"
                    ),
                    payload={"granularity": gran, "agg": agg_spec},
                ),
            )
            sources.append(name)

        for d in range(rng.randint(1, 3)):
            source = rng.choice(sources)
            gran = wf[source].granularity
            kind = rng.choice(["rollup", "window", "lags"])
            agg = rng.choice(ALL_AGGS)
            name = f"m{d}"
            if kind == "rollup":
                coarser = self._coarsen(rng, gran)
                if coarser is None:
                    continue
                self._step(
                    wf,
                    Step(
                        kind="rollup",
                        name=name,
                        deps=(source,),
                        build=lambda w, _n=name, _g=coarser,
                        _s=source, _a=agg: (
                            w.rollup(_n, _g, source=_s, agg=_a)
                        ),
                        line=(
                            f"wf.rollup({name!r}, {spec(coarser)}, "
                            f"source={source!r}, agg={agg!r})"
                        ),
                        payload={
                            "granularity": coarser,
                            "source": source,
                            "agg": agg,
                        },
                    ),
                )
            elif kind == "window":
                dims = self._windowable_dims(gran)
                chosen = rng.sample(
                    dims, rng.randint(1, min(2, len(dims)))
                )
                windows = {
                    schema.dimensions[i].name: (
                        rng.randint(0, 3),
                        rng.randint(0, 3),
                    )
                    for i in chosen
                }
                self._step(
                    wf,
                    Step(
                        kind="moving_window",
                        name=name,
                        deps=(source,),
                        build=lambda w, _n=name, _g=gran, _s=source,
                        _w=windows, _a=agg: (
                            w.moving_window(
                                _n, _g, source=_s, windows=_w, agg=_a
                            )
                        ),
                        line=(
                            f"wf.moving_window({name!r}, {spec(gran)}, "
                            f"source={source!r}, windows={windows}, "
                            f"agg={agg!r})"
                        ),
                        payload={
                            "granularity": gran,
                            "source": source,
                            "windows": windows,
                            "agg": agg,
                        },
                    ),
                )
            else:
                dims = self._windowable_dims(gran)
                lag_dim = schema.dimensions[rng.choice(dims)].name
                deltas = tuple(
                    sorted(
                        rng.sample(range(-8, 9), rng.randint(1, 3))
                    )
                )
                cond = Lags({lag_dim: deltas})
                self._step(
                    wf,
                    Step(
                        kind="match",
                        name=name,
                        deps=(source,),
                        build=lambda w, _n=name, _g=gran, _s=source,
                        _c=cond, _a=agg: (
                            w.match(_n, _g, source=_s, cond=_c, agg=_a)
                        ),
                        line=(
                            f"wf.match({name!r}, {spec(gran)}, "
                            f"source={source!r}, "
                            f"cond=Lags({{{lag_dim!r}: {deltas}}}), "
                            f"agg={agg!r})"
                        ),
                        payload={
                            "granularity": gran,
                            "source": source,
                            "cond": cond,
                            "agg": agg,
                        },
                    ),
                )
            sources.append(name)
        return wf

    # -- reproduction helpers -------------------------------------------

    def recipe_text(self, indent: str = "    ") -> str:
        return "\n".join(f"{indent}{line}" for line in self.recipe)

    def rebuild_workflow(
        self, steps: Sequence[Step] | None = None
    ) -> AggregationWorkflow:
        """A fresh workflow from (a subset of) this case's steps."""
        return build_workflow(
            self.schema,
            self.steps if steps is None else steps,
            name=f"rand{self.seed}",
        )

    def shrink(
        self, still_fails: Callable[[AggregationWorkflow], bool]
    ) -> list[Step]:
        """Minimize this case's recipe against ``still_fails``."""
        return shrink_steps(self.schema, self.steps, still_fails)

    # -- the differential assertion -------------------------------------

    def partitioned_engines(self) -> list[PartitionedEngine]:
        return [
            PartitionedEngine(
                partition_dim=PARTITION_DIM,
                num_partitions=self.num_partitions,
                parallel=mode,
            )
            for mode in ("serial", "threads", "processes")
        ]

    def check(self) -> None:
        try:
            assert_engines_agree(
                self.dataset,
                self.workflow,
                extra_engines=self.partitioned_engines(),
            )
        except AssertionError as exc:
            raise AssertionError(
                f"engines disagree for seed={self.seed} "
                f"(partitions={self.num_partitions}).\n"
                f"Reproduce with RandomCase({self.seed}, schema); "
                f"shrink by deleting recipe lines:\n"
                f"{self.recipe_text()}\n{exc}"
            ) from exc

    def check_ingestion(self, store_path: str) -> None:
        """Incremental ingestion mode of the differential harness.

        The case's dataset is split into a base batch plus a few
        deltas; the base is bootstrapped into a measure store and the
        deltas are ingested incrementally (holistic measures resolved
        lazily at the end).  The stored tables must equal a one-shot
        evaluation over the full dataset.
        """
        divergence = ingestion_divergence(
            self.schema,
            self.dataset,
            self.workflow,
            self.seed,
            store_path,
        )
        if divergence is not None:
            raise AssertionError(
                f"incremental ingestion diverges from one-shot "
                f"evaluation for seed={self.seed}: {divergence}\n"
                f"Recipe:\n{self.recipe_text()}"
            )


def ingestion_divergence(
    schema, dataset, workflow, seed: int, store_path: str
) -> str | None:
    """Ingest-then-query vs recompute-from-scratch, mechanically.

    Splits ``dataset`` (seed-deterministically) into a base batch plus
    1-3 deltas, bootstraps a store at ``store_path``, folds the deltas
    in, resolves holistic dirt, and compares every stored output table
    against a one-shot sort/scan evaluation over the full dataset.
    Returns a human-readable divergence description, or ``None`` when
    the store matches — the form both :meth:`RandomCase.check_ingestion`
    and the ingest oracle family (including its shrink predicate) use.
    """
    from repro.engine.sort_scan import SortScanEngine
    from repro.service import Ingestor, MeasureStore

    rng = random.Random(seed ^ 0x5EED)
    records = list(dataset.records)
    num_deltas = rng.randint(1, 3)
    delta_size = rng.randint(5, 40)
    base_count = max(1, len(records) - num_deltas * delta_size)
    base, rest = records[:base_count], records[base_count:]
    deltas = [
        rest[i : i + delta_size]
        for i in range(0, len(rest), delta_size)
    ]

    store = MeasureStore(store_path)
    ingestor = Ingestor(store, workflow)
    ingestor.bootstrap(InMemoryDataset(schema, base))
    for delta in deltas:
        ingestor.ingest(delta)
    ingestor.resolve()

    reference = SortScanEngine().evaluate(dataset, workflow)
    for name in workflow.outputs():
        expected = reference[name]
        got = store.measure_table(name, expected.granularity)
        if not got.equal_rows(expected):
            return (
                f"measure {name!r} (base={len(base)}, deltas="
                f"{[len(d) for d in deltas]}): {expected.diff(got)}"
            )
    return None
