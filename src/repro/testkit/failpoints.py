"""Deterministic fail-point registry for fault-injection testing.

A *fail point* is a named site woven into a hot path — the measure
store's segment write/fsync/manifest swap/GC, the ingestor's commit,
the external sort's spill, the sort/scan flush cascade, partitioned
process workers.  Each site calls :func:`fire` with its name; when the
site is not armed this is one dict truthiness check, so instrumented
production paths stay effectively free.

Arming a site attaches an *action*:

- ``raise`` — raise :class:`~repro.errors.FailPointError` at the site;
- ``crash`` — hard-exit the process (``os._exit``) with
  :data:`CRASH_EXIT_CODE`, simulating a kill -9 mid-operation (used by
  the crash-recovery sweeper, which runs the victim in a subprocess);
- ``delay`` / ``delay:SECONDS`` — sleep at the site (races, in-flight
  reads during slow ingests);
- ``torn-write`` — truncate the file the site is writing to half its
  current length, then hard-exit: a torn write followed by a crash.

Activation is programmatic (:func:`activate`, the :func:`failpoint`
context manager) or environmental: ``REPRO_FAILPOINT=name:action`` —
comma-separated for several sites — is parsed at import time, which is
how subprocesses of the crash sweeper get armed before any repro code
runs.  Every trigger increments the
``repro_failpoint_triggers_total{name=...}`` counter in the process
metrics registry, so fault drills are visible in telemetry.

Sites self-register at module import via :func:`register`, carrying a
*scope* (``store``, ``ingest``, ``sort``, ``engine``).  The
crash-recovery sweeper enumerates :func:`registered` scopes rather
than a hand-written list, so a newly woven store or ingest site is
swept automatically.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import FailPointError

__all__ = [
    "CRASH_EXIT_CODE",
    "FailPointError",
    "FailPointSite",
    "activate",
    "clear",
    "deactivate",
    "failpoint",
    "fire",
    "is_armed",
    "load_instrumented_sites",
    "register",
    "registered",
    "trigger_count",
]

#: Exit status of a ``crash`` / ``torn-write`` action — chosen to be
#: distinguishable from ordinary failures (1/2) and signal deaths.
CRASH_EXIT_CODE = 77

#: Environment variable holding ``name:action[,name:action...]`` specs.
ENV_VAR = "REPRO_FAILPOINT"

_ACTIONS = ("raise", "crash", "delay", "torn-write")


@dataclass(frozen=True)
class FailPointSite:
    """One registered injection site."""

    name: str
    scope: str
    doc: str = ""


class _Armed:
    """An armed site: parsed action plus trigger bookkeeping."""

    __slots__ = ("name", "action", "param", "hits")

    def __init__(self, name: str, action: str, param: float | None):
        self.name = name
        self.action = action
        self.param = param
        self.hits = 0


_lock = threading.Lock()
_SITES: dict[str, FailPointSite] = {}
_ARMED: dict[str, _Armed] = {}
_HITS: dict[str, int] = {}


def register(name: str, scope: str, doc: str = "") -> str:
    """Register an injection site; returns ``name`` for use at the site.

    Idempotent: re-registering the same name replaces the doc (modules
    may be reloaded by tests) but keeps one entry.
    """
    with _lock:
        _SITES[name] = FailPointSite(name=name, scope=scope, doc=doc)
    return name


def registered(scope: str | None = None) -> list[FailPointSite]:
    """All registered sites (optionally one scope), sorted by name."""
    with _lock:
        sites = sorted(_SITES.values(), key=lambda site: site.name)
    if scope is None:
        return sites
    return [site for site in sites if site.scope == scope]


def load_instrumented_sites() -> None:
    """Import every module that weaves fail points, populating the
    registry.  Sites register at module import, so enumerators (the
    CLI's ``faults list``, the crash sweeper) call this first to see
    the full set regardless of what happens to be imported already."""
    import repro.engine.partitioned  # noqa: F401
    import repro.engine.sort_scan  # noqa: F401
    import repro.obs.reqlog  # noqa: F401
    import repro.service.cluster.manifest  # noqa: F401
    import repro.service.cluster.router  # noqa: F401
    import repro.service.cluster.worker  # noqa: F401
    import repro.service.ingest  # noqa: F401
    import repro.service.store  # noqa: F401
    import repro.storage.external_sort  # noqa: F401


def _parse(name: str, action_spec: str) -> _Armed:
    action, __, raw_param = action_spec.partition(":")
    action = action.strip()
    if action not in _ACTIONS:
        raise FailPointError(
            f"unknown fail-point action {action!r} for {name!r}; "
            f"expected one of {_ACTIONS}"
        )
    param: float | None = None
    if raw_param:
        try:
            param = float(raw_param)
        except ValueError:
            raise FailPointError(
                f"malformed fail-point parameter {raw_param!r} "
                f"in {name}:{action_spec}"
            ) from None
    return _Armed(name, action, param)


def activate(name: str, action: str, force: bool = False) -> None:
    """Arm one site with ``action`` (e.g. ``"raise"``, ``"delay:0.1"``).

    Unknown site names are rejected unless ``force`` is set — the
    environment path uses ``force`` because it is parsed before the
    instrumented modules have imported and registered their sites.
    """
    armed = _parse(name, action)
    with _lock:
        if not force and name not in _SITES:
            raise FailPointError(
                f"unknown fail point {name!r}; registered: "
                f"{sorted(_SITES)}"
            )
        _ARMED[name] = armed


def deactivate(name: str) -> None:
    """Disarm one site (a no-op when it was not armed)."""
    with _lock:
        _ARMED.pop(name, None)


def clear() -> None:
    """Disarm every site and reset trigger counts."""
    with _lock:
        _ARMED.clear()
        _HITS.clear()


def is_armed(name: str) -> bool:
    """True when ``name`` currently has an action attached."""
    return name in _ARMED


def trigger_count(name: str) -> int:
    """How many times ``name`` has fired since the last :func:`clear`."""
    return _HITS.get(name, 0)


@contextmanager
def failpoint(name: str, action: str):
    """Arm ``name`` for the duration of a ``with`` block."""
    activate(name, action)
    try:
        yield
    finally:
        deactivate(name)


def fire(name: str, path: str | None = None) -> None:
    """The injection site: trigger ``name``'s action if armed.

    ``path`` names the file the site is currently writing, consumed by
    the ``torn-write`` action.  When nothing at all is armed this
    returns after a single dict truthiness check.
    """
    if not _ARMED:
        return
    armed = _ARMED.get(name)
    if armed is None:
        return
    _trigger(armed, path)


def _trigger(armed: _Armed, path: str | None) -> None:
    armed.hits += 1
    with _lock:
        _HITS[armed.name] = _HITS.get(armed.name, 0) + 1
    _count_trigger(armed.name, armed.action)
    action = armed.action
    if action == "delay":
        time.sleep(armed.param if armed.param is not None else 0.05)
        return
    if action == "raise":
        raise FailPointError(
            f"fail point {armed.name!r} triggered (action=raise)"
        )
    if action == "torn-write" and path is not None:
        _tear(path)
    # crash, or torn-write without a file to tear: hard exit, skipping
    # atexit handlers and buffered-stream flushes — as close to kill -9
    # as one process can do to itself.
    os._exit(CRASH_EXIT_CODE)


def _tear(path: str) -> None:
    """Truncate ``path`` to half its length (best effort)."""
    with contextlib.suppress(OSError):
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
            fh.flush()
            os.fsync(fh.fileno())


def _count_trigger(name: str, action: str) -> None:
    # Imported lazily: repro.obs must stay importable without testkit
    # and vice versa, and a trigger is never on a per-record path.
    with contextlib.suppress(Exception):
        from repro.obs import get_registry
        from repro.obs.metrics import FAILPOINT_TRIGGERS

        get_registry().counter(
            FAILPOINT_TRIGGERS,
            "Fail-point actions triggered, by site name",
            labelnames=("name", "action"),
        ).labels(name=name, action=action).inc()


def install_from_env(env: str | None = None) -> list[str]:
    """Arm sites from a ``name:action[,name:action...]`` spec string.

    Called at import with the :data:`ENV_VAR` value so crash-sweeper
    subprocesses arm their fail point before any instrumented module
    runs.  Returns the armed site names.
    """
    if env is None:
        env = os.environ.get(ENV_VAR, "")
    armed = []
    for chunk in env.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, action = chunk.partition(":")
        if not sep:
            raise FailPointError(
                f"malformed {ENV_VAR} entry {chunk!r}; "
                "expected name:action"
            )
        activate(name.strip(), action.strip(), force=True)
        armed.append(name.strip())
    return armed


install_from_env()
