"""``repro.testkit`` — fault-injection and metamorphic correctness kit.

Four pieces, all importable from production code paths at negligible
cost:

- :mod:`repro.testkit.failpoints` — a deterministic fail-point
  registry with named injection sites woven through the hot paths
  (store commits, ingestion, external sort, sort/scan cascades,
  partitioned workers), armed via API or ``REPRO_FAILPOINT``;
- :mod:`repro.testkit.generator` — the seeded random workflow/dataset
  generator behind the differential harness, with structured recipes
  and recipe shrinking;
- :mod:`repro.testkit.oracles` — metamorphic oracle families (rewrite
  equivalence, merge algebra, roll-up consistency, partition
  invariance, ingest-vs-recompute) checked per seed;
- :mod:`repro.testkit.sweeper` — the crash-recovery sweeper that kills
  a committing subprocess at every registered store/ingest fail point
  and asserts the reopened store is intact and equivalent;
- :mod:`repro.testkit.mutations` — per-diagnostic workflow mutants for
  the :mod:`repro.analysis` linter: for every ``CSM###`` code, a
  minimal workflow that triggers it and a repaired one that does not.

The CLI front door is ``repro faults`` (list / run / sweep).
"""

from repro.testkit.failpoints import (
    CRASH_EXIT_CODE,
    FailPointError,
    FailPointSite,
    activate,
    clear,
    deactivate,
    failpoint,
    fire,
    is_armed,
    register,
    registered,
    trigger_count,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FailPointError",
    "FailPointSite",
    "MUTANT_CODES",
    "OracleFailure",
    "RandomCase",
    "SweepResult",
    "activate",
    "all_engines",
    "assert_engines_agree",
    "clean_workflow",
    "clear",
    "deactivate",
    "failpoint",
    "fire",
    "is_armed",
    "mutant",
    "register",
    "registered",
    "repaired",
    "run_batch",
    "run_seed",
    "sweep",
    "trigger_count",
]


def __getattr__(name):
    """Lazy re-exports: the failpoints API must stay importable from
    production hot paths without dragging every engine in."""
    if name in ("all_engines", "assert_engines_agree"):
        from repro.testkit import differential

        return getattr(differential, name)
    if name == "RandomCase":
        from repro.testkit.generator import RandomCase

        return RandomCase
    if name in ("OracleFailure", "run_batch", "run_seed"):
        from repro.testkit import oracles

        return getattr(oracles, name)
    if name in ("SweepResult", "sweep"):
        from repro.testkit import sweeper

        return getattr(sweeper, name)
    if name in ("MUTANT_CODES", "clean_workflow", "mutant", "repaired"):
        from repro.testkit import mutations

        return getattr(mutations, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
