"""Crash-recovery sweeper: kill a committing process at every site.

The measure store's commit protocol claims a crash can never corrupt
it (segments first, fsynced and unreferenced; then one atomic manifest
swap).  This module *enumerates the claim*: for every registered
``store``/``ingest`` fail point — taken from the live registry in
:mod:`repro.testkit.failpoints`, never a hand-written list, so a newly
woven site is swept automatically — it

1. bootstraps a store from a seeded :class:`~repro.testkit.generator
   .RandomCase` base batch (once, then copied per site);
2. runs a delta ingest in a *subprocess* armed via ``REPRO_FAILPOINT``
   with a ``crash`` (or ``torn-write``) action at that one site, and
   requires the child to die with :data:`~repro.testkit.failpoints
   .CRASH_EXIT_CODE` — a site that does not fire fails the sweep,
   catching registry drift;
3. reopens the store in the parent (running recovery: stale-temp
   removal and orphan GC), asserts the manifest references exactly the
   files on disk, and that the surviving generation is either the
   pre-delta or the post-delta one — never a mixture;
4. re-ingests the delta if it was lost, resolves holistic dirt, and
   asserts every output table equals an uninjected one-shot
   evaluation over the full dataset.

``repro faults sweep`` is the CLI front end.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from dataclasses import dataclass
from collections.abc import Callable, Iterable

import repro
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.testkit.failpoints import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    load_instrumented_sites,
    registered,
)
from repro.testkit.generator import RandomCase

__all__ = [
    "SWEEP_SCOPES",
    "SweepResult",
    "child_main",
    "sweep",
    "sweep_sites",
]

#: Scopes whose sites guard the durability protocol and get swept.
SWEEP_SCOPES = ("store", "ingest", "cluster")

#: Environment plumbing between :func:`sweep` and :func:`child_main`.
STORE_ENV = "REPRO_SWEEP_STORE"
SEED_ENV = "REPRO_SWEEP_SEED"
CLUSTER_ENV = "REPRO_SWEEP_CLUSTER"

#: Shards of the sweep's scratch cluster — two is the smallest count
#: where a crash between shard prepares can strand a *mixture*.
CLUSTER_SHARDS = 2

#: Records held back from the bootstrap batch and ingested by the
#: doomed child; large enough to touch every basic node.
_DELTA_SIZE = 40


@dataclass
class SweepResult:
    """Outcome of killing one commit at one injection site."""

    site: str
    action: str
    exit_code: int
    fired: bool
    committed: bool
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        survived = "post-delta" if self.committed else "pre-delta"
        text = (
            f"{status:4s} {self.site:22s} action={self.action} "
            f"exit={self.exit_code} survived={survived}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text


def _default_schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


def _split(case: RandomCase):
    records = list(case.dataset.records)
    return records[:-_DELTA_SIZE], records[-_DELTA_SIZE:]


def _cluster_workflow(schema):
    """Fixed workflow for the cluster sweep.

    The store/ingest sweep uses :class:`RandomCase`'s random workflow,
    but a cluster must be *partitionable* (no measure may aggregate
    the partition dimension to ALL), so the cluster scope sweeps a
    fixed mix instead: distributive, algebraic-deferred (holistic
    median exercises dirty bookkeeping through recovery), and a
    derived rollup.  Records still come from the seeded case, so the
    parent and the doomed child agree by construction.
    """
    from repro.workflow.workflow import AggregationWorkflow

    wf = AggregationWorkflow(schema, name="cluster-sweep")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.basic("MedV", {"d0": "d0.L1"}, agg=("median", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


def sweep_sites() -> list[str]:
    """The sites a sweep covers, straight from the registry."""
    load_instrumented_sites()
    return [
        site.name
        for scope in SWEEP_SCOPES
        for site in registered(scope)
    ]


def child_main() -> None:
    """Entry point of the doomed subprocess.

    Rebuilds the seed's case (the workflow is derived from the seed,
    not unpickled, so the parent and child agree by construction),
    opens the copied store, and ingests the held-back delta.  The
    armed fail point — installed from ``REPRO_FAILPOINT`` when
    :mod:`repro.testkit.failpoints` was imported, before any of this
    ran — kills the process somewhere along that path.

    For cluster-scope sites the child instead opens the copied
    *cluster*, runs a two-phase ingest, and then a fan-out read of
    every measure — the read is what makes the router fan-out and
    worker dispatch sites fire, not just the commit-path ones.
    """
    from repro.service import Ingestor, MeasureStore

    store_path = os.environ[STORE_ENV]
    seed = int(os.environ[SEED_ENV])
    schema = _default_schema()
    case = RandomCase(seed, schema)
    __, delta = _split(case)
    if os.environ.get(CLUSTER_ENV):
        from repro.service.cluster import open_cluster

        workflow = _cluster_workflow(schema)
        cluster = open_cluster(store_path, workflow)
        cluster.ingest(delta)
        for name in workflow.outputs():
            cluster.range(name, ())
        cluster.close()
        return
    store = MeasureStore(store_path)
    Ingestor(store, case.workflow).ingest(delta)


def _subprocess_env(
    site: str,
    action: str,
    store_path: str,
    seed: int,
    cluster: bool = False,
):
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env[ENV_VAR] = f"{site}:{action}"
    env[STORE_ENV] = store_path
    env[SEED_ENV] = str(seed)
    if cluster:
        env[CLUSTER_ENV] = "1"
    else:
        env.pop(CLUSTER_ENV, None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing
        else src_root + os.pathsep + existing
    )
    return env


def _unreferenced_files(store) -> list[str]:
    present = set(os.listdir(store._segment_dir))
    return sorted(present - store._referenced_files())


def _check_recovery(
    site_dir: str, case: RandomCase, baseline_generation: int, reference
) -> tuple[bool, bool, str]:
    """Reopen, recover, converge, and compare; the sweep's step 3/4."""
    from repro.service import Ingestor, MeasureStore

    store = MeasureStore(site_dir)  # recovery runs here
    orphans = _unreferenced_files(store)
    if orphans:
        return False, False, f"orphans survived recovery: {orphans}"
    generation = store.generation
    committed = generation > baseline_generation
    if generation not in (baseline_generation, baseline_generation + 1):
        return committed, False, (
            f"generation {generation} is neither pre ("
            f"{baseline_generation}) nor post ("
            f"{baseline_generation + 1})"
        )
    ingestor = Ingestor(store, case.workflow)
    if not committed:
        __, delta = _split(case)
        ingestor.ingest(delta)
    ingestor.resolve()
    for name in case.workflow.outputs():
        expected = reference[name]
        got = store.measure_table(name, expected.granularity)
        if not got.equal_rows(expected):
            return committed, False, (
                f"measure {name!r} diverges after recovery: "
                f"{expected.diff(got)}"
            )
    return committed, True, ""


def _check_cluster_recovery(
    site_dir: str, case: RandomCase, workflow, reference
) -> tuple[bool, bool, str]:
    """Cluster analogue of :func:`_check_recovery`.

    Opening the cluster runs journal redo; afterwards the cluster
    MANIFEST must parse (never torn), the journal must be gone, the
    epoch must be exactly pre- or post-delta, and — after re-ingesting
    a lost delta and resolving — every measure table must equal the
    uninjected one-shot evaluation.
    """
    from repro.errors import ClusterError
    from repro.service.cluster import (
        ClusterManifest,
        IngestJournal,
        open_cluster,
    )

    try:
        ClusterManifest.load(site_dir)
    except ClusterError as exc:
        return False, False, f"torn cluster manifest: {exc}"
    cluster = open_cluster(site_dir, workflow)  # journal redo runs here
    try:
        if IngestJournal.load(site_dir) is not None:
            return False, False, "journal survived recovery"
        epoch = cluster.epoch
        committed = epoch > 1
        if epoch not in (1, 2):
            return committed, False, (
                f"epoch {epoch} is neither pre (1) nor post (2)"
            )
        if not committed:
            __, delta = _split(case)
            cluster.ingest(delta)
        cluster.resolve()
        for name in workflow.outputs():
            expected = reference[name]
            got = cluster.table(name)
            if not got.equal_rows(expected):
                return committed, False, (
                    f"measure {name!r} diverges after recovery: "
                    f"{expected.diff(got)}"
                )
        return committed, True, ""
    finally:
        cluster.close()


def sweep(
    work_dir: str,
    seed: int = 0,
    action: str = "crash",
    sites: Iterable[str] | None = None,
    schema=None,
    on_result: Callable[[SweepResult], None] | None = None,
) -> list[SweepResult]:
    """Run the crash-recovery sweep; one result per injection site.

    Args:
        work_dir: Scratch directory (template store + one copy per
            site); the caller owns its lifetime.
        seed: :class:`RandomCase` seed shared by parent and children.
        action: ``"crash"`` or ``"torn-write"`` — both end in a hard
            ``os._exit``, the latter after tearing the file being
            written, exercising recovery against partial data.
        sites: Site names to sweep (default: every registered
            ``store``/``ingest`` site).
        on_result: Optional progress callback, called per site.
    """
    from repro.service import Ingestor, MeasureStore

    if schema is None:
        schema = _default_schema()
    case = RandomCase(seed, schema)
    base, __ = _split(case)
    reference = SortScanEngine().evaluate(case.dataset, case.workflow)

    template = os.path.join(work_dir, "template")
    store = MeasureStore(template)
    Ingestor(store, case.workflow).bootstrap(
        InMemoryDataset(schema, base)
    )
    baseline_generation = store.generation

    # The cluster template (and its reference) is built lazily: only
    # when the site list actually includes cluster-scope sites.
    cluster_template = os.path.join(work_dir, "cluster-template")
    cluster_workflow = None
    cluster_reference = None

    results: list[SweepResult] = []
    for site in sites if sites is not None else sweep_sites():
        is_cluster = site.startswith("cluster.")
        if is_cluster and cluster_workflow is None:
            from repro.service.cluster import bootstrap_cluster

            cluster_workflow = _cluster_workflow(schema)
            cluster_reference = SortScanEngine().evaluate(
                case.dataset, cluster_workflow
            )
            bootstrap_cluster(
                cluster_template,
                cluster_workflow,
                base,
                num_shards=CLUSTER_SHARDS,
            ).close()
        site_dir = os.path.join(
            work_dir, site.replace(".", "-").replace("/", "-")
        )
        shutil.copytree(
            cluster_template if is_cluster else template, site_dir
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.testkit.sweeper import child_main; "
                "child_main()",
            ],
            env=_subprocess_env(
                site, action, site_dir, seed, cluster=is_cluster
            ),
            capture_output=True,
            text=True,
            timeout=120,
        )
        fired = proc.returncode == CRASH_EXIT_CODE
        if not fired:
            result = SweepResult(
                site=site,
                action=action,
                exit_code=proc.returncode,
                fired=False,
                committed=False,
                ok=False,
                detail=(
                    "site never fired during the scripted commit"
                    if proc.returncode == 0
                    else f"child failed unexpectedly: "
                    f"{(proc.stderr or '').strip()[-300:]}"
                ),
            )
        else:
            if is_cluster:
                committed, ok, detail = _check_cluster_recovery(
                    site_dir, case, cluster_workflow, cluster_reference
                )
            else:
                committed, ok, detail = _check_recovery(
                    site_dir, case, baseline_generation, reference
                )
            result = SweepResult(
                site=site,
                action=action,
                exit_code=proc.returncode,
                fired=True,
                committed=committed,
                ok=ok,
                detail=detail,
            )
        results.append(result)
        if on_result is not None:
            on_result(result)
        shutil.rmtree(site_dir, ignore_errors=True)
    return results
