"""Metamorphic oracle families over the seeded random generator.

Each family states a *metamorphic relation* — a transformation of a
computation that must not change (or must predictably change) its
result — and checks it for one seed of :class:`~repro.testkit
.generator.RandomCase`:

- ``rewrite`` — the algebra's Theorem 1 rewrites (Properties 1, 2, 4,
  5 and the child/parent-match-as-aggregation identity) evaluated
  semantically: original and rewritten expression must produce the
  same measure table;
- ``merge`` — aggregate state algebra: for every registered aggregate,
  folding a concatenation equals merging per-chunk states, merge is
  associative and commutative, and the empty state is an identity
  (HyperLogLog registers merge exactly; its *estimate* must sit within
  the sketch's rank error of the true distinct count);
- ``rollup`` — roll-up consistency: aggregating a fine distributive
  basic measure up with its combiner equals aggregating the facts at
  the coarse granularity directly;
- ``partition`` — partition-count invariance: the partitioned engine
  must produce identical tables for any partition count;
- ``ingest`` — ingest-then-query equals recompute-from-scratch
  (the incremental-maintenance contract);
- ``batched`` — the columnar batched scan is *bit-identical* to the
  row-at-a-time scalar scan for every scan engine at several batch
  sizes (see :mod:`repro.storage.columnar`);
- ``sql`` — the paper's own oracle: the generated workflow executed
  as real SQL (Tables 2-4 translation on sqlite via
  :mod:`repro.backends`) must match the in-memory engines
  row-for-row, measures without an executable SQL form skipped with
  a reason (see :func:`repro.testkit.differential.sql_divergence`).

:func:`run_seed` checks one seed against all (or selected) families
and returns :class:`OracleFailure` records; every failure message
reprints the seed and the generated workflow recipe, and
workflow-shaped failures carry a shrunk (1-minimal) recipe produced by
:func:`~repro.testkit.generator.shrink_steps`.  :func:`run_batch`
sweeps a seed range — the ``repro faults run`` CLI front end.
"""

from __future__ import annotations

import math
import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence

from repro.aggregates.base import AggregateFunction, AggSpec, get_aggregate
from repro.algebra.conditions import ChildParent
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    FactTable,
    Select,
    MatchJoin,
)
from repro.algebra.predicates import Field
from repro.algebra.properties import (
    cells,
    collapse_aggregations,
    match_join_as_aggregate,
    push_selection_below_aggregate,
    reorder_combine_inputs,
    simplify,
    split_combine_join,
)
from repro.cube.granularity import Granularity
from repro.engine.compile import compile_measures
from repro.engine.partitioned import PartitionedEngine
from repro.engine.single_scan import SingleScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.testkit.differential import (
    batched_divergence,
    sql_divergence,
)
from repro.testkit.generator import (
    PARTITION_DIM,
    RandomCase,
    Step,
    ingestion_divergence,
)

__all__ = [
    "FAMILIES",
    "OracleFailure",
    "default_schema",
    "run_batch",
    "run_seed",
]


def default_schema():
    """The harness schema: 3 dims, 3 levels, fan-out 4 (64 values)."""
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


@dataclass
class OracleFailure:
    """One violated metamorphic relation, fully reproducible."""

    family: str
    seed: int
    message: str
    shrunk_recipe: list[str] = field(default_factory=list)

    def describe(self) -> str:
        text = f"[{self.family}] seed={self.seed}: {self.message}"
        if self.shrunk_recipe:
            lines = "\n".join(
                f"    {line}" for line in self.shrunk_recipe
            )
            text += f"\nShrunk recipe:\n{lines}"
        return text


# -- shared helpers ---------------------------------------------------------


def _evaluate(expr, dataset) -> dict:
    graph = compile_measures({"out": expr})
    return SingleScanEngine().evaluate(dataset, graph)["out"].rows


def _assert_expr_equivalent(label, original, rewritten, dataset) -> None:
    before = _evaluate(original, dataset)
    after = _evaluate(rewritten, dataset)
    if before != after:
        changed = [
            (key, before.get(key), after.get(key))
            for key in sorted(set(before) | set(after))
            if before.get(key) != after.get(key)
        ]
        raise AssertionError(
            f"{label}: rewrite changed the result "
            f"({len(changed)} rows differ; first: {changed[:3]})"
        )


def _gran(schema, at: dict) -> Granularity:
    """Granularity with the given ``{dim index: level}``, rest ALL."""
    levels = [dim.all_level for dim in schema.dimensions]
    for index, level in at.items():
        levels[index] = level
    return Granularity(schema, levels)


# -- family: rewrite equivalence (Theorem 1) --------------------------------

#: Outer/inner pairs Property 1 collapses, with the fact-level input.
_COLLAPSE_PAIRS = [
    ("sum", "sum", "v"),
    ("min", "min", "v"),
    ("max", "max", "v"),
    ("sum", "count", "*"),
]


def _rewrite_dataset(case: RandomCase, rng: random.Random):
    """Integer-valued measures keep re-associated sums bit-exact, so
    rewrite equivalence can be checked with ``==`` instead of a
    tolerance that could mask real bugs."""
    count = rng.randint(200, 400)
    records = [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            float(rng.randrange(10)),
        )
        for __ in range(count)
    ]
    return InMemoryDataset(case.schema, records)


def _oracle_rewrite(case: RandomCase, rng: random.Random, tmp) -> None:
    schema = case.schema
    dataset = _rewrite_dataset(case, rng)
    fact = FactTable(schema)
    dim = rng.randrange(len(schema.dimensions))
    all_level = schema.dimensions[dim].all_level
    fine = rng.randint(0, all_level - 2)
    coarse = rng.randint(fine + 1, all_level - 1)
    fine_gran = _gran(schema, {dim: fine})
    coarse_gran = _gran(schema, {dim: coarse})

    # Property 1: two-level distributive aggregation collapses.
    for outer, inner, input_field in _COLLAPSE_PAIRS:
        nested = Aggregate(
            Aggregate(fact, fine_gran, AggSpec(inner, input_field)),
            coarse_gran,
            AggSpec(outer, "M"),
        )
        collapsed = collapse_aggregations(nested)
        if not isinstance(collapsed.child, FactTable):
            raise AssertionError(
                f"Property 1 did not fire for {outer}({inner})"
            )
        _assert_expr_equivalent(
            f"Property 1 {outer}∘{inner}", nested, collapsed, dataset
        )

    # Property 2: dimension selections push below the aggregation.
    constant = rng.randrange(4)
    selected = Select(
        Aggregate(fact, coarse_gran, AggSpec("count", "*")),
        Field(schema.dimensions[dim].name) >= constant,
    )
    pushed = push_selection_below_aggregate(selected)
    if not isinstance(pushed, Aggregate):
        raise AssertionError("Property 2 did not fire")
    _assert_expr_equivalent("Property 2", selected, pushed, dataset)

    # Property 4: combine-join inputs permute freely.
    base = Aggregate(fact, fine_gran, AggSpec("count", "*"))
    inputs = [
        Aggregate(fact, fine_gran, AggSpec(name, "v"))
        for name in ("sum", "max", "min")
    ]
    join = CombineJoin(
        base,
        inputs,
        CombineFn(
            lambda c, a, b, d: (
                (c or 0) + 2 * (a or 0) - (b or 0) + 3 * (d or 0)
            ),
            name="mix",
            handles_null=True,
        ),
    )
    permutation = rng.sample(range(3), 3)
    _assert_expr_equivalent(
        f"Property 4 π{permutation}",
        join,
        reorder_combine_inputs(join, permutation),
        dataset,
    )

    # Property 5: a combine join decomposes into two stages.
    additive = CombineJoin(
        base,
        inputs[:2],
        CombineFn(
            lambda c, a, b: (c or 0) + (a or 0) + (b or 0),
            name="add",
            handles_null=True,
        ),
    )
    split = split_combine_join(
        additive,
        split_at=1,
        fc1=lambda c, a: (c or 0) + (a or 0),
        fc2=lambda acc, b: (acc or 0) + (b or 0),
        handles_null=True,
    )
    _assert_expr_equivalent("Property 5", additive, split, dataset)

    # Child/parent match join == aggregation (cells preserved).
    child = Aggregate(fact, fine_gran, AggSpec("sum", "v"))
    cp_join = MatchJoin(
        cells(fact, coarse_gran), child, ChildParent(), AggSpec("sum", "M")
    )
    rewritten = match_join_as_aggregate(cp_join)
    if not isinstance(rewritten, Aggregate):
        raise AssertionError("child/parent rewrite did not fire")
    _assert_expr_equivalent("cp-match", cp_join, rewritten, dataset)

    # simplify() composes the always-sound rewrites to a fixpoint.
    nested = Select(
        Aggregate(
            Aggregate(fact, fine_gran, AggSpec("sum", "v")),
            coarse_gran,
            AggSpec("sum", "M"),
        ),
        Field(schema.dimensions[dim].name) >= constant,
    )
    _assert_expr_equivalent(
        "simplify fixpoint", nested, simplify(nested), dataset
    )


# -- family: merge algebra --------------------------------------------------

_MERGEABLE = [
    "count", "sum", "min", "max", "avg", "var", "stddev",
    "median", "count_distinct",
]

#: HyperLogLog(12) relative standard error is 1.04/sqrt(4096) ≈ 1.6%;
#: five sigma keeps the deterministic check far from the noise floor.
_HLL_RELATIVE_TOLERANCE = 5 * 1.04 / math.sqrt(1 << 12)


def _fold(fn: AggregateFunction, values) -> object:
    state = fn.create()
    for value in values:
        state = fn.update(state, value)
    return state


def _close(a, b) -> bool:
    if a is None or b is None:
        return a is b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _check_merge_laws(fn: AggregateFunction, chunks) -> None:
    a, b, c = chunks
    whole = fn.finalize(_fold(fn, a + b + c))
    left = fn.finalize(
        fn.merge(fn.merge(_fold(fn, a), _fold(fn, b)), _fold(fn, c))
    )
    right = fn.finalize(
        fn.merge(_fold(fn, a), fn.merge(_fold(fn, b), _fold(fn, c)))
    )
    forward = fn.finalize(fn.merge(_fold(fn, a), _fold(fn, b)))
    backward = fn.finalize(fn.merge(_fold(fn, b), _fold(fn, a)))
    with_empty = fn.finalize(fn.merge(_fold(fn, a), fn.create()))
    alone = fn.finalize(_fold(fn, a))
    for law, got, expected in (
        ("merge == fold of concatenation", left, whole),
        ("associativity", right, left),
        ("commutativity", backward, forward),
        ("empty-state identity", with_empty, alone),
    ):
        if not _close(got, expected):
            raise AssertionError(
                f"{fn.name}: {law} violated ({got!r} != {expected!r})"
            )


def _oracle_merge(case: RandomCase, rng: random.Random, tmp) -> None:
    numeric_chunks = [
        [
            round(rng.uniform(-50, 50), 3) if rng.random() < 0.8 else None
            for __ in range(rng.randint(5, 60))
        ]
        for __ in range(3)
    ]
    discrete_chunks = [
        [rng.randrange(40) for __ in range(rng.randint(5, 60))]
        for __ in range(3)
    ]
    for name in _MERGEABLE:
        fn = get_aggregate(name)
        chunks = (
            discrete_chunks
            if name in ("count_distinct",)
            else numeric_chunks
        )
        _check_merge_laws(fn, chunks)

    # HyperLogLog: register-wise max merges exactly, and the estimate
    # must sit within the sketch's rank error of the true cardinality.
    hll = get_aggregate("approx_distinct")
    sketch_chunks = [
        [rng.randrange(1_000_000) for __ in range(1500)]
        for __ in range(3)
    ]
    _check_merge_laws(hll, sketch_chunks)
    estimate = hll.finalize(
        _fold(hll, sketch_chunks[0] + sketch_chunks[1] + sketch_chunks[2])
    )
    truth = len(set().union(*map(set, sketch_chunks)))
    if abs(estimate - truth) > _HLL_RELATIVE_TOLERANCE * truth:
        raise AssertionError(
            f"HLL estimate {estimate} outside "
            f"{_HLL_RELATIVE_TOLERANCE:.1%} of true {truth}"
        )


# -- family: roll-up consistency --------------------------------------------

#: Combiner a roll-up must apply to re-aggregate a distributive basic
#: (Property 1's side condition: COUNT is combined by SUM).
_COMBINER = {"count": "sum", "sum": "sum", "min": "min", "max": "max"}


def _basic_agg_name(step: Step) -> str:
    agg = step.payload["agg"]
    return agg if isinstance(agg, str) else agg[0]


def _oracle_rollup(case: RandomCase, rng: random.Random, tmp) -> None:
    checked = 0
    for step in case.steps:
        if step.kind != "basic":
            continue
        agg_name = _basic_agg_name(step)
        combiner = _COMBINER.get(agg_name)
        if combiner is None:
            continue
        gran = step.payload["granularity"]
        coarser = case._coarsen(rng, gran)
        if coarser is None:
            continue
        variant = case.rebuild_workflow([step])
        variant.rollup(
            "rolled", coarser, source=step.name, agg=combiner
        )
        variant.basic(
            "direct", coarser, agg=step.payload["agg"]
        )
        result = SingleScanEngine().evaluate(case.dataset, variant)
        if not result["rolled"].equal_rows(result["direct"]):
            raise AssertionError(
                f"rolling {step.name!r} ({agg_name}) up with "
                f"{combiner} diverges from direct aggregation at "
                f"{coarser!r}: "
                f"{result['direct'].diff(result['rolled'])}"
            )
        checked += 1
    if checked == 0:
        # Nothing distributive in this seed's recipe: check the law on
        # a canonical workflow so every seed exercises the family.
        wf = case.rebuild_workflow([])
        fine = case._random_granularity(rng)
        coarser = case._coarsen(rng, fine)
        if coarser is None:
            return
        wf.basic("fine", fine, agg=("sum", "v"))
        wf.rollup("rolled", coarser, source="fine", agg="sum")
        wf.basic("direct", coarser, agg=("sum", "v"))
        result = SingleScanEngine().evaluate(case.dataset, wf)
        if not result["rolled"].equal_rows(result["direct"]):
            raise AssertionError(
                "canonical sum roll-up diverges from direct "
                f"aggregation: {result['direct'].diff(result['rolled'])}"
            )


# -- family: partition-count invariance -------------------------------------


def _partition_counts(case: RandomCase) -> list[int]:
    return sorted({2, case.num_partitions, 7})


def _partition_mismatch(case: RandomCase, workflow) -> str | None:
    if not workflow.outputs():
        return None
    reference = SingleScanEngine().evaluate(case.dataset, workflow)
    for count in _partition_counts(case):
        engine = PartitionedEngine(
            partition_dim=PARTITION_DIM,
            num_partitions=count,
            parallel="serial",
        )
        result = engine.evaluate(case.dataset, workflow)
        for name in workflow.outputs():
            if not reference[name].equal_rows(result[name]):
                return (
                    f"{count} partitions change {name!r}: "
                    f"{reference[name].diff(result[name])}"
                )
    return None


def _oracle_partition(case: RandomCase, rng: random.Random, tmp) -> None:
    mismatch = _partition_mismatch(case, case.workflow)
    if mismatch is not None:
        raise AssertionError(
            f"partition-count invariance violated: {mismatch}"
        )


# -- family: ingest-then-query vs recompute ---------------------------------


def _oracle_ingest(case: RandomCase, rng: random.Random, tmp) -> None:
    store_path = os.path.join(tmp, f"store-{case.seed}")
    divergence = ingestion_divergence(
        case.schema, case.dataset, case.workflow, case.seed, store_path
    )
    if divergence is not None:
        raise AssertionError(
            f"ingest-then-query != recompute: {divergence}"
        )


# -- family: batched scan vs scalar scan ------------------------------------


def _oracle_batched(case: RandomCase, rng: random.Random, tmp) -> None:
    divergence = batched_divergence(case.dataset, case.workflow)
    if divergence is not None:
        raise AssertionError(
            f"batched/scalar bit-identity violated: {divergence}"
        )


# -- family: SQL backend vs in-memory engines --------------------------------


def _oracle_sql(case: RandomCase, rng: random.Random, tmp) -> None:
    divergence = sql_divergence(case.dataset, case.workflow)
    if divergence is not None:
        raise AssertionError(
            f"SQL-backend differential violated: {divergence}"
        )


# -- the harness ------------------------------------------------------------

#: Family name → (check, shrink predicate builder or None).  A check
#: takes ``(case, rng, tmp_dir)`` and raises AssertionError on a
#: violated relation; the shrink builder turns a failing case into a
#: ``still_fails(workflow)`` predicate for recipe minimization.
_FamilyCheck = Callable[[RandomCase, random.Random, str], None]

FAMILIES: tuple[str, ...] = (
    "rewrite", "merge", "rollup", "partition", "ingest", "batched",
    "sql",
)

_CHECKS: dict[str, _FamilyCheck] = {
    "rewrite": _oracle_rewrite,
    "merge": _oracle_merge,
    "rollup": _oracle_rollup,
    "partition": _oracle_partition,
    "ingest": _oracle_ingest,
    "batched": _oracle_batched,
    "sql": _oracle_sql,
}


def _shrink_predicate(
    family: str, case: RandomCase, tmp: str
) -> Callable | None:
    """``still_fails(workflow)`` for workflow-shaped families."""
    if family == "partition":
        return lambda wf: _partition_mismatch(case, wf) is not None
    if family == "batched":
        return (
            lambda wf: batched_divergence(case.dataset, wf) is not None
        )
    if family == "sql":

        def sql_still_fails(wf) -> bool:
            if not wf.outputs():
                return False
            return sql_divergence(case.dataset, wf) is not None

        return sql_still_fails
    if family == "ingest":
        counter = [0]

        def still_fails(wf) -> bool:
            if not wf.outputs():
                return False
            counter[0] += 1
            path = os.path.join(tmp, f"shrink-{counter[0]}")
            return (
                ingestion_divergence(
                    case.schema, case.dataset, wf, case.seed, path
                )
                is not None
            )

        return still_fails
    return None


def run_seed(
    seed: int,
    schema=None,
    families: Sequence[str] | None = None,
    tmp_dir: str | None = None,
    shrink: bool = True,
) -> list[OracleFailure]:
    """Check one seed against the oracle families; [] means all held."""
    if schema is None:
        schema = default_schema()
    selected = list(families) if families else list(FAMILIES)
    unknown = [name for name in selected if name not in _CHECKS]
    if unknown:
        raise ValueError(
            f"unknown oracle families {unknown}; have {list(FAMILIES)}"
        )
    case = RandomCase(seed, schema)
    own_tmp = tmp_dir is None
    tmp = tempfile.mkdtemp(prefix="repro-oracles-") if own_tmp else tmp_dir
    failures: list[OracleFailure] = []
    try:
        for family in selected:
            # Seeded with a string: deterministic across processes
            # (unlike hash(), which is salted per interpreter).
            rng = random.Random(f"{seed}:{family}")
            try:
                _CHECKS[family](case, rng, tmp)
            except AssertionError as exc:
                failure = OracleFailure(
                    family=family,
                    seed=seed,
                    message=(
                        f"{exc}\nReproduce with "
                        f"run_seed({seed}, families=[{family!r}]); "
                        f"recipe:\n{case.recipe_text()}"
                    ),
                )
                predicate = _shrink_predicate(family, case, tmp)
                if shrink and predicate is not None:
                    failure.shrunk_recipe = [
                        step.line for step in case.shrink(predicate)
                    ]
                failures.append(failure)
    finally:
        if own_tmp:
            shutil.rmtree(tmp, ignore_errors=True)
    return failures


def run_batch(
    seeds: Iterable[int],
    schema=None,
    families: Sequence[str] | None = None,
    on_seed: Callable[[int, list[OracleFailure]], None] | None = None,
) -> list[OracleFailure]:
    """Check a seed range; returns every failure across all seeds."""
    if schema is None:
        schema = default_schema()
    failures: list[OracleFailure] = []
    for seed in seeds:
        seed_failures = run_seed(seed, schema=schema, families=families)
        failures.extend(seed_failures)
        if on_seed is not None:
            on_seed(seed, seed_failures)
    return failures
