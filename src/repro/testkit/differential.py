"""The differential core: every engine must compute identical tables.

This module holds the engine roster and the agreement assertion the
whole correctness harness is built on.  It lives in ``repro.testkit``
(not in ``tests/``) so the metamorphic oracles, the crash-recovery
sweeper, and the ``repro faults`` CLI can reuse it without importing
the test suite; ``tests/conftest.py`` re-exports both names.
"""

from __future__ import annotations

from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine

__all__ = [
    "SQL_ORACLE_TOLERANCE",
    "all_engines",
    "assert_engines_agree",
    "assert_batched_equals_scalar",
    "assert_sql_backend_agrees",
    "batched_divergence",
    "sql_divergence",
]

#: Batch sizes the batched-vs-scalar checks sweep by default: the
#: degenerate one-row batch, a size that never divides the dataset
#: evenly (so group spans straddle batch boundaries), and the engines'
#: production default.
BATCH_SIZES = (1, 7, 4096)


def batched_divergence(
    dataset, workflow, batch_sizes=BATCH_SIZES
) -> str | None:
    """First way the batched scan differs from the scalar scan, if any.

    For each scan engine, evaluates once with ``batch_size=0`` (the
    row-at-a-time path) and once per requested batch size, comparing
    raw row dicts with ``==`` — the batched path promises *bit-identical*
    results, not merely tolerance-equal ones (see
    :mod:`repro.storage.columnar`).  Returns ``None`` when every
    comparison holds.
    """
    scan_engines = [
        lambda bs: SingleScanEngine(batch_size=bs),
        lambda bs: SortScanEngine(batch_size=bs),
        lambda bs: SortScanEngine(optimize=True, batch_size=bs),
    ]
    for factory in scan_engines:
        scalar = factory(0).evaluate(dataset, workflow)
        for batch_size in batch_sizes:
            engine = factory(batch_size)
            batched = engine.evaluate(dataset, workflow)
            for name in workflow.outputs():
                if scalar[name].rows != batched[name].rows:
                    return (
                        f"{engine.name} batch_size={batch_size} is not "
                        f"bit-identical to scalar on {name!r}: "
                        f"{scalar[name].diff(batched[name])}"
                    )
    return None


def assert_batched_equals_scalar(
    dataset, workflow, batch_sizes=BATCH_SIZES
) -> None:
    """Assert the columnar path's bit-identity contract on a workflow."""
    divergence = batched_divergence(dataset, workflow, batch_sizes)
    assert divergence is None, divergence


#: Tolerance for the SQL-backend oracle, looser than ``equal_rows``'s
#: 1e-9 default for one documented reason: the sqlite dialect compiles
#: ``var``/``stddev`` through the moment formula (``AVG(x*x) -
#: AVG(x)^2`` — the only portable single-expression form) while the
#: in-memory engines run the Welford/Chan recurrence, and the two
#: schemes differ by ~1e-12 relative at unit scale, amplified through
#: ``sqrt`` and the combine functions.  Everything else (counts, sums,
#: extrema, averages) agrees far inside this bound.
SQL_ORACLE_TOLERANCE = 1e-6


def sql_divergence(
    dataset,
    workflow,
    engine: str = "sqlite",
    tol: float = SQL_ORACLE_TOLERANCE,
) -> str | None:
    """First way the SQL backend differs from the in-memory engines.

    The third oracle: loads ``dataset`` into a real relational engine,
    runs the paper's Tables 2-4 translation of every stored measure,
    and compares row-for-row (``equal_rows``) against *both* the naive
    relational engine and the sort/scan engine.  SQL ``NULL`` decodes
    to ``None``, which is exactly the engines' empty-aggregate value,
    so comparisons need no mapping.  Measures the dialect cannot
    express (``median`` on sqlite) are skipped — with a reason the
    backend records — rather than silently passed.  Returns ``None``
    when every comparison holds.
    """
    from repro.backends import get_backend

    backend = get_backend(engine)
    sql_result = backend.evaluate(dataset, workflow)
    references = [RelationalEngine(), SortScanEngine()]
    results = [ref.evaluate(dataset, workflow) for ref in references]
    for name in workflow.outputs():
        if name in sql_result.skipped:
            continue
        got = sql_result.tables[name]
        for ref_engine, ref in zip(references, results):
            want = ref[name]
            if not want.equal_rows(got, tol=tol):
                return (
                    f"{backend.name} disagrees with {ref_engine.name} "
                    f"on {name!r}: {want.diff(got)}"
                )
    return None


def assert_sql_backend_agrees(
    dataset, workflow, engine: str = "sqlite"
) -> None:
    """Assert the SQL backend matches the in-memory engines."""
    divergence = sql_divergence(dataset, workflow, engine)
    assert divergence is None, divergence


def all_engines(budget: int = 50_000):
    """One instance of every engine, streaming ones instrumented."""
    return [
        RelationalEngine(),
        RelationalEngine(spool=False, reuse_subexpressions=True),
        SingleScanEngine(),
        SortScanEngine(assert_no_late_updates=True),
        SortScanEngine(optimize=True, assert_no_late_updates=True),
        MultiPassEngine(memory_budget_entries=budget),
    ]


def assert_engines_agree(
    dataset, workflow, budget: int = 50_000, extra_engines=()
):
    """The central invariant: every engine computes identical tables.

    ``extra_engines`` joins the standard roster — used by callers that
    exercise engines with plan preconditions (e.g. the partitioned
    engine rejects workflows whose measures hold the partition
    dimension at ``D_ALL``, so it only joins when the workflow is known
    to qualify).
    """
    engines = all_engines(budget) + list(extra_engines)
    results = [engine.evaluate(dataset, workflow) for engine in engines]
    reference = results[0]
    for engine, result in zip(engines[1:], results[1:]):
        for name in workflow.outputs():
            ref_table = reference[name]
            got_table = result[name]
            assert ref_table.equal_rows(got_table), (
                f"{engine.name} disagrees on {name!r}: "
                f"{ref_table.diff(got_table)}"
            )
    return reference
