"""The differential core: every engine must compute identical tables.

This module holds the engine roster and the agreement assertion the
whole correctness harness is built on.  It lives in ``repro.testkit``
(not in ``tests/``) so the metamorphic oracles, the crash-recovery
sweeper, and the ``repro faults`` CLI can reuse it without importing
the test suite; ``tests/conftest.py`` re-exports both names.
"""

from __future__ import annotations

from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine

__all__ = ["all_engines", "assert_engines_agree"]


def all_engines(budget: int = 50_000):
    """One instance of every engine, streaming ones instrumented."""
    return [
        RelationalEngine(),
        RelationalEngine(spool=False, reuse_subexpressions=True),
        SingleScanEngine(),
        SortScanEngine(assert_no_late_updates=True),
        SortScanEngine(optimize=True, assert_no_late_updates=True),
        MultiPassEngine(memory_budget_entries=budget),
    ]


def assert_engines_agree(
    dataset, workflow, budget: int = 50_000, extra_engines=()
):
    """The central invariant: every engine computes identical tables.

    ``extra_engines`` joins the standard roster — used by callers that
    exercise engines with plan preconditions (e.g. the partitioned
    engine rejects workflows whose measures hold the partition
    dimension at ``D_ALL``, so it only joins when the workflow is known
    to qualify).
    """
    engines = all_engines(budget) + list(extra_engines)
    results = [engine.evaluate(dataset, workflow) for engine in engines]
    reference = results[0]
    for engine, result in zip(engines[1:], results[1:]):
        for name in workflow.outputs():
            ref_table = reference[name]
            got_table = result[name]
            assert ref_table.equal_rows(got_table), (
                f"{engine.name} disagrees on {name!r}: "
                f"{ref_table.diff(got_table)}"
            )
    return reference
