"""The differential core: every engine must compute identical tables.

This module holds the engine roster and the agreement assertion the
whole correctness harness is built on.  It lives in ``repro.testkit``
(not in ``tests/``) so the metamorphic oracles, the crash-recovery
sweeper, and the ``repro faults`` CLI can reuse it without importing
the test suite; ``tests/conftest.py`` re-exports both names.
"""

from __future__ import annotations

from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine

__all__ = [
    "all_engines",
    "assert_engines_agree",
    "assert_batched_equals_scalar",
    "batched_divergence",
]

#: Batch sizes the batched-vs-scalar checks sweep by default: the
#: degenerate one-row batch, a size that never divides the dataset
#: evenly (so group spans straddle batch boundaries), and the engines'
#: production default.
BATCH_SIZES = (1, 7, 4096)


def batched_divergence(
    dataset, workflow, batch_sizes=BATCH_SIZES
) -> str | None:
    """First way the batched scan differs from the scalar scan, if any.

    For each scan engine, evaluates once with ``batch_size=0`` (the
    row-at-a-time path) and once per requested batch size, comparing
    raw row dicts with ``==`` — the batched path promises *bit-identical*
    results, not merely tolerance-equal ones (see
    :mod:`repro.storage.columnar`).  Returns ``None`` when every
    comparison holds.
    """
    scan_engines = [
        lambda bs: SingleScanEngine(batch_size=bs),
        lambda bs: SortScanEngine(batch_size=bs),
        lambda bs: SortScanEngine(optimize=True, batch_size=bs),
    ]
    for factory in scan_engines:
        scalar = factory(0).evaluate(dataset, workflow)
        for batch_size in batch_sizes:
            engine = factory(batch_size)
            batched = engine.evaluate(dataset, workflow)
            for name in workflow.outputs():
                if scalar[name].rows != batched[name].rows:
                    return (
                        f"{engine.name} batch_size={batch_size} is not "
                        f"bit-identical to scalar on {name!r}: "
                        f"{scalar[name].diff(batched[name])}"
                    )
    return None


def assert_batched_equals_scalar(
    dataset, workflow, batch_sizes=BATCH_SIZES
) -> None:
    """Assert the columnar path's bit-identity contract on a workflow."""
    divergence = batched_divergence(dataset, workflow, batch_sizes)
    assert divergence is None, divergence


def all_engines(budget: int = 50_000):
    """One instance of every engine, streaming ones instrumented."""
    return [
        RelationalEngine(),
        RelationalEngine(spool=False, reuse_subexpressions=True),
        SingleScanEngine(),
        SortScanEngine(assert_no_late_updates=True),
        SortScanEngine(optimize=True, assert_no_late_updates=True),
        MultiPassEngine(memory_budget_entries=budget),
    ]


def assert_engines_agree(
    dataset, workflow, budget: int = 50_000, extra_engines=()
):
    """The central invariant: every engine computes identical tables.

    ``extra_engines`` joins the standard roster — used by callers that
    exercise engines with plan preconditions (e.g. the partitioned
    engine rejects workflows whose measures hold the partition
    dimension at ``D_ALL``, so it only joins when the workflow is known
    to qualify).
    """
    engines = all_engines(budget) + list(extra_engines)
    results = [engine.evaluate(dataset, workflow) for engine in engines]
    reference = results[0]
    for engine, result in zip(engines[1:], results[1:]):
        for name in workflow.outputs():
            ref_table = reference[name]
            got_table = result[name]
            assert ref_table.equal_rows(got_table), (
                f"{engine.name} disagrees on {name!r}: "
                f"{ref_table.diff(got_table)}"
            )
    return reference
