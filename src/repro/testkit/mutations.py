"""Workflow mutations that trigger each linter diagnostic.

For every ``CSM###`` code the analyzer knows, this module builds a
minimal workflow that *triggers* it (:func:`mutant`) and a corrected
counterpart that does *not* (:func:`repaired`).  The mutants exercise
the analyzer the way a hostile client would: error-level cases bypass
the :class:`~repro.workflow.AggregationWorkflow` builder entirely and
splice raw :class:`~repro.workflow.measure.Measure` objects into the
measure dict — exactly the shape a pickled workflow arriving over the
measure service wire could take.

Usage (the shape of the parametrized analyzer tests)::

    wf = mutant("CSM101", schema)
    assert "CSM101" in analyze(wf).codes()
    assert "CSM101" not in analyze(repaired("CSM101", schema)).codes()

Mutants are *minimal for the code*, not diagnostic-free otherwise: a
dependency cycle, for example, also defeats the granularity checks, so
a mutant may carry secondary findings.  Tests assert code membership,
not exact equality.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.aggregates.base import AggSpec
from repro.algebra.conditions import SelfMatch, Sibling
from repro.algebra.expr import CombineFn
from repro.algebra.predicates import Field
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.measure import Measure, MeasureKind
from repro.workflow.workflow import AggregationWorkflow


def _gran(schema: DatasetSchema, keyed: dict[str, int]) -> Granularity:
    """Granularity with the named dimensions at the given integer
    levels and everything else at ALL."""
    levels = [dim.all_level for dim in schema.dimensions]
    for name, level in keyed.items():
        levels[schema.dim_index(name)] = level
    return Granularity(schema, levels)


def _vfield(schema: DatasetSchema) -> str:
    """A fact-table measure attribute to aggregate, if the schema has
    one (the synthetic schema's ``v``)."""
    return schema.measures[0] if schema.measures else "*"


def _inject(wf: AggregationWorkflow, measure: Measure) -> Measure:
    """Splice a measure in *without* builder validation — the shape a
    workflow deserialized from the wire could have."""
    wf.measures[measure.name] = measure
    return measure


def _ratio(a, b):  # pragma: no cover - never evaluated by the linter
    """Module-level combine fn so mutant workflows stay picklable."""
    if a is None or b is None:
        return None
    return a / b


# -- per-code builders ---------------------------------------------------
#
# Each builder takes a schema and returns (trigger, repaired): the first
# workflow carries the code, the second is the minimal fix.


def _csm001(schema):
    bad = AggregationWorkflow(schema, "csm001")
    bad.basic("total", _gran(schema, {"d0": 0}))
    _inject(bad, Measure(
        "daily", _gran(schema, {"d0": 1}), MeasureKind.ROLLUP,
        agg=AggSpec("sum", "M"), source="missing",
    ))
    good = AggregationWorkflow(schema, "csm001-fixed")
    good.basic("total", _gran(schema, {"d0": 0}))
    good.rollup("daily", _gran(schema, {"d0": 1}), source="total",
                agg="sum")
    return bad, good


def _csm002(schema):
    bad = AggregationWorkflow(schema, "csm002")
    gran = _gran(schema, {"d0": 0})
    _inject(bad, Measure(
        "a", gran, MeasureKind.ROLLUP, agg=AggSpec("sum", "M"),
        source="b",
    ))
    _inject(bad, Measure(
        "b", gran, MeasureKind.ROLLUP, agg=AggSpec("sum", "M"),
        source="a",
    ))
    good = AggregationWorkflow(schema, "csm002-fixed")
    good.basic("a", gran, agg=("sum", _vfield(schema)))
    good.rollup("b", _gran(schema, {"d0": 1}), source="a", agg="sum")
    return bad, good


def _csm003(schema):
    bad = AggregationWorkflow(schema, "csm003")
    bad.basic("out", _gran(schema, {"d0": 0}))
    bad.basic("scratch", _gran(schema, {"d0": 0}),
              agg=("sum", _vfield(schema)), hidden=True)
    good = AggregationWorkflow(schema, "csm003-fixed")
    good.basic("out", _gran(schema, {"d0": 0}))
    good.basic("scratch", _gran(schema, {"d0": 0}),
               agg=("sum", _vfield(schema)), hidden=True)
    good.rollup("daily", _gran(schema, {"d0": 1}), source="scratch",
                agg="avg")
    return bad, good


def _csm004(schema):
    bad = AggregationWorkflow(schema, "csm004")
    bad.basic("a", _gran(schema, {"d0": 0}))
    bad.basic("b", _gran(schema, {"d0": 0}))
    good = AggregationWorkflow(schema, "csm004-fixed")
    good.basic("a", _gran(schema, {"d0": 0}))
    good.basic("b", _gran(schema, {"d0": 0}),
               agg=("sum", _vfield(schema)))
    return bad, good


def _csm005(schema):
    bad = AggregationWorkflow(schema, "csm005")
    good = AggregationWorkflow(schema, "csm005-fixed")
    good.basic("total", _gran(schema, {"d0": 0}))
    return bad, good


def _csm101(schema):
    bad = AggregationWorkflow(schema, "csm101")
    gran = _gran(schema, {"d0": 0})
    bad.basic("base", gran, hidden=True)
    _inject(bad, Measure(
        "agg", gran, MeasureKind.ROLLUP, agg=AggSpec("sum", "M"),
        source="base",
    ))
    good = AggregationWorkflow(schema, "csm101-fixed")
    good.basic("base", gran, hidden=True)
    good.rollup("agg", _gran(schema, {"d0": 1}), source="base",
                agg="avg")
    return bad, good


def _csm102(schema):
    bad = AggregationWorkflow(schema, "csm102")
    bad.basic("base", _gran(schema, {"d0": 0}), hidden=True)
    _inject(bad, Measure(
        "smooth", _gran(schema, {"d0": 1}), MeasureKind.MATCH,
        agg=AggSpec("avg", "M"), source="base",
        cond=Sibling({"d0": (0, 1)}),
    ))
    good = AggregationWorkflow(schema, "csm102-fixed")
    good.basic("base", _gran(schema, {"d0": 0}), hidden=True)
    good.rollup("daily", _gran(schema, {"d0": 1}), source="base",
                hidden=True)
    good.moving_window("smooth", _gran(schema, {"d0": 1}),
                       source="daily", windows={"d0": (0, 1)})
    return bad, good


def _csm103(schema):
    bad = AggregationWorkflow(schema, "csm103")
    gran = _gran(schema, {"d0": 0})
    bad.basic("base", gran, hidden=True)
    _inject(bad, Measure(
        "smooth", gran, MeasureKind.MATCH, agg=AggSpec("avg", "M"),
        source="base", cond=Sibling({"d1": (0, 1)}),
    ))
    good = AggregationWorkflow(schema, "csm103-fixed")
    good.basic("base", gran, hidden=True)
    good.moving_window("smooth", gran, source="base",
                       windows={"d0": (0, 1)})
    return bad, good


def _csm104(schema):
    bad = AggregationWorkflow(schema, "csm104")
    gran = _gran(schema, {"d0": 0})
    bad.basic("base", gran, hidden=True)
    bad.basic("keys", _gran(schema, {"d0": 1}), hidden=True)
    _inject(bad, Measure(
        "view", gran, MeasureKind.MATCH, agg=AggSpec("max", "M"),
        source="base", keys="keys", cond=SelfMatch(),
    ))
    good = AggregationWorkflow(schema, "csm104-fixed")
    good.basic("base", gran, hidden=True)
    good.match("view", gran, source="base", cond=SelfMatch(),
               agg="max")
    return bad, good


def _csm105(schema):
    bad = AggregationWorkflow(schema, "csm105")
    bad.basic("x", _gran(schema, {"d0": 0}), hidden=True)
    bad.basic("y", _gran(schema, {"d0": 1}),
              agg=("sum", _vfield(schema)), hidden=True)
    _inject(bad, Measure(
        "ratio", _gran(schema, {"d0": 0}), MeasureKind.COMBINE,
        inputs=("x", "y"), fn=CombineFn(_ratio, name="ratio"),
    ))
    good = AggregationWorkflow(schema, "csm105-fixed")
    good.basic("x", _gran(schema, {"d0": 0}), hidden=True)
    good.basic("y", _gran(schema, {"d0": 0}),
               agg=("sum", _vfield(schema)), hidden=True)
    good.combine("ratio", ["x", "y"], _ratio, fn_name="ratio")
    return bad, good


def _csm201(schema):
    bad = AggregationWorkflow(schema, "csm201")
    bad.basic("byd0", _gran(schema, {"d0": 0}))
    bad.basic("med", _gran(schema, {"d1": 0}),
              agg=("median", _vfield(schema)))
    good = AggregationWorkflow(schema, "csm201-fixed")
    good.basic("med", _gran(schema, {"d0": 0}),
               agg=("median", _vfield(schema)))
    return bad, good


def _csm202(schema):
    bad = AggregationWorkflow(schema, "csm202")
    bad.basic("byd0", _gran(schema, {"d0": 0}))
    bad.basic("byd1", _gran(schema, {"d1": 0}),
              agg=("sum", _vfield(schema)))
    good = AggregationWorkflow(schema, "csm202-fixed")
    good.basic("byd0", _gran(schema, {"d0": 0}))
    good.basic("byd1", _gran(schema, {"d0": 0, "d1": 0}),
               agg=("sum", _vfield(schema)))
    return bad, good


def _csm203(schema):
    bad = AggregationWorkflow(schema, "csm203")
    gran = _gran(schema, {"d0": 0})
    bad.basic("base", gran, hidden=True)
    bad.moving_window("smooth", gran, source="base",
                      windows={"d0": (0, 2_000_000)})
    good = AggregationWorkflow(schema, "csm203-fixed")
    good.basic("base", gran, hidden=True)
    good.moving_window("smooth", gran, source="base",
                       windows={"d0": (0, 2)})
    return bad, good


def _csm204(schema):
    return _csm202(schema)


def _csm301(schema):
    bad = AggregationWorkflow(schema, "csm301")
    bad.basic("base", _gran(schema, {"d0": 0}), hidden=True)
    bad.rollup("busy", _gran(schema, {"d0": 1}), source="base",
               where=Field("d0") <= 1)
    good = AggregationWorkflow(schema, "csm301-fixed")
    good.basic("base", _gran(schema, {"d0": 0}),
               where=Field("d0") <= 1, hidden=True)
    good.rollup("busy", _gran(schema, {"d0": 1}), source="base")
    return bad, good


def _csm302(schema):
    bad = AggregationWorkflow(schema, "csm302")
    bad.basic("fine", _gran(schema, {"d0": 0}),
              agg=("sum", _vfield(schema)), hidden=True)
    bad.rollup("coarse", _gran(schema, {"d0": 1}), source="fine",
               agg="sum")
    good = AggregationWorkflow(schema, "csm302-fixed")
    good.basic("coarse", _gran(schema, {"d0": 1}),
               agg=("sum", _vfield(schema)))
    return bad, good


def _csm303(schema):
    bad = AggregationWorkflow(schema, "csm303")
    gran = _gran(schema, {"d0": 0})
    bad.basic("a", gran)
    bad.basic("b", gran, hidden=True)
    bad.rollup("daily", _gran(schema, {"d0": 1}), source="b")
    good = AggregationWorkflow(schema, "csm303-fixed")
    good.basic("a", gran)
    good.rollup("daily", _gran(schema, {"d0": 1}), source="a")
    return bad, good


def _csm304(schema):
    bad = AggregationWorkflow(schema, "csm304")
    gran = _gran(schema, {"d0": 0})
    bad.basic("base", gran, hidden=True)
    bad.moving_window("still", gran, source="base",
                      windows={"d0": (0, 0)})
    good = AggregationWorkflow(schema, "csm304-fixed")
    good.basic("base", gran, hidden=True)
    good.moving_window("still", gran, source="base",
                       windows={"d0": (0, 2)})
    return bad, good


_BUILDERS: dict[str, Callable] = {
    "CSM001": _csm001,
    "CSM002": _csm002,
    "CSM003": _csm003,
    "CSM004": _csm004,
    "CSM005": _csm005,
    "CSM101": _csm101,
    "CSM102": _csm102,
    "CSM103": _csm103,
    "CSM104": _csm104,
    "CSM105": _csm105,
    "CSM201": _csm201,
    "CSM202": _csm202,
    "CSM203": _csm203,
    "CSM204": _csm204,
    "CSM301": _csm301,
    "CSM302": _csm302,
    "CSM303": _csm303,
    "CSM304": _csm304,
}

#: Every diagnostic code the mutation helper can trigger.
MUTANT_CODES: tuple[str, ...] = tuple(sorted(_BUILDERS))


def mutant(code: str, schema: DatasetSchema) -> AggregationWorkflow:
    """A minimal workflow whose analysis report contains ``code``."""
    return _BUILDERS[code](schema)[0]


def repaired(code: str, schema: DatasetSchema) -> AggregationWorkflow:
    """The corrected counterpart: ``code`` absent from its report."""
    return _BUILDERS[code](schema)[1]


# -- workload (cross-workflow) mutations ---------------------------------
#
# The CSM4xx family is emitted by the *workload* analyzer
# (:func:`repro.analysis.analyze_workload`) over a set of workflows, so
# its mutants are minimal named *workloads* — dicts of workflows — not
# single workflows.  Same contract as above: the first workload
# triggers the code, the second does not (it may still carry other
# CSM4xx findings; tests assert code membership).


def _w401(schema):
    gran = _gran(schema, {"d0": 0})
    v = _vfield(schema)

    def pair(b_agg):
        a = AggregationWorkflow(schema, "w401-a")
        a.basic("trafficA", gran, agg=("sum", v))
        b = AggregationWorkflow(schema, "w401-b")
        b.basic("trafficB", gran, agg=b_agg)
        return {"a": a, "b": b}

    # Same aggregation under different measure names triggers it; the
    # fix computes something genuinely different in the second
    # workflow.
    return pair(("sum", v)), pair(("count", "*"))


def _w402(schema):
    v = _vfield(schema)

    def pair(b_dims):
        a = AggregationWorkflow(schema, "w402-a")
        a.basic("byD0", _gran(schema, {"d0": 0}), agg=("sum", v))
        b = AggregationWorkflow(schema, "w402-b")
        b.basic("other", _gran(schema, b_dims), agg=("count", "*"))
        return {"a": a, "b": b}

    # Both group by d0 -> one sorted pass feeds both; grouping the
    # second workflow by d1 alone makes its streaming plan unordered
    # under the shared (d0-leading) key, so no scan is shareable.
    return pair({"d0": 1}), pair({"d1": 0})


def _w403(schema):
    v = _vfield(schema)

    def pair(a_dims):
        a = AggregationWorkflow(schema, "w403-a")
        a.basic("coarse", _gran(schema, a_dims), agg=("sum", v))
        b = AggregationWorkflow(schema, "w403-b")
        b.basic("fine", _gran(schema, {"d0": 0, "d1": 0}),
                agg=("count", "*"))
        return {"a": a, "b": b}

    # Different per-query sort keys (d0 vs d0,d1) that one workload
    # lexsort serves; the fix picks the same key in both workflows.
    return pair({"d0": 0}), pair({"d0": 0, "d1": 0})


def _w404(schema):
    v = _vfield(schema)

    def pair(coarse_agg):
        a = AggregationWorkflow(schema, "w404-a")
        a.basic("daily", _gran(schema, {"d0": 1}), agg=coarse_agg)
        b = AggregationWorkflow(schema, "w404-b")
        b.basic("hourly", _gran(schema, {"d0": 0}), agg=("sum", v))
        return {"a": a, "b": b}

    # sum at the coarse level is derivable by rolling up the other
    # workflow's finer sum; avg is not (not in the derivable table).
    return pair(("sum", v)), pair(("avg", v))


def _w405(schema):
    gran = _gran(schema, {"d0": 0})
    v = _vfield(schema)

    def pair(extra):
        a = AggregationWorkflow(schema, "w405-a")
        a.basic("x", gran, agg=("sum", v))
        if extra:
            a.basic("only-here", gran, agg=("count", "*"))
        b = AggregationWorkflow(schema, "w405-b")
        b.basic("y", gran, agg=("sum", v))
        b.rollup("z", _gran(schema, {"d0": 1}), source="y", agg="sum")
        return {"a": a, "b": b}

    # Every visible output of the first workflow is a rename of one in
    # the second; adding an output only the first computes breaks the
    # subsumption.
    return pair(False), pair(True)


_WORKLOAD_BUILDERS: dict[str, Callable] = {
    "CSM401": _w401,
    "CSM402": _w402,
    "CSM403": _w403,
    "CSM404": _w404,
    "CSM405": _w405,
}

#: Every workload-level code the mutation helper can trigger.
WORKLOAD_MUTANT_CODES: tuple[str, ...] = tuple(
    sorted(_WORKLOAD_BUILDERS)
)


def workload_mutant(
    code: str, schema: DatasetSchema
) -> dict[str, AggregationWorkflow]:
    """A minimal named workload whose workload report contains
    ``code``."""
    return _WORKLOAD_BUILDERS[code](schema)[0]


def workload_repaired(
    code: str, schema: DatasetSchema
) -> dict[str, AggregationWorkflow]:
    """The corrected workload: ``code`` absent from its report."""
    return _WORKLOAD_BUILDERS[code](schema)[1]


def clean_workflow(
    schema: DatasetSchema, name: str = "clean"
) -> AggregationWorkflow:
    """A small workflow with *zero* diagnostics of any severity."""
    wf = AggregationWorkflow(schema, name)
    wf.basic("perCell", _gran(schema, {"d0": 0, "d1": 0}),
             agg=("sum", _vfield(schema)))
    wf.rollup("daily", _gran(schema, {"d0": 0}), source="perCell",
              agg="avg")
    wf.moving_window("smooth", _gran(schema, {"d0": 0}),
                     source="daily", windows={"d0": (0, 2)})
    return wf
