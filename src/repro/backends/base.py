"""The ``SQLBackend`` interface and the shared DB-API execution path.

A backend owns one relational engine (stdlib ``sqlite3``, optionally
DuckDB) and runs a compiled workflow end to end: create the fact and
dimension lookup tables, bulk-load them, register combine-function
UDFs, execute one query per stored measure, and decode the result rows
back into :class:`~repro.storage.table.MeasureTable`\\ s keyed exactly
like the in-memory engines' output (full dimension width, ``ALL_VALUE``
in the slots the granularity holds at ALL) — which is what lets
``equal_rows`` compare backends row-for-row.

Both bundled engines speak enough of DB-API (``execute`` /
``executemany`` / ``fetchall``) that the whole evaluation loop lives
here; subclasses only provide :meth:`SQLBackend.connect` and
:meth:`SQLBackend.register_function`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expr import CombineFn
from repro.backends.compiler import (
    CompiledWorkflow,
    MeasureQuery,
    compile_workflow_sql,
    timed,
)
from repro.errors import BackendError
from repro.schema.domain import ALL_VALUE
from repro.storage.table import Dataset, MeasureTable
from repro.workflow.workflow import AggregationWorkflow


@dataclass
class SQLEvalResult:
    """Measure tables plus what could not run and how long the rest took.

    ``timings`` has one entry per executed measure (seconds for the
    query itself) plus ``"load"`` (schema creation and bulk insert).
    """

    engine: str
    tables: dict[str, MeasureTable] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, name: str) -> MeasureTable:
        return self.tables[name]


class SQLBackend:
    """One relational engine behind the workflow-execution interface."""

    name = "sql"

    #: The executable dialect the compiler should target; set by
    #: subclasses (:data:`repro.algebra.sql.SQLITE` / ``DUCKDB``).
    dialect = None

    def available_reason(self) -> str | None:
        """None when the engine can run here, else why it cannot."""
        return None

    def connect(self):
        """A fresh in-memory DB-API connection."""
        raise NotImplementedError

    def register_function(self, conn, name: str, arity: int, fn) -> None:
        """Expose a combine fn as a scalar UDF named ``name``."""
        raise NotImplementedError

    # -- the shared evaluation loop -------------------------------------

    def compile(
        self, workflow: AggregationWorkflow, strict: bool = False
    ) -> CompiledWorkflow:
        return compile_workflow_sql(
            workflow, dialect=self.dialect, strict=strict
        )

    def evaluate(
        self,
        dataset: Dataset,
        workflow: AggregationWorkflow,
        strict: bool = False,
    ) -> SQLEvalResult:
        """Run every stored measure of ``workflow`` on this engine.

        Measures without an executable SQL form are reported in
        ``result.skipped`` (or raised, with ``strict=True``) — see
        :func:`repro.backends.compiler.compile_workflow_sql`.
        """
        reason = self.available_reason()
        if reason is not None:
            raise BackendError(
                f"backend {self.name!r} unavailable: {reason}"
            )
        compiled = self.compile(workflow, strict=strict)
        result = SQLEvalResult(
            engine=self.name, skipped=dict(compiled.skipped)
        )
        conn = self.connect()
        try:
            __, result.timings["load"] = timed(
                self._load, conn, dataset, compiled
            )
            for name, (fn, arity) in compiled.functions.items():
                self.register_function(conn, name, arity, fn)
            for query in compiled.queries:
                rows, seconds = timed(self._fetch, conn, query.sql)
                result.tables[query.name] = self._decode_table(
                    query, rows
                )
                result.timings[query.name] = seconds
        finally:
            conn.close()
        return result

    def _load(
        self, conn, dataset: Dataset, compiled: CompiledWorkflow
    ) -> None:
        for statement in compiled.create_statements():
            conn.execute(statement)
        conn.executemany(
            compiled.insert_statement(),
            [tuple(record) for record in dataset.scan()],
        )
        for table, rows in compiled.lookup_rows(dataset).items():
            conn.executemany(
                f"INSERT INTO {table} VALUES (?, ?)", rows
            )

    def _fetch(self, conn, sql: str) -> list[tuple]:
        return conn.execute(sql).fetchall()

    def _decode_table(
        self, query: MeasureQuery, rows: list[tuple]
    ) -> MeasureTable:
        """SQL rows → a MeasureTable keyed like the in-memory engines.

        The query's ``SELECT`` emits the granularity's key columns in
        ascending dimension order, then ``M``; dimensions the
        granularity holds at ALL get the constant ``ALL_VALUE`` slot.
        SQL ``NULL`` comes back as Python ``None``, which is already
        the engines' empty-aggregate value — no mapping needed.
        """
        granularity = query.granularity
        key_dims = granularity.key_dims
        width = granularity.schema.num_dimensions
        expected = len(key_dims) + 1
        table_rows: dict[tuple, object] = {}
        for row in rows:
            if len(row) != expected:
                raise BackendError(
                    f"measure {query.name!r}: expected "
                    f"{expected}-column rows (keys + M), got {len(row)}"
                )
            key = [ALL_VALUE] * width
            for slot, dim in enumerate(key_dims):
                key[dim] = row[slot]
            table_rows[tuple(key)] = row[-1]
        return MeasureTable(
            query.name, granularity, rows=table_rows
        )


def _null_safe(fn: CombineFn):
    """Wrap a combine fn for UDF use.

    :class:`~repro.algebra.expr.CombineFn` already short-circuits NULL
    inputs unless the fn opted in via ``handles_null``; the wrapper
    just gives the engine a plain callable.
    """

    def call(*args):
        return fn(*args)

    return call
