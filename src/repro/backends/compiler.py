"""Workflow → executable-SQL compilation (the backend's front half).

:func:`compile_workflow_sql` turns a full multi-measure workflow into
one ``WITH`` query per *stored* (non-hidden) measure, plus everything a
relational engine needs to run them: ``CREATE TABLE`` statements for
the fact table and for the dimension lookup tables that materialize
the paper's ``GAMMA_*`` value-generalization calls as real joins, and
the combine functions that must be registered as UDFs.

Measures whose SQL has no executable form in the target dialect
(``median`` on sqlite, ``approx_distinct`` everywhere — see
:class:`repro.algebra.sql.SqlUnsupportedError`) are *skipped with a
reason* rather than compiled wrong; ``strict=True`` turns the first
skip into the raised error, naming the measure.  A measure that merely
*depends on* an unsupported aggregate is skipped too: each output
compiles its whole expression tree, so the offending sub-expression
fails the dependent query's own compilation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.expr import CombineFn
from repro.algebra.sql import (
    SqlDialect,
    SqlUnsupportedError,
    SQLITE,
    compile_sql,
    fact_columns,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import DatasetSchema
from repro.storage.table import Dataset
from repro.workflow.workflow import AggregationWorkflow


@dataclass
class MeasureQuery:
    """One stored measure's executable query."""

    name: str
    sql: str
    granularity: Granularity


@dataclass
class CompiledWorkflow:
    """A workflow lowered to SQL plus its runtime requirements."""

    schema: DatasetSchema
    fact_table: str
    dialect: SqlDialect
    queries: list[MeasureQuery] = field(default_factory=list)
    #: measure name -> human-readable reason it cannot run here.
    skipped: dict[str, str] = field(default_factory=dict)
    #: (dim, from_level, to_level) -> lookup table name.
    lookups: dict[tuple[int, int, int], str] = field(default_factory=dict)
    #: UDF name -> (combine fn, arity).
    functions: dict[str, tuple[CombineFn, int]] = field(
        default_factory=dict
    )

    def create_statements(self) -> list[str]:
        """DDL for the fact table and every needed lookup table."""
        columns = fact_columns(self.schema)
        parts = []
        for dim in self.schema.dimensions:
            parts.append(f"{columns[dim.name]} INTEGER")
        for measure in self.schema.measures:
            parts.append(
                f"{columns[measure]} {self.dialect.measure_type}"
            )
        statements = [
            f"CREATE TABLE {self.fact_table} ({', '.join(parts)})"
        ]
        for table in self.lookups.values():
            # src is unique: generalization is a function of the value.
            statements.append(
                f"CREATE TABLE {table} "
                f"(src INTEGER PRIMARY KEY, dst INTEGER)"
            )
        return statements

    def insert_statement(self) -> str:
        """Parameterized fact-row insert (DB-API ``?`` placeholders)."""
        width = (
            self.schema.num_dimensions + len(self.schema.measures)
        )
        marks = ", ".join("?" for __ in range(width))
        return f"INSERT INTO {self.fact_table} VALUES ({marks})"

    def lookup_rows(
        self, dataset: Dataset
    ) -> dict[str, list[tuple[int, int]]]:
        """Materialize every lookup table's rows from the dataset.

        A ``gamma_d<i>_<f>_<t>`` table holds one ``(src, dst)`` pair per
        distinct level-``f`` value of dimension ``i`` occurring in the
        data.  That is complete by construction: every value a compiled
        query can feed through the lookup derives from the dataset's
        base values via the same generalization chain.
        """
        needed = sorted(self.lookups)
        if not needed:
            return {}
        dims = sorted({dim for dim, __, __ in needed})
        base_values: dict[int, set[int]] = {dim: set() for dim in dims}
        for record in dataset.scan():
            for dim in dims:
                base_values[dim].add(record[dim])
        rows: dict[str, list[tuple[int, int]]] = {}
        for dim, from_level, to_level in needed:
            dimension = self.schema.dimensions[dim]
            pairs = {
                dimension.generalize(value, 0, from_level)
                for value in base_values[dim]
            }
            rows[self.lookups[(dim, from_level, to_level)]] = sorted(
                (src, dimension.generalize(src, from_level, to_level))
                for src in pairs
            )
        return rows


def compile_workflow_sql(
    workflow: AggregationWorkflow,
    dialect: SqlDialect = SQLITE,
    fact_table: str = "D",
    strict: bool = False,
) -> CompiledWorkflow:
    """Compile every stored measure of ``workflow`` for ``dialect``.

    With ``strict=False`` (the default) unsupported measures land in
    ``skipped`` with the reason; with ``strict=True`` the first one
    raises :class:`~repro.algebra.sql.SqlUnsupportedError` carrying the
    measure name.
    """
    compiled = CompiledWorkflow(
        schema=workflow.schema, fact_table=fact_table, dialect=dialect
    )
    exprs = workflow.to_algebra()
    for name in workflow.outputs():
        expr = exprs[name]
        try:
            result = compile_sql(
                expr,
                fact_table_name=fact_table,
                dialect=dialect,
                lookups=compiled.lookups,
                functions=compiled.functions,
            )
        except SqlUnsupportedError as exc:
            if strict:
                raise SqlUnsupportedError(
                    f"measure {name!r}: {exc}",
                    feature=exc.feature,
                    measure=name,
                ) from exc
            compiled.skipped[name] = str(exc)
            continue
        compiled.queries.append(
            MeasureQuery(
                name=name, sql=result.sql, granularity=expr.granularity
            )
        )
    return compiled


def timed(fn, *args):
    """(result, seconds) of ``fn(*args)`` — shared by the backends."""
    started = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - started
