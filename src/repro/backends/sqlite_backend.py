"""The always-available SQL engine: stdlib ``sqlite3``.

In-memory database per evaluation; CTEs cover the paper's Tables 2-4
translations directly.  Combine functions register as deterministic
scalar UDFs (sqlite passes SQL NULL through as Python ``None``, which
:class:`~repro.algebra.expr.CombineFn` already treats with SQL's NULL
semantics).  sqlite builds since 3.35 ship the math functions
(``sqrt``, needed by the ``stddev`` compilation); when a build without
them turns up, a Python fallback is registered instead of failing.
"""

from __future__ import annotations

import math
import sqlite3

from repro.algebra.sql import SQLITE
from repro.backends.base import SQLBackend, _null_safe


def _sqrt(value):
    if value is None or value < 0:
        return None
    return math.sqrt(value)


class SqliteBackend(SQLBackend):
    """Run compiled workflows on an in-memory stdlib sqlite3 database."""

    name = "sqlite"
    dialect = SQLITE

    def connect(self):
        """Open an in-memory database, with a ``sqrt`` UDF fallback
        for sqlite builds compiled without the math functions."""
        conn = sqlite3.connect(":memory:")
        try:
            conn.execute("SELECT sqrt(1.0)")
        except sqlite3.OperationalError:
            conn.create_function("sqrt", 1, _sqrt, deterministic=True)
        return conn

    def register_function(self, conn, name, arity, fn):
        """Register a combine fn as a deterministic scalar UDF."""
        conn.create_function(
            name, arity, _null_safe(fn), deterministic=True
        )
