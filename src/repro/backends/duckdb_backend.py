"""The optional second SQL engine: DuckDB.

DuckDB is deliberately *not* a dependency of this repo — the backend
activates only when the module is already importable, and everything
that touches it reports a reason instead of failing when it is absent
(mirroring the numpy gating in ``benchmarks/conftest.py``).  With
DuckDB present, holistic aggregates the sqlite dialect refuses
(``median``) compile to native forms, making the engine-vs-engine
comparison strictly wider.

UDF registration uses DOUBLE parameters with ``null_handling``
``"special"`` so combine functions see SQL NULL as Python ``None`` —
the same contract the in-memory engines and sqlite give them.
"""

from __future__ import annotations

from repro.algebra.sql import DUCKDB
from repro.backends.base import SQLBackend, _null_safe
from repro.errors import BackendError


def duckdb_unavailable_reason() -> str | None:
    """None when DuckDB can be used, else a skip-worthy reason."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return "duckdb is not importable in this environment"
    return None


class DuckDbBackend(SQLBackend):
    """Run compiled workflows on an in-memory DuckDB database."""

    name = "duckdb"
    dialect = DUCKDB

    def available_reason(self) -> str | None:
        """Delegate to :func:`duckdb_unavailable_reason`."""
        return duckdb_unavailable_reason()

    def connect(self):
        """Open an in-memory database, or raise with the absence reason."""
        reason = self.available_reason()
        if reason is not None:
            raise BackendError(f"backend 'duckdb' unavailable: {reason}")
        import duckdb

        return duckdb.connect(":memory:")

    def register_function(self, conn, name, arity, fn):
        """Register a combine fn as a NULL-aware scalar UDF."""
        from duckdb.typing import DOUBLE

        conn.create_function(
            name,
            _null_safe(fn),
            [DOUBLE] * arity,
            DOUBLE,
            null_handling="special",
        )
