"""Executable SQL backends (the paper's Tables 2-4, actually run).

``repro.backends`` closes the loop the paper opens: every AW-RA
operator is *defined* by an equivalent SQL query, and this package
loads a :class:`~repro.storage.table.Dataset` into a real relational
engine, executes the compiled translation of a full workflow, and
decodes the results back into ``MeasureTable`` form — making the
paper's own SQL semantics a third differential oracle next to the
in-memory engines (:mod:`repro.testkit.differential`).

Engines: ``sqlite`` (stdlib, always available) and ``duckdb``
(optional; skipped with a reason when not importable).
"""

from __future__ import annotations

from repro.backends.base import SQLBackend, SQLEvalResult
from repro.backends.compiler import (
    CompiledWorkflow,
    MeasureQuery,
    compile_workflow_sql,
)
from repro.backends.duckdb_backend import (
    DuckDbBackend,
    duckdb_unavailable_reason,
)
from repro.backends.sqlite_backend import SqliteBackend
from repro.errors import BackendError

_BACKENDS: dict[str, type[SQLBackend]] = {
    "sqlite": SqliteBackend,
    "duckdb": DuckDbBackend,
}

#: Engine names in registration order (CLI choices, bench sweeps).
ENGINE_NAMES = tuple(_BACKENDS)


def backend_unavailable_reason(engine: str) -> str | None:
    """None when ``engine`` exists and can run here, else the reason."""
    cls = _BACKENDS.get(engine)
    if cls is None:
        known = ", ".join(sorted(_BACKENDS))
        return f"unknown SQL engine {engine!r} (known: {known})"
    return cls().available_reason()


def get_backend(engine: str = "sqlite") -> SQLBackend:
    """A ready-to-use backend, or :class:`BackendError` with the reason."""
    reason = backend_unavailable_reason(engine)
    if reason is not None:
        raise BackendError(reason)
    return _BACKENDS[engine]()


__all__ = [
    "BackendError",
    "CompiledWorkflow",
    "DuckDbBackend",
    "ENGINE_NAMES",
    "MeasureQuery",
    "SQLBackend",
    "SQLEvalResult",
    "SqliteBackend",
    "backend_unavailable_reason",
    "compile_workflow_sql",
    "duckdb_unavailable_reason",
    "get_backend",
]
