"""Hierarchical tracing spans with a Chrome trace-event exporter.

The paper's evaluation (Section 6, Figures 6-7) is a cost *breakdown*:
where do the seconds go — sorting, scanning, flushing, which node?
This module records exactly that as spans: named, nested intervals
with attributes, emitted in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the ``chrome://tracing`` / Perfetto JSON), so a run can be *looked at*
instead of summarized into one wall-clock number.

Design constraints:

- **off by default, near-zero cost when off** — a disabled tracer's
  :meth:`Tracer.span` returns one shared no-op context manager and
  records nothing;
- **cross-process mergeable** — every event carries its ``pid``/``tid``
  and a wall-clock-aligned microsecond timestamp, so events shipped
  back from shared-nothing worker processes interleave correctly when
  absorbed into the parent's tracer (:meth:`Tracer.absorb`);
- **bounded** — a ``max_events`` cap guards against a pathological
  span-per-cascade run exhausting memory; overflow is counted, not
  silently ignored.

Spans nest lexically (``with tracer.span("sort"): ...``); the exporter
does not need an explicit parent pointer because the Chrome viewer
derives nesting from interval containment per thread lane.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **args) -> None:
        """Discard attributes (the disabled-tracing fast path)."""


NULL_SPAN = _NullSpan()


class Span:
    """One live interval; records a complete ("X") event when it exits."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = time.perf_counter()

    def set(self, **args) -> None:
        """Attach attributes to the span (shown in the trace viewer)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.add_complete(
            self.name,
            self.cat,
            start_perf=self._start,
            duration=time.perf_counter() - self._start,
            args=self.args,
        )


class Tracer:
    """Collects trace events; one per process (see :mod:`repro.obs`).

    Args:
        enabled: Record spans; when False every :meth:`span` call
            returns the shared no-op span.
        max_events: Hard cap on retained events; events past the cap
            are dropped and counted in :attr:`dropped`.
    """

    def __init__(self, enabled: bool = False, max_events: int = 200_000):
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        # Wall-aligned monotonic clock: timestamps are
        # (wall epoch + monotonic offset), so they are strictly ordered
        # within the process yet comparable across processes.
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    # -- recording -----------------------------------------------------

    def _timestamp_us(self, at_perf: float) -> int:
        return int(
            (self._epoch_wall + (at_perf - self._epoch_perf)) * 1_000_000
        )

    def span(self, name: str, cat: str = "", **args):
        """A context manager recording one complete event on exit."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def add_complete(
        self,
        name: str,
        cat: str = "",
        start_perf: float | None = None,
        duration: float = 0.0,
        args: dict | None = None,
    ) -> None:
        """Record one already-measured interval (the hot-path API).

        ``start_perf`` is a ``time.perf_counter()`` reading; when
        omitted the interval is taken to end now.
        """
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        if start_perf is None:
            start_perf = time.perf_counter() - duration
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "X",
            "ts": self._timestamp_us(start_perf),
            "dur": max(0, int(duration * 1_000_000)),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration instant event."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "i",
            "s": "t",
            "ts": self._timestamp_us(time.perf_counter()),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- merging / export ----------------------------------------------

    def absorb(self, events: list) -> None:
        """Merge events shipped from another process (or tracer).

        Worker events already carry their own ``pid``/``tid`` and
        wall-aligned timestamps, so absorption is a plain append; the
        cap still applies.
        """
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped += len(events) - events.index(event)
                break
            self.events.append(event)

    def take_events(self) -> list[dict]:
        """Drain and return the recorded events (used by workers)."""
        events, self.events = self.events, []
        return events

    def reset(self) -> None:
        """Drop all recorded events and the overflow counter."""
        self.events = []
        self.dropped = 0

    def export(self) -> dict:
        """The Chrome trace JSON object (``{"traceEvents": [...]}``)."""
        return {
            "traceEvents": sorted(
                self.events, key=lambda e: (e["pid"], e["tid"], e["ts"])
            ),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "dropped": self.dropped},
        }

    def write(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        payload = self.export()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return len(payload["traceEvents"])
