"""Hierarchical tracing spans with a Chrome trace-event exporter.

The paper's evaluation (Section 6, Figures 6-7) is a cost *breakdown*:
where do the seconds go — sorting, scanning, flushing, which node?
This module records exactly that as spans: named, nested intervals
with attributes, emitted in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the ``chrome://tracing`` / Perfetto JSON), so a run can be *looked at*
instead of summarized into one wall-clock number.

Design constraints:

- **off by default, near-zero cost when off** — a disabled tracer's
  :meth:`Tracer.span` returns one shared no-op context manager and
  records nothing;
- **cross-process mergeable** — every event carries its ``pid``/``tid``
  and a wall-clock-aligned microsecond timestamp, so events shipped
  back from shared-nothing worker processes interleave correctly when
  absorbed into the parent's tracer (:meth:`Tracer.absorb`);
- **bounded** — a ``max_events`` cap guards against a pathological
  span-per-cascade run exhausting memory; overflow is counted, not
  silently ignored.

Spans nest lexically (``with tracer.span("sort"): ...``); the exporter
does not need an explicit parent pointer because the Chrome viewer
derives nesting from interval containment per thread lane.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.obs import context as _context

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "events_for_trace",
    "span_tree",
    "render_span_tree",
]


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **args) -> None:
        """Discard attributes (the disabled-tracing fast path)."""


NULL_SPAN = _NullSpan()


class Span:
    """One live interval; records a complete ("X") event when it exits.

    When a :class:`~repro.obs.context.TraceContext` is active on
    entry, the span allocates a child context (fresh span id, parented
    on the active one) and installs it for the span's dynamic extent,
    so nested spans — including those opened in shard worker processes
    that received the context over the pipe — chain into one tree.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_ctx",
                 "_token")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._ctx = None
        self._token = None
        self._start = time.perf_counter()

    def set(self, **args) -> None:
        """Attach attributes to the span (shown in the trace viewer)."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        parent = _context.current_context()
        if parent is not None:
            self._ctx = parent.child()
            self._token = _context._set(self._ctx)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _context._reset(self._token)
        trace_ids = self._ctx.ids() if self._ctx is not None else None
        self._tracer.add_complete(
            self.name,
            self.cat,
            start_perf=self._start,
            duration=time.perf_counter() - self._start,
            args=self.args,
            trace_ids=trace_ids,
        )


class Tracer:
    """Collects trace events; one per process (see :mod:`repro.obs`).

    Args:
        enabled: Record spans; when False every :meth:`span` call
            returns the shared no-op span.
        max_events: Hard cap on retained events; events past the cap
            are dropped and counted in :attr:`dropped`.
    """

    def __init__(self, enabled: bool = False, max_events: int = 200_000):
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        # Wall-aligned monotonic clock: timestamps are
        # (wall epoch + monotonic offset), so they are strictly ordered
        # within the process yet comparable across processes.
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    # -- recording -----------------------------------------------------

    def _timestamp_us(self, at_perf: float) -> int:
        return int(
            (self._epoch_wall + (at_perf - self._epoch_perf)) * 1_000_000
        )

    def span(self, name: str, cat: str = "", **args):
        """A context manager recording one complete event on exit."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def add_complete(
        self,
        name: str,
        cat: str = "",
        start_perf: float | None = None,
        duration: float = 0.0,
        args: dict | None = None,
        trace_ids: dict | None = None,
    ) -> None:
        """Record one already-measured interval (the hot-path API).

        ``start_perf`` is a ``time.perf_counter()`` reading; when
        omitted the interval is taken to end now.  ``trace_ids`` is
        the :meth:`TraceContext.ids` triple; when omitted and a trace
        context is active, the interval is recorded as a leaf span
        under the current context (a fresh span id parented there).
        """
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        if trace_ids is None:
            ctx = _context.current_context()
            if ctx is not None:
                trace_ids = ctx.child().ids()
        if start_perf is None:
            start_perf = time.perf_counter() - duration
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "X",
            "ts": self._timestamp_us(start_perf),
            "dur": max(0, int(duration * 1_000_000)),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if trace_ids:
            args = {**(args or {}), **trace_ids}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, cat: str = "", **args) -> None:
        """Record a zero-duration instant event."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        ctx = _context.current_context()
        if ctx is not None:
            args = {**args, **ctx.ids()}
        event = {
            "name": name,
            "cat": cat or "repro",
            "ph": "i",
            "s": "t",
            "ts": self._timestamp_us(time.perf_counter()),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- merging / export ----------------------------------------------

    def absorb(self, events: list) -> None:
        """Merge events shipped from another process (or tracer).

        Worker events already carry their own ``pid``/``tid`` and
        wall-aligned timestamps, so absorption is a plain append; the
        cap still applies.
        """
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped += len(events) - events.index(event)
                break
            self.events.append(event)

    def take_events(self) -> list[dict]:
        """Drain and return the recorded events (used by workers)."""
        events, self.events = self.events, []
        return events

    def reset(self) -> None:
        """Drop all recorded events and the overflow counter."""
        self.events = []
        self.dropped = 0

    def export(self) -> dict:
        """The Chrome trace JSON object (``{"traceEvents": [...]}``)."""
        return {
            "traceEvents": sorted(
                self.events, key=lambda e: (e["pid"], e["tid"], e["ts"])
            ),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "dropped": self.dropped},
        }

    def write(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        payload = self.export()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return len(payload["traceEvents"])

    def events_for_trace(self, trace_id: str) -> list[dict]:
        """Events stamped with ``trace_id`` (see :mod:`repro.obs.context`)."""
        return events_for_trace(self.events, trace_id)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids present in the recorded events."""
        seen: dict[str, None] = {}
        for event in self.events:
            tid = event.get("args", {}).get("trace_id")
            if tid:
                seen.setdefault(tid, None)
        return list(seen)


# -- trace-tree reassembly ---------------------------------------------


def events_for_trace(events: list[dict], trace_id: str) -> list[dict]:
    """Filter a Chrome-trace event list down to one trace id."""
    return [
        event
        for event in events
        if event.get("args", {}).get("trace_id") == trace_id
    ]


def span_tree(events: list[dict]) -> list[dict]:
    """Reassemble span events into a forest of ``{event, children}``.

    Works across processes: parent/child linkage uses the
    ``span_id``/``parent_id`` stamps from :mod:`repro.obs.context`,
    not interval containment, so spans recorded in different shard
    worker processes hang under the router span that dispatched them.
    Spans whose parent id has no recorded event become roots (e.g. the
    request context itself records no event of its own).  Events
    without a span id (instants, unstamped intervals) are skipped.
    """
    nodes: dict[str, dict] = {}
    ordered: list[dict] = []
    for event in sorted(events, key=lambda e: e.get("ts", 0)):
        span_id = event.get("args", {}).get("span_id")
        if not span_id or event.get("ph") != "X":
            continue
        node = {"event": event, "children": []}
        # First event wins on a duplicated id (absorb ran twice).
        if span_id not in nodes:
            nodes[span_id] = node
            ordered.append(node)
    roots = []
    for node in ordered:
        parent_id = node["event"].get("args", {}).get("parent_id")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def render_span_tree(events: list[dict]) -> list[str]:
    """Text rendering of :func:`span_tree` (CLI and /debug/trace)."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        event = node["event"]
        dur_ms = event.get("dur", 0) / 1000.0
        lines.append(
            f"{'  ' * depth}{event['name']}  "
            f"[{dur_ms:.3f} ms, pid={event.get('pid')}]"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(events):
        walk(root, 0)
    return lines
