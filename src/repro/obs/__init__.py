"""``repro.obs`` — the unified, dependency-free telemetry layer.

Three pillars, all stdlib-only:

- :mod:`repro.obs.trace` — hierarchical spans with a Chrome
  trace-event JSON exporter (``repro trace run …``, ``--trace``);
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms, rendered as Prometheus text
  (the service's ``/metrics`` route) or JSON;
- :mod:`repro.obs.profile` — per-workflow-node timing/footprint rows
  (``repro profile``).

This module owns the *process-wide singletons*: one tracer and one
metrics registry per process.  Tracing is **off by default** and costs
one attribute check per instrumented site when off; the metrics
registry is always live, but is only touched at coarse boundaries
(once per engine run, per ingest, per query — never per record).

Set the ``REPRO_TELEMETRY`` environment variable (``1``/``true``/
``on``) to force tracing on process-wide — CI runs the test suite once
in this mode to catch instrumentation regressions.
"""

from __future__ import annotations

import os

from repro.obs.context import (
    RequestStats,
    TraceContext,
    current_context,
    new_context,
    use_context,
)
from repro.obs.metrics import MetricsRegistry, publish_eval_stats
from repro.obs.profile import NodeProfile, format_node_table
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    render_span_tree,
    span_tree,
)

__all__ = [
    "Tracer",
    "Span",
    "NULL_SPAN",
    "MetricsRegistry",
    "NodeProfile",
    "TraceContext",
    "RequestStats",
    "current_context",
    "new_context",
    "use_context",
    "span_tree",
    "render_span_tree",
    "format_node_table",
    "publish_eval_stats",
    "get_tracer",
    "get_registry",
    "set_tracing",
    "tracing_enabled",
    "telemetry_forced",
    "reset_registry",
]

_TRUTHY = ("1", "true", "yes", "on")


def telemetry_forced() -> bool:
    """True when ``REPRO_TELEMETRY`` force-enables tracing."""
    return os.environ.get("REPRO_TELEMETRY", "").lower() in _TRUTHY


_tracer = Tracer(enabled=telemetry_forced())
_registry = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_tracing(enabled: bool) -> None:
    """Turn span recording on or off process-wide."""
    _tracer.enabled = bool(enabled)


def tracing_enabled() -> bool:
    """Whether the process-wide tracer is currently recording."""
    return _tracer.enabled


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh registry (worker processes and test isolation)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
