"""Per-workflow-node profiling: where a sort/scan pass spends itself.

The paper's Figure 6(e) splits cost into sort vs. scan; a workflow
author wants one level finer — *which node* of the evaluation graph
accounts for the flushing time, which node's hash table dominates the
footprint, how often the watermark actually advanced.  The sort/scan
engine fills one :class:`NodeProfile` per graph node when constructed
with ``profile=True``; the rows land in ``EvalStats.nodes`` (as plain
dicts, so they serialize with the stats) and render as a table via
:func:`format_node_table` — the ``repro profile`` subcommand.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from collections.abc import Iterable

__all__ = ["NodeProfile", "format_node_table"]


@dataclass
class NodeProfile:
    """Counters for one evaluation-graph node across one pass."""

    name: str
    kind: str = ""
    #: Deliveries into the node: matched records for basic nodes,
    #: propagated entries along in-arcs for composite/combine nodes.
    rows_in: int = 0
    #: Finalized entries emitted by the node.
    rows_out: int = 0
    #: Flush-cascade visits that reached this node.
    flushes: int = 0
    #: Seconds spent inside this node's flush work.
    flush_seconds: float = 0.0
    #: Largest resident entry count observed for the node.
    peak_entries: int = 0
    #: Cascades at which the node's watermark bound advanced — a
    #: direct read on how well the sort order serves this node.
    bound_advances: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NodeProfile":
        return cls(**data)


def format_node_table(rows: Iterable[dict]) -> str:
    """Render profile dicts as the fixed-width table the CLI prints."""
    rows = list(rows)
    header = (
        f"{'node':<20} {'kind':<9} {'rows-in':>10} {'rows-out':>10} "
        f"{'flushes':>8} {'flush-s':>9} {'peak':>8} {'advances':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.get('name', '?'):<20} {row.get('kind', ''):<9} "
            f"{row.get('rows_in', 0):>10} {row.get('rows_out', 0):>10} "
            f"{row.get('flushes', 0):>8} "
            f"{row.get('flush_seconds', 0.0):>9.4f} "
            f"{row.get('peak_entries', 0):>8} "
            f"{row.get('bound_advances', 0):>9}"
        )
    if not rows:
        lines.append("(no per-node profile recorded)")
    return "\n".join(lines)
