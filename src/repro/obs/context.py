"""Request-scoped trace context: one identity for every hop.

A request that enters the sharded service fans out across router
threads and shard worker *processes*; without a shared identity the
spans each process records are disconnected intervals.  This module
defines that identity — :class:`TraceContext` — and the plumbing that
moves it around:

- **W3C-style encoding**: :meth:`TraceContext.traceparent` renders the
  ``00-<trace>-<span>-01`` header accepted and emitted by both HTTP
  front ends, so an external caller's trace continues through us;
- **contextvars propagation**: :func:`current_context` /
  :func:`use_context` track the active context per thread *and* per
  asyncio task; spans opened while a context is active allocate a
  child span id under it (see :mod:`repro.obs.trace`), which is what
  turns a flat event list into a tree;
- **pipe transport**: :meth:`to_dict` / :meth:`from_dict` are the wire
  form that rides each length-prefixed shard-worker message, so worker
  spans carry the originating request's trace id and reassemble into
  one tree when absorbed by the router;
- **per-request stats**: every context carries a mutable
  :class:`RequestStats` (shard fan-out count, queue wait, engine
  profile captures) that the access/slow-query logs read after the
  request finishes.

Everything here is stdlib-only and cheap: creating a context is two
``os.urandom`` calls; propagation is one ``ContextVar`` set/reset.
"""

from __future__ import annotations

import contextlib
import os
import re
from contextvars import ContextVar

__all__ = [
    "TraceContext",
    "RequestStats",
    "current_context",
    "new_context",
    "use_context",
    "parse_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})"
    r"-(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)

_current: ContextVar["TraceContext | None"] = ContextVar(
    "repro_trace_context", default=None
)


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def _new_request_id() -> str:
    return os.urandom(8).hex()


class RequestStats:
    """Mutable per-request bookkeeping shared by every hop in-process.

    The front end creates one per request; the router and shard
    handles increment it through :func:`current_context`, and the
    access/slow-query log reads it once the request completes.  Worker
    processes get a fresh (discarded) instance — their contribution
    comes back as spans, not counters.
    """

    __slots__ = ("fanout", "queue_wait_seconds", "engine_runs")

    def __init__(self) -> None:
        #: Shard operations dispatched on behalf of this request.
        self.fanout = 0
        #: Seconds the request sat queued for an executor thread.
        self.queue_wait_seconds = 0.0
        #: Per-engine-run stat captures (dicts; see Engine.evaluate).
        self.engine_runs: list[dict] = []

    def to_dict(self) -> dict:
        return {
            "fanout": self.fanout,
            "queue_wait_seconds": self.queue_wait_seconds,
            "engine_runs": list(self.engine_runs),
        }


class TraceContext:
    """One hop's identity within a trace.

    ``trace_id`` names the whole request tree; ``span_id`` names this
    hop (the parent of any span opened while the context is active);
    ``parent_id`` names the hop one level up (empty at the root);
    ``request_id`` is the operator-facing correlation token stamped on
    HTTP responses and log lines.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "request_id", "stats")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str = "",
        request_id: str = "",
        stats: RequestStats | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id or _new_request_id()
        self.stats = stats if stats is not None else RequestStats()

    def child(self) -> "TraceContext":
        """A new hop under this one (same trace, same request, shared
        stats; fresh span id parented here)."""
        return TraceContext(
            self.trace_id,
            _new_span_id(),
            parent_id=self.span_id,
            request_id=self.request_id,
            stats=self.stats,
        )

    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this hop."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def ids(self) -> dict:
        """The id triple stamped into span event args."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            out["parent_id"] = self.parent_id
        return out

    # -- pipe transport ------------------------------------------------

    def to_dict(self) -> dict:
        """Wire form for shard-worker pipes (stats stay local)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            data["trace_id"],
            data["span_id"],
            parent_id=data.get("parent_id", ""),
            request_id=data.get("request_id", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace={self.trace_id[:8]}… "
            f"span={self.span_id} req={self.request_id})"
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse an incoming ``traceparent`` header, or ``None``.

    Malformed headers are ignored (a broken upstream must not break
    the request); version ``ff`` is invalid per the W3C spec.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None or match.group("version") == "ff":
        return None
    return TraceContext(match.group("trace"), match.group("span"))


def new_context(
    traceparent: str | None = None, request_id: str = ""
) -> TraceContext:
    """The context for one incoming request.

    Continues the caller's trace when a valid ``traceparent`` header
    is supplied (the caller's span becomes our parent); otherwise
    starts a fresh trace.
    """
    parent = parse_traceparent(traceparent)
    if parent is not None:
        ctx = parent.child()
        if request_id:
            ctx.request_id = request_id
        return ctx
    return TraceContext(
        _new_trace_id(), _new_span_id(), request_id=request_id
    )


def current_context() -> TraceContext | None:
    """The active context of this thread/task (``None`` outside one)."""
    return _current.get()


@contextlib.contextmanager
def use_context(ctx: TraceContext | None):
    """Install ``ctx`` as the current context for a ``with`` block."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def _set(ctx: TraceContext | None):
    """Low-level set; returns the reset token (span enter/exit path)."""
    return _current.set(ctx)


def _reset(token) -> None:
    _current.reset(token)
