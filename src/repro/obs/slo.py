"""Per-tenant SLO objectives and multi-window burn-rate gauges.

An *objective* is the fraction of requests that must be good over a
compliance period — availability ("99.9% of requests succeed") or a
latency threshold ("99% of requests finish within 250 ms").  The
operational signal derived from it is the **burn rate** (Google SRE
workbook, ch. 5): the ratio between the observed bad-request fraction
in a recent window and the error budget ``1 - target``.  A burn rate
of 1.0 spends the budget exactly at the sustainable pace; 14.4 over
one hour exhausts a 30-day budget in two days — page someone.

:class:`SLOTracker` keeps a ring of coarse time buckets per tenant
(10 s wide by default) and computes the burn rate over several rolling
windows (5 m / 1 h / 6 h by default) on scrape, exporting one
``repro_slo_burn_rate{slo=...,window=...,tenant=...}`` gauge sample
per (objective, window, tenant).  Recording a request is O(1) and
lock-cheap; nothing is computed until :meth:`export`.

Objectives are configurable as ``name:kind:target[:threshold]`` specs
(:func:`parse_objectives`) — e.g. ``REPRO_SLO=availability:ratio:
0.999,latency:latency:0.99:0.25`` — so deployments can tune targets
without code changes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import (
    SLO_BAD_REQUESTS,
    SLO_BURN_RATE,
    SLO_GOOD_REQUESTS,
    MetricsRegistry,
)

__all__ = [
    "Objective",
    "SLOTracker",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WINDOWS",
    "parse_objectives",
]


@dataclass(frozen=True)
class Objective:
    """One service-level objective.

    ``kind`` is ``"ratio"`` (a request is bad when it errored) or
    ``"latency"`` (bad when it errored *or* exceeded ``threshold``
    seconds).  ``target`` is the good fraction the SLO promises.
    """

    name: str
    kind: str
    target: float
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.kind == "latency" and self.threshold <= 0.0:
            raise ValueError(
                f"latency SLO {self.name!r} needs a positive threshold"
            )

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the SLO tolerates."""
        return 1.0 - self.target

    def is_bad(self, seconds: float, error: bool) -> bool:
        if error:
            return True
        return self.kind == "latency" and seconds > self.threshold


DEFAULT_OBJECTIVES = (
    Objective("availability", "ratio", 0.999),
    Objective("latency-250ms", "latency", 0.99, 0.25),
)

#: Burn-rate windows, label -> seconds (multi-window alerting pairs).
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0), ("6h", 21600.0))


def parse_objectives(spec: str) -> tuple[Objective, ...]:
    """Parse ``name:kind:target[:threshold][,...]`` objective specs."""
    objectives = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"malformed SLO spec {chunk!r}; expected "
                "name:kind:target[:threshold]"
            )
        name, kind, target = parts[0], parts[1], float(parts[2])
        threshold = float(parts[3]) if len(parts) == 4 else 0.0
        objectives.append(Objective(name, kind, target, threshold))
    if not objectives:
        raise ValueError(f"no objectives in SLO spec {spec!r}")
    return tuple(objectives)


class _Bucket:
    """One coarse time slice of one tenant's request stream."""

    __slots__ = ("start", "total", "bad")

    def __init__(self, start: float, objectives) -> None:
        self.start = start
        self.total = 0
        self.bad = {objective.name: 0 for objective in objectives}


class SLOTracker:
    """Rolling per-tenant good/bad accounting with burn-rate export."""

    def __init__(
        self,
        objectives=DEFAULT_OBJECTIVES,
        windows=DEFAULT_WINDOWS,
        bucket_seconds: float = 10.0,
        clock=time.monotonic,
    ) -> None:
        self.objectives = tuple(objectives)
        self.windows = tuple(windows)
        self.bucket_seconds = float(bucket_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, list[_Bucket]] = {}
        #: Monotonic lifetime totals per (tenant, objective): [good, bad].
        self._cumulative: dict[tuple, list] = {}
        # Retain just enough history to cover the longest window.
        self._horizon = max(seconds for __, seconds in self.windows)

    # -- recording -----------------------------------------------------

    def record(
        self, tenant: str, seconds: float, error: bool = False
    ) -> None:
        """Account one finished request for ``tenant``."""
        now = self._clock()
        start = now - (now % self.bucket_seconds)
        with self._lock:
            buckets = self._buckets.setdefault(tenant, [])
            if not buckets or buckets[-1].start != start:
                buckets.append(_Bucket(start, self.objectives))
                self._prune(buckets, now)
            bucket = buckets[-1]
            bucket.total += 1
            for objective in self.objectives:
                entry = self._cumulative.setdefault(
                    (tenant, objective.name), [0, 0]
                )
                if objective.is_bad(seconds, error):
                    bucket.bad[objective.name] += 1
                    entry[1] += 1
                else:
                    entry[0] += 1

    def _prune(self, buckets: list[_Bucket], now: float) -> None:
        cutoff = now - self._horizon - self.bucket_seconds
        while buckets and buckets[0].start < cutoff:
            buckets.pop(0)

    # -- querying ------------------------------------------------------

    def burn_rates(self, tenant: str | None = None) -> dict:
        """``{(tenant, objective, window): burn_rate}`` for current data.

        The burn rate is ``bad_fraction / error_budget`` over the
        window; 0.0 when the window saw no traffic.
        """
        now = self._clock()
        with self._lock:
            tenants = (
                [tenant] if tenant is not None else list(self._buckets)
            )
            out = {}
            for name in tenants:
                buckets = self._buckets.get(name, [])
                for label, seconds in self.windows:
                    cutoff = now - seconds
                    total = 0
                    bad = {o.name: 0 for o in self.objectives}
                    for bucket in buckets:
                        if bucket.start + self.bucket_seconds < cutoff:
                            continue
                        total += bucket.total
                        for key, count in bucket.bad.items():
                            bad[key] += count
                    for objective in self.objectives:
                        rate = 0.0
                        if total:
                            rate = (
                                bad[objective.name] / total
                            ) / objective.budget
                        out[(name, objective.name, label)] = rate
            return out

    def status(self) -> dict:
        """JSON-friendly snapshot for ``/statusz`` and ``repro obs slo``."""
        rates = self.burn_rates()
        out: dict = {
            "objectives": [
                {
                    "name": o.name,
                    "kind": o.kind,
                    "target": o.target,
                    **(
                        {"threshold_seconds": o.threshold}
                        if o.kind == "latency"
                        else {}
                    ),
                }
                for o in self.objectives
            ],
            "windows": [label for label, __ in self.windows],
            "burn_rates": {},
        }
        for (tenant, objective, window), rate in sorted(rates.items()):
            out["burn_rates"].setdefault(tenant, {}).setdefault(
                objective, {}
            )[window] = round(rate, 4)
        return out

    # -- export --------------------------------------------------------

    def export(self, registry: MetricsRegistry) -> None:
        """Publish burn-rate gauges and good/bad counters on scrape."""
        gauge = registry.gauge(
            SLO_BURN_RATE,
            "Error-budget burn rate per objective and window "
            "(1.0 spends the budget exactly at the sustainable pace)",
            labelnames=("tenant", "slo", "window"),
        )
        for (tenant, slo, window), rate in self.burn_rates().items():
            gauge.labels(tenant=tenant, slo=slo, window=window).set(rate)
        good = registry.counter(
            SLO_GOOD_REQUESTS,
            "Requests meeting each objective since process start",
            labelnames=("tenant", "slo"),
        )
        bad = registry.counter(
            SLO_BAD_REQUESTS,
            "Requests violating each objective since process start",
            labelnames=("tenant", "slo"),
        )
        with self._lock:
            totals = {
                key: tuple(entry)
                for key, entry in self._cumulative.items()
            }
        for (tenant, slo), (good_count, bad_count) in totals.items():
            good_child = good.labels(tenant=tenant, slo=slo)
            bad_child = bad.labels(tenant=tenant, slo=slo)
            # The registry counters are additive across merges, so
            # publish only the delta since the previous export.
            good_delta = good_count - good_child.value
            bad_delta = bad_count - bad_child.value
            if good_delta > 0:
                good_child.inc(good_delta)
            if bad_delta > 0:
                bad_child.inc(bad_delta)
