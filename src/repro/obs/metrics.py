"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Dependency-free, Prometheus-flavoured metrics.  Every long-lived
component of the system — engines (via
:func:`publish_eval_stats`), the measure store's commit path, the
ingestor, the query service, and the HTTP front end — publishes into
one process-wide registry, which renders as the Prometheus text
exposition format (the ``/metrics`` route) or as JSON (the CLI's
``--metrics-json``).

Cross-process semantics: a registry serializes with :meth:`to_dict`
and merges with :meth:`MetricsRegistry.merge_dict` — counters and
histogram buckets *add* (work done is work done, whichever process
did it), gauges take the *maximum* (every gauge in this system is a
peak or a monotone level: peak hash-table entries, store generation,
segment count), which is the honest footprint figure for
shared-nothing workers that each pay their own peak in their own
address space.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "publish_eval_stats",
]

#: Default histogram buckets for second-valued latencies: 1 ms .. 60 s.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# -- canonical metric names (shared by publishers and scrapers) ------------

ENGINE_RUNS = "repro_engine_runs_total"
ENGINE_ROWS = "repro_engine_rows_scanned_total"
ENGINE_SORT_SECONDS = "repro_engine_sort_seconds_total"
ENGINE_SCAN_SECONDS = "repro_engine_scan_seconds_total"
ENGINE_FLUSHED = "repro_engine_flushed_entries_total"
ENGINE_RUN_SECONDS = "repro_engine_run_seconds"
ENGINE_PEAK_ENTRIES = "repro_engine_peak_entries"
STORE_GENERATION = "repro_store_generation"
STORE_SEGMENTS = "repro_store_segments"
STORE_FACTS = "repro_store_facts"
STORE_COMMIT_SECONDS = "repro_store_commit_seconds"
INGEST_BATCHES = "repro_ingest_batches_total"
INGEST_RECORDS = "repro_ingest_records_total"
INGEST_COMMIT_SECONDS = "repro_ingest_commit_seconds"
QUERY_CACHE_HITS = "repro_query_cache_hits_total"
QUERY_CACHE_MISSES = "repro_query_cache_misses_total"
QUERY_SECONDS = "repro_query_seconds"
HTTP_REQUESTS = "repro_http_requests_total"
SINK_EMITTED = "repro_sink_emitted_total"
FAILPOINT_TRIGGERS = "repro_failpoint_triggers_total"
CLUSTER_REQUESTS = "repro_cluster_requests_total"
CLUSTER_QUERY_SECONDS = "repro_cluster_query_seconds"
CLUSTER_INGEST_SECONDS = "repro_cluster_ingest_seconds"
CLUSTER_EPOCH = "repro_cluster_epoch"
SHARD_OPS = "repro_shard_ops_total"
SHARD_OP_SECONDS = "repro_shard_op_seconds"
WORKER_RESPAWNS = "repro_cluster_worker_respawns_total"
WORKER_TELEMETRY_DROPPED = (
    "repro_cluster_worker_telemetry_dropped_total"
)
ADMISSION_REJECTS = "repro_admission_rejections_total"
HTTP_REQUEST_SECONDS = "repro_http_request_seconds"
SLO_BURN_RATE = "repro_slo_burn_rate"
SLO_BAD_REQUESTS = "repro_slo_bad_requests_total"
SLO_GOOD_REQUESTS = "repro_slo_good_requests_total"
OBS_LOG_ERRORS = "repro_obs_log_errors_total"
SLOW_QUERIES = "repro_slow_queries_total"


class _Metric:
    """Common shape: a named family with zero or more labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple, _Metric] = {}
        if self.labelnames:
            # A labelled family is only a container; samples live on
            # children obtained through labels().
            self._active = False
        else:
            self._active = True

    def labels(self, **labelvalues) -> "_Metric":
        """The child sample for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help)
                self._init_child(child)
                self._children[key] = child
            return child

    def _init_child(self, child: "_Metric") -> None:
        """Hook for subclasses that carry configuration (buckets)."""

    def _samples(self) -> Iterable[tuple[tuple, "_Metric"]]:
        if self._active:
            yield (), self
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            yield key, child

    def _label_text(self, key: tuple, extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format escaping for label values.

    The text format (version 0.0.4) requires backslash, double-quote,
    and newline to be escaped inside label values; nothing else is.
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._label_text(key)} "
            f"{_format_value(child._value)}"
            for key, child in self._samples()
        ]

    def dump(self) -> dict:
        return {
            key: child._value for key, child in self._samples()
        }

    def merge_sample(self, key: tuple, data: float) -> None:
        target = self if not key else self.labels(
            **dict(zip(self.labelnames, key))
        )
        with target._lock:
            target._value += data


class Gauge(_Metric):
    """A level; merged across processes by maximum (peak semantics)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=(), fn: Callable | None = None):
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if higher (peak tracking)."""
        with self._lock:
            self._value = max(self._value, float(value))

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._label_text(key)} "
            f"{_format_value(child.value)}"
            for key, child in self._samples()
        ]

    def dump(self) -> dict:
        return {key: child.value for key, child in self._samples()}

    def merge_sample(self, key: tuple, data: float) -> None:
        target = self if not key else self.labels(
            **dict(zip(self.labelnames, key))
        )
        target.set_max(data)


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative buckets, Prometheus-style)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"{self.name}: need at least one bucket")
        self.bounds = bounds
        # counts[i] counts observations <= bounds[i]; the +Inf bucket
        # is implicit (== count).
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def _init_child(self, child: "Histogram") -> None:
        child.bounds = self.bounds
        child._counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def render(self) -> list[str]:
        lines = []
        for key, child in self._samples():
            # _counts is already cumulative (observe increments every
            # bucket whose bound covers the value).
            for bound, bucket in zip(child.bounds, child._counts):
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{self._label_text(key, le)} "
                    f"{bucket}"
                )
            inf_label = self._label_text(key, 'le="+Inf"')
            lines.append(
                f"{self.name}_bucket{inf_label} {child._count}"
            )
            lines.append(
                f"{self.name}_sum{self._label_text(key)} "
                f"{_format_value(child._sum)}"
            )
            lines.append(
                f"{self.name}_count{self._label_text(key)} {child._count}"
            )
        return lines

    def dump(self) -> dict:
        return {
            key: {
                "buckets": list(child._counts),
                "sum": child._sum,
                "count": child._count,
            }
            for key, child in self._samples()
        }

    def merge_sample(self, key: tuple, data: dict) -> None:
        target = self if not key else self.labels(
            **dict(zip(self.labelnames, key))
        )
        with target._lock:
            counts = data.get("buckets", [])
            if len(counts) != len(target._counts):
                raise ValueError(
                    f"{self.name}: bucket layout mismatch on merge"
                )
            for i, c in enumerate(counts):
                target._counts[i] += c
            target._sum += data.get("sum", 0.0)
            target._count += data.get("count", 0)


class MetricsRegistry:
    """One process's metric families, by name.

    Getter methods are idempotent: asking for an existing name returns
    the existing family (and validates that the kind matches), so
    publishers and scrapers can both "declare" the metric they need
    without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames=labelnames, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=(), fn=None) -> Gauge:
        return self._get(Gauge, name, help, labelnames, fn=fn)

    def histogram(
        self, name, help="", labelnames=(), buckets=LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [m for __, m in sorted(self._metrics.items())]

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-safe snapshot (also the cross-process wire format)."""
        out = {}
        for metric in self.metrics():
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": [
                    {"labels": list(key), "data": data}
                    for key, data in metric.dump().items()
                ],
            }
            if isinstance(metric, Histogram):
                out[metric.name]["bounds"] = list(metric.bounds)
        return out

    def merge_dict(self, data: dict) -> None:
        """Fold another process's :meth:`to_dict` snapshot into this
        registry: counters/histograms add, gauges take the max."""
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name, family in data.items():
            cls = kinds.get(family.get("kind"))
            if cls is None:
                continue
            kwargs = {}
            if cls is Histogram:
                kwargs["buckets"] = tuple(
                    family.get("bounds", LATENCY_BUCKETS)
                )
            metric = self._get(
                cls,
                name,
                family.get("help", ""),
                tuple(family.get("labelnames", ())),
                **kwargs,
            )
            for sample in family.get("samples", []):
                metric.merge_sample(
                    tuple(sample.get("labels", ())), sample["data"]
                )


def engine_metrics(registry: MetricsRegistry) -> dict:
    """Declare (or fetch) the engine metric family, by short key."""
    return {
        "runs": registry.counter(
            ENGINE_RUNS, "Top-level engine evaluations completed"
        ),
        "rows": registry.counter(
            ENGINE_ROWS, "Fact records scanned by engines"
        ),
        "sort_seconds": registry.counter(
            ENGINE_SORT_SECONDS, "Seconds spent in engine sort phases"
        ),
        "scan_seconds": registry.counter(
            ENGINE_SCAN_SECONDS, "Seconds spent in engine scan phases"
        ),
        "flushed": registry.counter(
            ENGINE_FLUSHED, "Finalized entries flushed by engines"
        ),
        "run_seconds": registry.histogram(
            ENGINE_RUN_SECONDS, "Wall-clock engine run duration"
        ),
        "peak_entries": registry.gauge(
            ENGINE_PEAK_ENTRIES,
            "Peak resident hash-table entries of any engine run "
            "(per-process peak under shared-nothing parallelism)",
        ),
    }


def publish_eval_stats(stats, registry: MetricsRegistry | None = None):
    """Publish one finished :class:`~repro.engine.interfaces.EvalStats`.

    Called once per top-level engine run (sub-runs of the multi-pass
    and partitioned engines are folded into their parent's stats and
    must not double-publish; shared-nothing process workers publish
    into their own registry, which the parent merges instead).
    """
    if registry is None:
        from repro.obs import get_registry

        registry = get_registry()
    family = engine_metrics(registry)
    family["runs"].inc()
    family["rows"].inc(stats.rows_scanned)
    family["sort_seconds"].inc(stats.sort_seconds)
    family["scan_seconds"].inc(stats.scan_seconds)
    family["flushed"].inc(stats.flushed_entries)
    family["run_seconds"].observe(stats.total_seconds)
    family["peak_entries"].set_max(stats.peak_entries)
