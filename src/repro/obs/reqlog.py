"""Structured request logging: access log, slow-query log, observer.

Every HTTP request served by either front end produces one structured
**access-log** entry (JSON lines): route, method, status, tenant,
request/trace ids, duration, shard fan-out count, and executor queue
wait.  Requests slower than a threshold additionally produce a
**slow-query** entry with the expensive detail attached — per-stage
span timings for the request's trace and any engine node profiles the
request captured — the "threshold-triggered plan-profile capture":
cheap requests never pay for introspection, slow ones arrive
self-describing.

Both logs write line-buffered JSON to an optional file and always to
the ``repro.access`` / ``repro.slowquery`` loggers; the slow-query
log also keeps an in-memory ring of recent entries for ``/statusz``
and ``repro obs tail``.  A logging failure must never fail the
request: write errors are swallowed and counted in
``repro_obs_log_errors_total`` (the ``obs.reqlog-write`` fail point
exists to drill exactly that containment).
"""

from __future__ import annotations

import collections
import json
import logging
import threading
import time

from repro.obs import get_registry, get_tracer, tracing_enabled
from repro.obs.context import TraceContext
from repro.obs.metrics import (
    HTTP_REQUEST_SECONDS,
    OBS_LOG_ERRORS,
    SLOW_QUERIES,
)
from repro.obs.trace import events_for_trace
from repro.testkit.failpoints import fire, register

access_logger = logging.getLogger("repro.access")
slow_logger = logging.getLogger("repro.slowquery")
# Library etiquette: without a NullHandler an unconfigured logging
# setup routes these records through logging.lastResort to stderr,
# which becomes "--- Logging error ---" noise when a straggler
# request finishes after stderr has been redirected and closed
# (pytest capture teardown). User-configured handlers still receive
# the records via normal propagation; the file sinks are unaffected.
access_logger.addHandler(logging.NullHandler())
slow_logger.addHandler(logging.NullHandler())

FP_REQLOG_WRITE = register(
    "obs.reqlog-write", "obs",
    "before an access/slow-query log entry is written",
)

#: Default slow-query threshold (seconds); override per front end or
#: with the REPRO_SLOW_QUERY_SECONDS environment variable.
DEFAULT_SLOW_QUERY_SECONDS = 0.5

__all__ = [
    "RequestLog",
    "SlowQueryLog",
    "RequestObserver",
    "DEFAULT_SLOW_QUERY_SECONDS",
]


class _JsonLineLog:
    """JSON-lines sink: a logger always, a line-buffered file optionally."""

    def __init__(self, logger: logging.Logger, path: str | None) -> None:
        self._logger = logger
        self._path = path
        self._lock = threading.Lock()
        self._fh = None
        if path:
            self._fh = open(  # noqa: SIM115 - held for the log's life
                path, "a", encoding="utf-8", buffering=1
            )

    def write(self, entry: dict) -> None:
        """Emit one entry; raises only for armed fail points (the
        callers contain everything via :meth:`RequestObserver._safely`)."""
        fire(FP_REQLOG_WRITE)
        line = json.dumps(entry, separators=(",", ":"), default=str)
        self._logger.info("%s", line)
        if self._fh is not None:
            with self._lock:
                self._fh.write(line + "\n")

    def close(self) -> None:
        if self._fh is not None:
            with self._lock:
                self._fh.close()
                self._fh = None


class RequestLog:
    """The structured access log (one entry per HTTP request)."""

    def __init__(self, path: str | None = None) -> None:
        self._sink = _JsonLineLog(access_logger, path)

    def log(self, entry: dict) -> None:
        self._sink.write(entry)

    def close(self) -> None:
        self._sink.close()


class SlowQueryLog:
    """Threshold-triggered log of slow requests with stage detail."""

    def __init__(
        self,
        threshold_seconds: float = DEFAULT_SLOW_QUERY_SECONDS,
        path: str | None = None,
        keep_recent: int = 50,
    ) -> None:
        self.threshold_seconds = float(threshold_seconds)
        self._sink = _JsonLineLog(slow_logger, path)
        self._recent: collections.deque = collections.deque(
            maxlen=keep_recent
        )
        self._counter = get_registry().counter(
            SLOW_QUERIES,
            "Requests slower than the slow-query threshold, by route",
            labelnames=("route",),
        )

    def is_slow(self, seconds: float) -> bool:
        return seconds >= self.threshold_seconds

    def log(self, entry: dict) -> None:
        self._counter.labels(route=entry.get("route", "-")).inc()
        self._recent.append(entry)
        self._sink.write(entry)

    def recent(self) -> list[dict]:
        """Most recent slow-query entries, oldest first (``/statusz``)."""
        return list(self._recent)

    def close(self) -> None:
        self._sink.close()


def _stage_timings(trace_id: str, limit: int = 40) -> list[dict]:
    """Per-stage span timings of one trace, from the live tracer.

    Only called for slow requests, after the front end's eager
    telemetry flush absorbed worker-process spans, so the stages span
    the whole frontend → router → worker path.
    """
    stages = []
    for event in events_for_trace(get_tracer().events, trace_id):
        if event.get("ph") != "X":
            continue
        stages.append(
            {
                "stage": event["name"],
                "ms": round(event.get("dur", 0) / 1000.0, 3),
                "pid": event.get("pid"),
            }
        )
        if len(stages) >= limit:
            break
    return stages


class RequestObserver:
    """One-stop per-request accounting shared by both HTTP servers.

    Folds one finished request into: the access log, the per-route /
    per-tenant latency histogram, the SLO tracker, and — when the
    request crossed the slow threshold — the slow-query log with stage
    timings and captured engine profiles attached.
    """

    def __init__(
        self,
        access_log: RequestLog | None = None,
        slow_log: SlowQueryLog | None = None,
        slo=None,
    ) -> None:
        self.access_log = access_log or RequestLog()
        self.slow_log = slow_log or SlowQueryLog()
        self.slo = slo
        registry = get_registry()
        self._latency = registry.histogram(
            HTTP_REQUEST_SECONDS,
            "End-to-end HTTP request latency, by route and tenant",
            labelnames=("route", "tenant"),
        )
        self._log_errors = registry.counter(
            OBS_LOG_ERRORS,
            "Access/slow-query log entries dropped by write failures",
        )

    def observe(
        self,
        *,
        route: str,
        method: str,
        status: int,
        seconds: float,
        ctx: TraceContext | None = None,
        tenant: str = "-",
        error: str | None = None,
    ) -> None:
        """Account one finished request.  Never raises."""
        self._latency.labels(route=route, tenant=tenant).observe(seconds)
        if self.slo is not None:
            self.slo.record(tenant, seconds, error=status >= 500)
        entry = {
            "time": round(time.time(), 3),
            "route": route,
            "method": method,
            "status": status,
            "tenant": tenant,
            "duration_ms": round(seconds * 1000.0, 3),
        }
        if ctx is not None:
            entry["request_id"] = ctx.request_id
            entry["trace_id"] = ctx.trace_id
            entry["fanout"] = ctx.stats.fanout
            entry["queue_wait_ms"] = round(
                ctx.stats.queue_wait_seconds * 1000.0, 3
            )
        if error:
            entry["error"] = error
        self._safely(self.access_log.log, entry)
        if self.slow_log.is_slow(seconds):
            slow = dict(entry)
            if ctx is not None:
                if tracing_enabled():
                    slow["stages"] = _stage_timings(ctx.trace_id)
                if ctx.stats.engine_runs:
                    slow["engine_runs"] = list(ctx.stats.engine_runs)
            self._safely(self.slow_log.log, slow)

    def _safely(self, write, entry: dict) -> None:
        try:
            write(entry)
        except Exception:
            # Telemetry must never take a request down with it.
            self._log_errors.inc()

    def close(self) -> None:
        self.access_log.close()
        self.slow_log.close()
