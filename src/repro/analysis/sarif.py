"""SARIF 2.1.0 export for lint diagnostics.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
(Static Analysis Results Interchange Format) is the payload GitHub code
scanning and most CI annotators consume.  ``repro lint --sarif OUT.json``
writes one ``run`` whose tool is the CSM rule registry and whose results
are the diagnostics; workflows and measures have no file locations, so
findings carry *logical* locations (``workflow::measure``) instead.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.diagnostics import CODES, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"

#: CSM severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.HINT: "note",
}


def _rules() -> list[dict[str, object]]:
    """The full CSM code registry as SARIF reportingDescriptors.

    Emitting every registered rule (not just the fired ones) keeps
    ``ruleIndex`` stable across runs, which CI diffing relies on.
    """
    return [
        {
            "id": info.code,
            "name": info.code,
            "shortDescription": {"text": info.title},
            "defaultConfiguration": {
                "level": _LEVELS[info.severity],
            },
            "properties": {"family": info.family},
        }
        for info in sorted(CODES.values(), key=lambda i: i.code)
    ]


def _result(
    diagnostic: Diagnostic, rule_index: dict[str, int]
) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index[diagnostic.code],
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
    }
    qualified = diagnostic.workflow or ""
    if diagnostic.measure is not None:
        qualified = f"{qualified}::{diagnostic.measure}"
    if qualified:
        result["locations"] = [
            {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": qualified,
                        "kind": "member",
                    }
                ]
            }
        ]
    properties: dict[str, object] = {"family": diagnostic.family}
    if diagnostic.suggestion is not None:
        properties["suggestion"] = diagnostic.suggestion
    if diagnostic.saving is not None:
        properties["estimated_saving"] = diagnostic.saving
    if diagnostic.related:
        properties["related"] = list(diagnostic.related)
    result["properties"] = properties
    return result


def diagnostics_to_sarif(
    diagnostics: Iterable[Diagnostic],
) -> dict[str, object]:
    """Render diagnostics as one SARIF 2.1.0 log (a JSON-ready dict).

    The caller is responsible for canonical ordering (``repro lint``
    passes diagnostics through
    :func:`repro.analysis.analyzer.canonical_diagnostics` first, so the
    file is byte-stable across runs).
    """
    rules = _rules()
    rule_index = {
        str(rule["id"]): index for index, rule in enumerate(rules)
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _result(d, rule_index) for d in diagnostics
                ],
            }
        ],
    }
