"""Workload-level static analysis: cross-workflow sharing (CSM4xx).

Single-workflow analysis (:func:`repro.analysis.analyze`) stops at the
boundary of one workflow.  This module looks at a *workload* — N named
workflows, anything from :mod:`repro.queries.registry` plus ad-hoc
ones — and proves what is shareable **before** any optimizer tries to
merge them:

1. every workflow's measures are canonicalized into structural
   **fingerprints** (source dataset shape, match-condition shape,
   granularity, aggregate function, filter shape — modulo measure
   renaming), the CSM analogue of common-subexpression detection over
   the paper's AW-RA algebra;
2. the ``CSM4xx`` diagnostic family is emitted over the cross product:

   - ``CSM401`` — identical sub-aggregation computed in k workflows;
   - ``CSM402`` — shared fact scan: same source dataset and streaming
     plans that stay feasible under one workload-wide sort key, so one
     pass can feed every workflow (the rollup-lattice view of Gray et
     al.'s CUBE: compatible granularities over one fact source);
   - ``CSM403`` — shared sort order: one lexsort serves k sort/scan
     plans when the key is chosen workload-wide instead of per query;
   - ``CSM404`` — rollup-derivable measure: a workflow recomputes from
     raw facts what another workflow's finer-granularity measure
     already produces (Property 1 applied *across* workflows);
   - ``CSM405`` — dead/duplicate workflow: every visible output is
     fingerprint-subsumed by another workflow.

   Each carries an estimated saving from the Section 6 cost model
   (:mod:`repro.optimizer.cost_model`), in abstract work units.
3. shared fact scans are additionally reported as
   :class:`SharedScanGroup` objects — the input contract of the future
   shared-DAG executor (see ``docs/internals.md``);
4. :func:`compress_workload` greedily selects a representative subset
   of the workload under a cost budget, GSUM-style: maximize marginal
   fingerprint coverage per unit estimated cost.  CI uses it to
   benchmark a workload within a time budget.

The entry point is :class:`WorkloadAnalyzer` (or the
:func:`analyze_workload` convenience wrapper)::

    from repro.analysis.workload import analyze_workload
    report = analyze_workload({"q1": wf1, "dashboards": wf2})
    for diag in report.diagnostics:   # CSM4xx only
        print(diag.format())
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.analyzer import (
    DEFAULT_MEMORY_BUDGET,
    Report,
    analyze,
    canonical_diagnostics,
)
from repro.analysis.diagnostics import (
    CSM401,
    CSM402,
    CSM403,
    CSM404,
    CSM405,
    Diagnostic,
    make,
)
from repro.cube.order import SortKey
from repro.errors import ReproError
from repro.optimizer.cost_model import (
    DEFAULT_SCAN_WEIGHT,
    DEFAULT_SORT_WEIGHT,
    DEFAULT_UPDATE_WEIGHT,
    DEFAULT_WRITE_WEIGHT,
    estimate_plan_cost,
    estimate_region_count,
    estimate_update_work,
)
from repro.schema.dataset_schema import DatasetSchema
from repro.workflow.measure import Measure, MeasureKind
from repro.workflow.workflow import AggregationWorkflow

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.compile import CompiledGraph

#: Assumed dataset size for cost estimates when the caller gives none;
#: only the *ratios* between savings matter for ranking, so a round
#: figure is fine (the unit costs cancel, as in Section 6).
DEFAULT_WORKLOAD_DATASET_SIZE = 100_000

#: Rough calibration of abstract work units to wall-clock seconds for
#: ``repro lint --workload --budget SECS``; derived from the committed
#: sort/scan bench figures (order-of-magnitude, deliberately coarse).
WORK_UNITS_PER_SECOND = 2_000_000.0

#: Outer/inner aggregate pairs where the outer measure is derivable by
#: rolling the inner (finer) measure up — Property 1 across workflows.
#: ``count`` over finer counts is a ``sum`` rollup.
_ROLLUP_DERIVABLE = {
    ("sum", "sum"),
    ("min", "min"),
    ("max", "max"),
    ("count", "count"),
}

#: A structural fingerprint: a nested tuple with no measure names in
#: it, so renaming a measure never changes its fingerprint.
Fingerprint = tuple[object, ...]


# -- fingerprints --------------------------------------------------------


def schema_fingerprint(schema: DatasetSchema) -> Fingerprint:
    """Structural identity of a fact source.

    Two independently constructed schema *instances* of the same family
    (the registry builds a fresh one per workflow) fingerprint equal:
    dimension names, abbreviations, the full domain ladder of every
    hierarchy, and the measure attributes.
    """
    dims = tuple(
        (
            dim.name,
            dim.abbrev,
            tuple(domain.name for domain in dim.domains),
        )
        for dim in schema.dimensions
    )
    return ("schema", dims, tuple(schema.measures))


def _agg_fingerprint(measure: Measure) -> Fingerprint | None:
    if measure.agg is None:
        return None
    return (measure.agg.function.name, measure.agg.input_field)


def _where_fingerprint(measure: Measure) -> str | None:
    return None if measure.where is None else repr(measure.where)


def measure_fingerprints(
    workflow: AggregationWorkflow,
) -> dict[str, Fingerprint]:
    """Fingerprint of every measure of ``workflow``, by name.

    Fingerprints are recursive over ``source``/``keys``/combine inputs,
    so two measures fingerprint equal exactly when their whole AW-RA
    sub-trees are structurally identical modulo measure renaming.
    Combine functions are compared by their registered ``name`` (the
    callable itself has no stable structure to compare).

    The workflow must be a DAG with no dangling references — callers
    gate on the single-workflow analyzer first (``CSM001``/``CSM002``
    are error-level).
    """
    memo: dict[str, Fingerprint] = {}

    def fingerprint(name: str) -> Fingerprint:
        cached = memo.get(name)
        if cached is not None:
            return cached
        measure = workflow.measures[name]
        levels = measure.granularity.levels
        agg = _agg_fingerprint(measure)
        where = _where_fingerprint(measure)
        body: Fingerprint
        if measure.kind is MeasureKind.BASIC:
            body = ("basic", levels, agg, where)
        elif measure.kind is MeasureKind.ROLLUP:
            assert measure.source is not None
            body = ("rollup", levels, agg, where,
                    fingerprint(measure.source))
        elif measure.kind is MeasureKind.MATCH:
            assert measure.source is not None
            keys_fp = (
                None if measure.keys is None
                else fingerprint(measure.keys)
            )
            body = ("match", levels, agg, where, repr(measure.cond),
                    fingerprint(measure.source), keys_fp)
        elif measure.kind is MeasureKind.COMBINE:
            fn_name = None if measure.fn is None else measure.fn.name
            body = ("combine", levels, fn_name,
                    tuple(fingerprint(inp) for inp in measure.inputs))
        else:  # FILTER
            assert measure.source is not None
            body = ("filter", levels, where,
                    fingerprint(measure.source))
        memo[name] = body
        return body

    for name in workflow.measures:
        fingerprint(name)
    return memo


def _is_aggregation(measure: Measure) -> bool:
    """True for measures whose duplication wastes real work: actual
    aggregations, not the auto-generated constant cell providers."""
    if measure.agg is None:
        return measure.kind is MeasureKind.COMBINE
    return measure.agg.function.name != "cells"


# -- per-workflow precomputation -----------------------------------------


@dataclass
class WorkflowEntry:
    """Everything the cross-product rules need about one workflow."""

    name: str
    workflow: AggregationWorkflow
    report: Report
    schema_fp: Fingerprint
    #: Measure name -> structural fingerprint (empty when the workflow
    #: failed single-workflow analysis and was excluded).
    fingerprints: dict[str, Fingerprint] = field(default_factory=dict)
    #: Fingerprint -> first measure carrying it (aggregations only).
    aggregations: dict[Fingerprint, str] = field(default_factory=dict)
    #: Fingerprints of the *visible* outputs (CSM405's subsumption set).
    visible: set[Fingerprint] = field(default_factory=set)
    sort_key_spec: tuple[tuple[int, int], ...] = ()
    estimated_cost: float = 0.0
    compiled: CompiledGraph | None = None

    @property
    def ok(self) -> bool:
        return self.report.ok and bool(self.fingerprints)


def _prepare_entry(
    name: str,
    workflow: AggregationWorkflow,
    dataset_size: int | None,
    cost_rows: int,
    memory_budget: int,
) -> WorkflowEntry:
    from repro.engine.compile import compile_workflow
    from repro.engine.sort_scan import default_sort_key
    from repro.optimizer.greedy import plan_passes

    entry = WorkflowEntry(
        name=name,
        workflow=workflow,
        report=analyze(
            workflow,
            dataset_size=dataset_size,
            memory_budget=memory_budget,
        ),
        schema_fp=schema_fingerprint(workflow.schema),
    )
    if not entry.report.ok:
        return entry
    try:
        graph = compile_workflow(workflow)
        sort_key = default_sort_key(graph)
        plan = plan_passes(graph, dataset_size=cost_rows)
        entry.estimated_cost = estimate_plan_cost(
            graph, plan, cost_rows
        ).total
    except ReproError:
        return entry
    entry.compiled = graph
    entry.sort_key_spec = sort_key.parts
    entry.fingerprints = measure_fingerprints(workflow)
    for measure_name, fp in entry.fingerprints.items():
        measure = workflow.measures[measure_name]
        if _is_aggregation(measure):
            entry.aggregations.setdefault(fp, measure_name)
        if not measure.hidden:
            entry.visible.add(fp)
    return entry


# -- shared-scan groups (the optimizer's input contract) -----------------


@dataclass(frozen=True)
class SharedScanGroup:
    """One group of workflows a single fact scan can feed.

    This is the **input contract of the shared-DAG executor** the
    ROADMAP plans: the future workload optimizer consumes these groups
    verbatim — it may merge *exactly* the workflows listed here, must
    sort by ``sort_key`` (the workload-wide key proven compatible with
    every member's streaming plan), and may deduplicate the
    sub-aggregations counted by ``shared_aggregations``.

    Attributes:
        workflows: Member workflow names, sorted.
        sort_key: The workload-wide sort key as ``(dimension name,
            domain name)`` pairs, most significant first — serializable
            and schema-instance independent.
        shared_aggregations: Number of distinct sub-aggregation
            fingerprints computed by more than one member.
        separate_cost: Estimated Section 6 cost of running every member
            on its own (sum of per-workflow plan costs).
        shared_cost: Estimated cost when one sort+scan feeds all
            members (members' costs minus the redundant sorts/scans).
    """

    workflows: tuple[str, ...]
    sort_key: tuple[tuple[str, str], ...]
    shared_aggregations: int
    separate_cost: float
    shared_cost: float

    @property
    def estimated_saving(self) -> float:
        return max(0.0, self.separate_cost - self.shared_cost)

    def to_dict(self) -> dict[str, object]:
        return {
            "workflows": list(self.workflows),
            "sort_key": [list(part) for part in self.sort_key],
            "shared_aggregations": self.shared_aggregations,
            "separate_cost": self.separate_cost,
            "shared_cost": self.shared_cost,
            "estimated_saving": self.estimated_saving,
        }


# -- the workload report -------------------------------------------------


@dataclass
class WorkloadReport:
    """Cross-workflow findings plus the per-workflow reports."""

    #: Workflow names, in submission order.
    workflows: list[str] = field(default_factory=list)
    #: Per-workflow single-workflow reports, by name.
    reports: dict[str, Report] = field(default_factory=dict)
    #: Cross-workflow diagnostics (``CSM4xx`` only).
    diagnostics: list[Diagnostic] = field(default_factory=list)
    scan_groups: list[SharedScanGroup] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no report and no workload finding is error-level."""
        from repro.analysis.diagnostics import Severity

        if any(not report.ok for report in self.reports.values()):
            return False
        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    def codes(self) -> set[str]:
        """Distinct workload-level (``CSM4xx``) codes present."""
        return {d.code for d in self.diagnostics}

    def all_diagnostics(self) -> list[Diagnostic]:
        """Per-workflow and workload findings, canonically ordered."""
        merged: list[Diagnostic] = []
        for name in self.workflows:
            merged.extend(self.reports[name].diagnostics)
        merged.extend(self.diagnostics)
        return canonical_diagnostics(merged)

    def estimated_saving(self) -> float:
        """Total cost-model saving attached to workload findings."""
        return sum(d.saving or 0.0 for d in self.diagnostics)

    def format(self) -> str:
        lines = [
            f"workload: {len(self.workflows)} workflow(s), "
            f"{len(self.diagnostics)} sharing finding(s), "
            f"{len(self.scan_groups)} shared scan group(s), "
            f"~{self.estimated_saving():.0f} work units recoverable"
        ]
        lines.extend(d.format() for d in self.diagnostics)
        for group in self.scan_groups:
            key = ", ".join(
                f"{dim}:{dom}" for dim, dom in group.sort_key
            )
            lines.append(
                f"shared scan <{key}> feeds "
                f"{', '.join(group.workflows)} "
                f"(saves ~{group.estimated_saving:.0f})"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "workflows": list(self.workflows),
            "reports": {
                name: report.to_dict()
                for name, report in self.reports.items()
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "scan_groups": [g.to_dict() for g in self.scan_groups],
            "estimated_saving": self.estimated_saving(),
            "ok": self.ok,
        }


# -- the analyzer --------------------------------------------------------


class WorkloadAnalyzer:
    """Static cross-workflow sharing analysis (the CSM4xx family).

    Workflows that fail single-workflow analysis (error-level CSM0xx/
    CSM1xx findings) are excluded from the cross product — their
    per-workflow reports still appear in the result, so nothing is
    silently dropped.
    """

    def __init__(
        self,
        dataset_size: int | None = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
    ) -> None:
        self.dataset_size = dataset_size
        self.memory_budget = memory_budget
        #: Row count used for cost arithmetic (never None).
        self.cost_rows = (
            dataset_size
            if dataset_size is not None
            else DEFAULT_WORKLOAD_DATASET_SIZE
        )

    # -- public API ----------------------------------------------------

    def analyze(
        self,
        workflows: Mapping[str, AggregationWorkflow],
    ) -> WorkloadReport:
        entries = [
            _prepare_entry(
                name,
                workflow,
                self.dataset_size,
                self.cost_rows,
                self.memory_budget,
            )
            for name, workflow in workflows.items()
        ]
        report = WorkloadReport(
            workflows=[entry.name for entry in entries],
            reports={
                entry.name: entry.report for entry in entries
            },
        )
        live = [entry for entry in entries if entry.ok]
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._shared_subaggregations(live))
        groups = self._scan_groups(live)
        for group_entries, shared_key in groups:
            diagnostics.extend(
                self._shared_scan(group_entries, shared_key)
            )
            diagnostics.extend(
                self._shared_sort_order(group_entries, shared_key)
            )
            report.scan_groups.append(
                self._build_group(group_entries, shared_key)
            )
        diagnostics.extend(self._rollup_derivable(live))
        diagnostics.extend(self._subsumed_workflows(live))
        report.diagnostics = canonical_diagnostics(diagnostics)
        report.scan_groups.sort(key=lambda g: g.workflows)
        return report

    # -- CSM401: identical sub-aggregations ----------------------------

    def _shared_subaggregations(
        self, entries: list[WorkflowEntry]
    ) -> Iterable[Diagnostic]:
        by_fp: dict[
            tuple[Fingerprint, Fingerprint],
            list[tuple[WorkflowEntry, str]],
        ] = {}
        for entry in entries:
            for fp, measure_name in entry.aggregations.items():
                by_fp.setdefault(
                    (entry.schema_fp, fp), []
                ).append((entry, measure_name))
        for (__, fp), holders in sorted(
            by_fp.items(), key=lambda item: repr(item[0])
        ):
            if len(holders) < 2:
                continue
            first_entry, first_measure = holders[0]
            others = ", ".join(
                f"{entry.name}:{measure}"
                for entry, measure in holders[1:]
            )
            saving = (len(holders) - 1) * self._node_cost(
                first_entry, first_measure
            )
            yield make(
                CSM401,
                f"sub-aggregation {first_measure!r} of workflow "
                f"{first_entry.name!r} is computed identically in "
                f"{len(holders)} workflows (also as {others}); a "
                f"merged DAG computes it once",
                measure=first_measure,
                workflow=first_entry.name,
                related=tuple(
                    f"{entry.name}:{measure}"
                    for entry, measure in holders[1:]
                ),
                suggestion="merge the workflows (AggregationWorkflow"
                ".merge) or point both at one shared measure",
                saving=saving,
            )

    def _node_cost(
        self, entry: WorkflowEntry, measure_name: str
    ) -> float:
        """Update + write work of one measure's graph node."""
        graph = entry.compiled
        if graph is None:
            return 0.0
        for node in graph.nodes:
            if node.name == measure_name:
                return (
                    DEFAULT_UPDATE_WEIGHT
                    * estimate_update_work(node, self.cost_rows)
                    + DEFAULT_WRITE_WEIGHT
                    * estimate_region_count(node, self.cost_rows)
                )
        return 0.0

    # -- shared scans (CSM402/CSM403 + SharedScanGroup) ----------------

    def _scan_groups(
        self, entries: list[WorkflowEntry]
    ) -> list[tuple[list[WorkflowEntry], tuple[tuple[int, int], ...]]]:
        """Workflows sharing one fact source, with the workload-wide
        sort key (finest used level per referenced dimension, schema
        order) that stays streaming-compatible for every member."""
        by_schema: dict[Fingerprint, list[WorkflowEntry]] = {}
        for entry in entries:
            by_schema.setdefault(entry.schema_fp, []).append(entry)
        groups: list[
            tuple[list[WorkflowEntry], tuple[tuple[int, int], ...]]
        ] = []
        for members in by_schema.values():
            if len(members) < 2:
                continue
            shared_key = self._shared_sort_key(members)
            compatible = [
                entry
                for entry in members
                if self._streams_under(entry, shared_key)
            ]
            if len(compatible) >= 2:
                groups.append((compatible, shared_key))
        groups.sort(key=lambda pair: pair[0][0].name)
        return groups

    @staticmethod
    def _shared_sort_key(
        members: list[WorkflowEntry],
    ) -> tuple[tuple[int, int], ...]:
        schema = members[0].workflow.schema
        finest = [dim.all_level for dim in schema.dimensions]
        for entry in members:
            for dim, level in entry.sort_key_spec:
                finest[dim] = min(finest[dim], level)
        parts = tuple(
            (dim, level)
            for dim, level in enumerate(finest)
            if level != schema.dimensions[dim].all_level
        )
        return parts if parts else ((0, 0),)

    def _streams_under(
        self,
        entry: WorkflowEntry,
        key_parts: tuple[tuple[int, int], ...],
    ) -> bool:
        """Does every node that streams under the workflow's own key
        still stream under the shared key?  (Sorting finer or appending
        trailing dimensions preserves grouping; re-ordering the leading
        dimension does not — this test catches exactly that.)"""
        from repro.engine.plan import build_streaming_plan

        graph = entry.compiled
        if graph is None or not entry.sort_key_spec:
            return False
        schema = entry.workflow.schema
        own_key = SortKey(schema, entry.sort_key_spec)
        shared_key = SortKey(schema, key_parts)
        try:
            own_plan = build_streaming_plan(
                graph, own_key, self.dataset_size
            )
            shared_plan = build_streaming_plan(
                graph, shared_key, self.dataset_size
            )
        except ReproError:
            return False
        own_scan_all = schema.dimensions[own_key.parts[0][0]].all_level
        shared_scan_all = schema.dimensions[
            shared_key.parts[0][0]
        ].all_level
        for name, own_node in own_plan.nodes.items():
            ordered_before = own_node.order_levels[0] != own_scan_all
            ordered_after = (
                shared_plan.nodes[name].order_levels[0]
                != shared_scan_all
            )
            if ordered_before and not ordered_after:
                return False
        return True

    def _shared_scan(
        self,
        members: list[WorkflowEntry],
        key_parts: tuple[tuple[int, int], ...],
    ) -> Iterable[Diagnostic]:
        names = sorted(entry.name for entry in members)
        saving = (
            (len(members) - 1)
            * (DEFAULT_SORT_WEIGHT + DEFAULT_SCAN_WEIGHT)
            * self.cost_rows
        )
        yield make(
            CSM402,
            f"workflows {', '.join(names)} scan the same fact source "
            f"with streaming plans compatible under one workload-wide "
            f"sort key; one sorted pass can feed all "
            f"{len(members)} of them",
            workflow=names[0],
            related=tuple(names[1:]),
            suggestion="evaluate the group as one merged workflow "
            "(one sort, one scan) instead of per-query passes",
            saving=saving,
        )

    def _shared_sort_order(
        self,
        members: list[WorkflowEntry],
        key_parts: tuple[tuple[int, int], ...],
    ) -> Iterable[Diagnostic]:
        distinct = {entry.sort_key_spec for entry in members}
        if len(distinct) < 2:
            return
        names = sorted(entry.name for entry in members)
        schema = members[0].workflow.schema
        key_text = ", ".join(
            f"{schema.dimensions[dim].abbrev}:"
            f"{schema.dimensions[dim].hierarchy.domain(level).name}"
            for dim, level in key_parts
        )
        saving = (
            (len(distinct) - 1) * DEFAULT_SORT_WEIGHT * self.cost_rows
        )
        yield make(
            CSM403,
            f"workflows {', '.join(names)} choose "
            f"{len(distinct)} different sort orders for the same fact "
            f"source; the single workload-wide lexsort <{key_text}> "
            f"serves every plan",
            workflow=names[0],
            related=tuple(names[1:]),
            suggestion="pick the sort order once per workload (the "
            "SharedScanGroup's sort_key), not once per query",
            saving=saving,
        )

    def _build_group(
        self,
        members: list[WorkflowEntry],
        key_parts: tuple[tuple[int, int], ...],
    ) -> SharedScanGroup:
        schema = members[0].workflow.schema
        key = tuple(
            (
                schema.dimensions[dim].name,
                schema.dimensions[dim].hierarchy.domain(level).name,
            )
            for dim, level in key_parts
        )
        shared_fps: dict[Fingerprint, int] = {}
        for entry in members:
            for fp in entry.aggregations:
                shared_fps[fp] = shared_fps.get(fp, 0) + 1
        shared_count = sum(
            1 for count in shared_fps.values() if count > 1
        )
        separate = sum(entry.estimated_cost for entry in members)
        redundant_passes = (
            (len(members) - 1)
            * (DEFAULT_SORT_WEIGHT + DEFAULT_SCAN_WEIGHT)
            * self.cost_rows
        )
        return SharedScanGroup(
            workflows=tuple(sorted(e.name for e in members)),
            sort_key=key,
            shared_aggregations=shared_count,
            separate_cost=separate,
            shared_cost=max(0.0, separate - redundant_passes),
        )

    # -- CSM404: cross-workflow rollup derivability --------------------

    def _rollup_derivable(
        self, entries: list[WorkflowEntry]
    ) -> Iterable[Diagnostic]:
        for coarse in entries:
            for fine in entries:
                if fine is coarse:
                    continue
                if fine.schema_fp != coarse.schema_fp:
                    continue
                yield from self._derivable_pairs(coarse, fine)

    def _derivable_pairs(
        self, coarse: WorkflowEntry, fine: WorkflowEntry
    ) -> Iterable[Diagnostic]:
        for c_name, c_measure in coarse.workflow.measures.items():
            if c_measure.kind is not MeasureKind.BASIC:
                continue
            if c_measure.agg is None:
                continue
            for f_name, f_measure in fine.workflow.measures.items():
                if f_measure.kind is not MeasureKind.BASIC:
                    continue
                if f_measure.agg is None:
                    continue
                if not self._derivable(c_measure, f_measure):
                    continue
                saving = self._derivation_saving(coarse, c_name)
                via = (
                    "sum" if c_measure.agg.function.name == "count"
                    else c_measure.agg.function.name
                )
                yield make(
                    CSM404,
                    f"measure {c_name!r} of workflow {coarse.name!r} "
                    f"re-aggregates raw facts, but workflow "
                    f"{fine.name!r} already produces the strictly "
                    f"finer {f_name!r}; a {via}() rollup of that "
                    f"table derives it without touching the fact "
                    f"scan (Property 1 across workflows)",
                    measure=c_name,
                    workflow=coarse.name,
                    related=(f"{fine.name}:{f_name}",),
                    suggestion=f"in a merged workload, define "
                    f"{c_name!r} as a rollup of "
                    f"{fine.name}:{f_name} instead of a basic "
                    f"aggregation",
                    saving=saving,
                )
                break  # one derivation source per measure is enough

    @staticmethod
    def _derivable(c_measure: Measure, f_measure: Measure) -> bool:
        assert c_measure.agg is not None
        assert f_measure.agg is not None
        pair = (
            c_measure.agg.function.name,
            f_measure.agg.function.name,
        )
        if pair not in _ROLLUP_DERIVABLE:
            return False
        if c_measure.agg.input_field != f_measure.agg.input_field:
            return False
        if repr(c_measure.where) != repr(f_measure.where):
            return False
        fine_levels = f_measure.granularity.levels
        coarse_levels = c_measure.granularity.levels
        return fine_levels != coarse_levels and all(
            f <= c for f, c in zip(fine_levels, coarse_levels)
        )

    def _derivation_saving(
        self, entry: WorkflowEntry, measure_name: str
    ) -> float:
        """Scan+sort work avoided minus the rollup's update work."""
        graph = entry.compiled
        rollup_work = 0.0
        if graph is not None:
            for node in graph.nodes:
                if node.name == measure_name:
                    rollup_work = (
                        DEFAULT_UPDATE_WEIGHT
                        * estimate_region_count(node, self.cost_rows)
                    )
                    break
        scan_work = (
            DEFAULT_SORT_WEIGHT + DEFAULT_SCAN_WEIGHT
        ) * self.cost_rows
        return max(0.0, scan_work - rollup_work)

    # -- CSM405: subsumed workflows ------------------------------------

    def _subsumed_workflows(
        self, entries: list[WorkflowEntry]
    ) -> Iterable[Diagnostic]:
        for entry in entries:
            if not entry.visible:
                continue
            for other in entries:
                if other is entry:
                    continue
                if other.schema_fp != entry.schema_fp:
                    continue
                cover = set(other.fingerprints.values())
                if not entry.visible <= cover:
                    continue
                mutual = other.visible and other.visible <= set(
                    entry.fingerprints.values()
                )
                if mutual and other.name < entry.name:
                    # Equal workloads: report only the later name so a
                    # duplicate pair yields one finding, not two.
                    pass
                elif mutual:
                    continue
                yield make(
                    CSM405,
                    f"workflow {entry.name!r} is fingerprint-subsumed "
                    f"by {other.name!r}: every visible output is "
                    f"already computed there (modulo measure "
                    f"renaming); running both does the work twice",
                    workflow=entry.name,
                    related=(other.name,),
                    suggestion=f"drop {entry.name!r} from the "
                    f"workload and read its outputs from "
                    f"{other.name!r}",
                    saving=entry.estimated_cost,
                )
                break  # one subsumer is enough evidence


def analyze_workload(
    workflows: Mapping[str, AggregationWorkflow],
    *,
    dataset_size: int | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> WorkloadReport:
    """Convenience wrapper: one-shot :class:`WorkloadAnalyzer` run."""
    analyzer = WorkloadAnalyzer(
        dataset_size=dataset_size, memory_budget=memory_budget
    )
    return analyzer.analyze(workflows)


# -- GSUM-style workload compression -------------------------------------


@dataclass(frozen=True)
class CompressionResult:
    """The representative subset chosen by :func:`compress_workload`.

    Attributes:
        selected: Chosen workflow names, in selection order.
        dropped: Workflows left out, sorted.
        coverage: Fraction of the full workload's distinct measure
            fingerprints the selection still computes (0..1).
        selected_cost: Estimated Section 6 cost of the selection.
        workload_cost: Estimated cost of the full workload.
        budget: The cost ceiling the selection honoured (work units;
            ``inf`` when the caller gave none).
    """

    selected: tuple[str, ...]
    dropped: tuple[str, ...]
    coverage: float
    selected_cost: float
    workload_cost: float
    budget: float

    def to_dict(self) -> dict[str, object]:
        return {
            "selected": list(self.selected),
            "dropped": list(self.dropped),
            "coverage": self.coverage,
            "selected_cost": self.selected_cost,
            "workload_cost": self.workload_cost,
            "budget": (
                None if math.isinf(self.budget) else self.budget
            ),
        }


def compress_workload(
    workflows: Mapping[str, AggregationWorkflow],
    budget: float | None = None,
    *,
    dataset_size: int | None = None,
) -> CompressionResult:
    """Pick a representative workload subset under a cost budget.

    The greedy GSUM-style pass (WAter's workload compression): at each
    step select the workflow maximizing *marginal fingerprint coverage
    per unit estimated cost* among those still fitting the remaining
    budget; stop when nothing fits or nothing adds coverage.  A
    workload whose workflows overlap heavily (shared sub-aggregations,
    subsumed dashboards) compresses far below its raw cost with little
    coverage loss — exactly the CI-benchmark use case.

    Args:
        workflows: Named workflows (the workload).
        budget: Cost ceiling in Section 6 work units; ``None`` means
            unlimited.  CLI callers convert seconds with
            :data:`WORK_UNITS_PER_SECOND`.
        dataset_size: Assumed fact count for the cost model.
    """
    cost_rows = (
        dataset_size
        if dataset_size is not None
        else DEFAULT_WORKLOAD_DATASET_SIZE
    )
    entries = [
        _prepare_entry(
            name, workflow, dataset_size, cost_rows,
            DEFAULT_MEMORY_BUDGET,
        )
        for name, workflow in workflows.items()
    ]
    usable = [entry for entry in entries if entry.ok]
    universe: set[tuple[Fingerprint, Fingerprint]] = set()
    fps: dict[str, set[tuple[Fingerprint, Fingerprint]]] = {}
    for entry in usable:
        keyed = {
            (entry.schema_fp, fp)
            for fp in entry.fingerprints.values()
        }
        fps[entry.name] = keyed
        universe |= keyed
    workload_cost = sum(entry.estimated_cost for entry in usable)
    ceiling = math.inf if budget is None else float(budget)

    covered: set[tuple[Fingerprint, Fingerprint]] = set()
    selected: list[str] = []
    spent = 0.0
    remaining = {entry.name: entry for entry in usable}
    while remaining:
        best_name: str | None = None
        best_ratio = -1.0
        for name in sorted(remaining):
            entry = remaining[name]
            if spent + entry.estimated_cost > ceiling:
                continue
            gain = len(fps[name] - covered)
            if gain == 0:
                continue
            ratio = gain / max(entry.estimated_cost, 1.0)
            if ratio > best_ratio:
                best_name, best_ratio = name, ratio
        if best_name is None:
            break
        entry = remaining.pop(best_name)
        selected.append(best_name)
        covered |= fps[best_name]
        spent += entry.estimated_cost
    coverage = (
        len(covered) / len(universe) if universe else 1.0
    )
    dropped = tuple(sorted(
        entry.name for entry in usable
        if entry.name not in selected
    ))
    return CompressionResult(
        selected=tuple(selected),
        dropped=dropped,
        coverage=coverage,
        selected_cost=spent,
        workload_cost=workload_cost,
        budget=ceiling,
    )
