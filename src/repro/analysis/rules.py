"""The linter's rule families.

Each rule walks an :class:`~repro.workflow.AggregationWorkflow` (or the
streaming plan compiled from it) and yields
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  Rules never
mutate the workflow and never touch data; everything here is decidable
from the workflow graph, the hierarchy lattice, and the plan-time
order/slack algebra of Table 6 — which is the point: a bad workflow is
rejected at submit time, not mid-scan.

The rule set is organised by family:

- :func:`wellformedness_rules` — DAG shape (``CSM0xx``);
- :func:`granularity_rules` — §3.2 match validity (``CSM1xx``);
- :func:`streaming_rules` — §5.3 one-pass feasibility (``CSM2xx``);
- :func:`performance_rules` — Theorem 1 rewrite hints (``CSM3xx``).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from repro.aggregates.base import Kind
from repro.algebra.conditions import (
    Lags,
    MatchCondition,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.analysis.diagnostics import (
    CSM001,
    CSM002,
    CSM003,
    CSM004,
    CSM005,
    CSM101,
    CSM102,
    CSM103,
    CSM104,
    CSM105,
    CSM201,
    CSM202,
    CSM203,
    CSM204,
    CSM301,
    CSM302,
    CSM303,
    CSM304,
    Diagnostic,
    make,
)
from repro.cube.granularity import Granularity
from repro.errors import AlgebraError, measure_ref
from repro.workflow.measure import Measure, MeasureKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.analyzer import AnalysisContext

#: Outer/inner aggregate pairs that collapse per Property 1; mirrors
#: ``repro.algebra.properties._COLLAPSIBLE``.
_COLLAPSIBLE = {
    ("sum", "sum"),
    ("min", "min"),
    ("max", "max"),
    ("sum", "count"),
}


def _key_dims(granularity: Granularity) -> tuple[int, ...]:
    """Dimensions below ALL — the dimensions that key a region."""
    return granularity.key_dims


def _gran_spec(granularity: Granularity) -> str:
    return repr(granularity)


# -- family (a): well-formedness ---------------------------------------


def wellformedness_rules(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    """Structural checks: dangling deps, cycles, dead and duplicate measures (CSM0xx)."""
    wf = ctx.workflow
    measures = wf.measures

    if not measures or all(m.hidden for m in measures.values()):
        yield make(
            CSM005,
            f"workflow {wf.name!r} defines no visible output measure",
            workflow=wf.name,
            suggestion="mark at least one measure hidden=False, or "
            "drop the workflow",
        )

    # CSM001 — dangling dependencies.
    for name, measure in measures.items():
        for dep in measure.dependencies():
            if dep not in measures:
                yield make(
                    CSM001,
                    f"{measure_ref(name, wf.name)} depends on "
                    f"{dep!r}, which is not defined",
                    measure=name,
                    workflow=wf.name,
                    suggestion=f"define {dep!r} before {name!r}, or "
                    f"fix the reference",
                )

    # CSM002 — cycles, with the cycle's path named (beyond what
    # toposort reports: the actual back-edge walk, not just the
    # stuck set).
    for cycle in _find_cycles(measures):
        path = " -> ".join((*cycle, cycle[0]))
        yield make(
            CSM002,
            f"dependencies of workflow {wf.name!r} form a cycle: "
            f"{path}",
            measure=cycle[0],
            workflow=wf.name,
            related=tuple(cycle[1:]),
            suggestion="recursion is not allowed; break the cycle by "
            "computing one member from the fact table",
        )

    # CSM003 — dead hidden measures: computed but feeding nothing.
    consumed: set[str] = set()
    for measure in measures.values():
        consumed.update(measure.dependencies())
    for name, measure in measures.items():
        if measure.hidden and name not in consumed:
            yield make(
                CSM003,
                f"{measure_ref(name, wf.name)} is hidden and feeds "
                f"no other measure; it would be computed and thrown "
                f"away",
                measure=name,
                workflow=wf.name,
                suggestion=f"delete {name!r} or expose it as an output",
            )

    # CSM004 — duplicate outputs.
    seen: dict[tuple, str] = {}
    for name, measure in measures.items():
        if measure.hidden:
            continue
        signature = _definition_signature(measure)
        first = seen.get(signature)
        if first is not None:
            yield make(
                CSM004,
                f"output {name!r} recomputes the same measure as "
                f"{first!r} (same kind, granularity, aggregate, "
                f"inputs)",
                measure=name,
                workflow=wf.name,
                related=(first,),
                suggestion=f"drop {name!r} and read {first!r}, or use "
                f"derive() for a renamed view",
            )
        else:
            seen[signature] = name


def _definition_signature(measure: Measure) -> tuple[Any, ...]:
    return (
        measure.kind.value,
        measure.granularity.levels,
        repr(measure.agg),
        repr(measure.where),
        measure.source,
        measure.keys,
        repr(measure.cond),
        measure.inputs,
        repr(measure.fn),
    )


def _find_cycles(measures: dict[str, Measure]) -> list[list[str]]:
    """Every distinct dependency cycle, each reported once."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in measures}
    cycles: list[list[str]] = []
    reported: set[frozenset] = set()

    def visit(name: str, stack: list[str]) -> None:
        color[name] = GRAY
        stack.append(name)
        for dep in measures[name].dependencies():
            if dep not in measures:
                continue
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    cycles.append(list(cycle))
            elif color[dep] == WHITE:
                visit(dep, stack)
        stack.pop()
        color[name] = BLACK

    for name in measures:
        if color[name] == WHITE:
            visit(name, [])
    return cycles


# -- family (b): granularity / match validity (§3.2) --------------------


def granularity_rules(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    """Granularity-lattice and match-condition validity per §3.2 (CSM1xx)."""
    wf = ctx.workflow
    measures = wf.measures
    for name, measure in measures.items():
        if any(dep not in measures for dep in measure.dependencies()):
            continue  # CSM001 already covers this measure
        if measure.kind is MeasureKind.ROLLUP:
            yield from _check_rollup(ctx, name, measure)
        elif measure.kind is MeasureKind.MATCH:
            yield from _check_match(ctx, name, measure)
        elif measure.kind is MeasureKind.COMBINE:
            yield from _check_combine(ctx, name, measure)


def _check_rollup(
    ctx: "AnalysisContext", name: str, measure: Measure
) -> Iterator[Diagnostic]:
    wf = ctx.workflow
    source = wf.measures[measure.source]
    if source.granularity.strictly_finer(measure.granularity):
        return
    if source.granularity == measure.granularity:
        suggestion = (
            "equal granularities aggregate nothing; use derive() / a "
            "self match to re-expose the measure"
        )
    elif measure.granularity.strictly_finer(source.granularity):
        suggestion = (
            f"the target is finer than the source; did you mean "
            f"broadcast({name!r}, ...) — a parent/child match pushing "
            f"{measure.source!r} down?"
        )
    else:
        suggestion = (
            f"granularities {source.granularity!r} and "
            f"{measure.granularity!r} are incomparable under <_G; "
            f"roll up through a common coarser granularity instead"
        )
    yield make(
        CSM101,
        f"rollup {measure_ref(name, wf.name)}: source "
        f"{measure.source!r} at {_gran_spec(source.granularity)} is "
        f"not strictly finer than the target "
        f"{_gran_spec(measure.granularity)}",
        measure=name,
        workflow=wf.name,
        suggestion=suggestion,
    )


def _window_dims_at_all(
    cond: MatchCondition, granularity: Granularity
) -> list[str]:
    """Window/lag dimensions sitting at ALL in ``granularity``."""
    schema = granularity.schema
    if isinstance(cond, Sibling):
        names = cond.windows
    elif isinstance(cond, Lags):
        names = cond.offsets
    else:
        return []
    offenders = []
    for dim_name in names:
        idx = schema.dim_index(dim_name)
        if granularity.levels[idx] == schema.dimensions[idx].all_level:
            offenders.append(schema.dimensions[idx].name)
    return offenders


def _check_match(
    ctx: "AnalysisContext", name: str, measure: Measure
) -> Iterator[Diagnostic]:
    wf = ctx.workflow
    source = wf.measures[measure.source]
    s_gran = measure.granularity
    t_gran = source.granularity

    if measure.cond is None:
        yield make(
            CSM102,
            f"match {measure_ref(name, wf.name)} has no match "
            f"condition",
            measure=name,
            workflow=wf.name,
            suggestion="attach a SelfMatch, ParentChild, Sibling, or "
            "Lags condition",
        )
        return

    # CSM103 — window on an ALL dimension, reported before the generic
    # condition check so the message names the dimension.
    offenders = _window_dims_at_all(measure.cond, s_gran)
    if offenders:
        dims = ", ".join(repr(d) for d in offenders)
        yield make(
            CSM103,
            f"match {measure_ref(name, wf.name)}: {measure.cond!r} "
            f"windows dimension(s) {dims}, which sit at ALL in "
            f"{_gran_spec(s_gran)} — no neighbours exist there",
            measure=name,
            workflow=wf.name,
            suggestion="window a dimension the region set keys on, or "
            "refine the granularity",
        )
    else:
        # CSM102 — condition/granularity mismatch, checked against the
        # hierarchy lattice exactly as the runtime would.
        try:
            measure.cond.validate(s_gran, t_gran)
        except AlgebraError as exc:
            yield make(
                CSM102,
                f"match {measure_ref(name, wf.name)}: {exc}",
                measure=name,
                workflow=wf.name,
                suggestion=_match_fix(measure, s_gran, t_gran),
            )

    # CSM104 — keys provider must sit at the match's own granularity.
    if measure.keys is not None and measure.keys in wf.measures:
        keys = wf.measures[measure.keys]
        if keys.granularity != s_gran:
            yield make(
                CSM104,
                f"match {measure_ref(name, wf.name)}: keys measure "
                f"{measure.keys!r} is at "
                f"{_gran_spec(keys.granularity)}, but the match "
                f"produces {_gran_spec(s_gran)}",
                measure=name,
                workflow=wf.name,
                suggestion="omit keys= to auto-create a cell provider "
                "at the right granularity",
            )


def _match_fix(
    measure: Measure, s_gran: Granularity, t_gran: Granularity
) -> str:
    """Fix-it wording for a CSM102 granularity mismatch."""
    cond = measure.cond
    if isinstance(cond, (Sibling, SelfMatch, Lags)):
        if t_gran.strictly_finer(s_gran):
            return (
                f"source {measure.source!r} is strictly finer than "
                f"the target; sibling/self matches need equal "
                f"granularities — did you mean a rollup "
                f"(child/parent) to {_gran_spec(s_gran)}?"
            )
        if s_gran.strictly_finer(t_gran):
            return (
                f"the target is strictly finer than source "
                f"{measure.source!r}; did you mean broadcast() — a "
                f"parent/child match?"
            )
        return (
            f"granularities {_gran_spec(s_gran)} and "
            f"{_gran_spec(t_gran)} have no common coverage; roll "
            f"both sides up to a shared granularity first"
        )
    if isinstance(cond, ParentChild):
        return (
            "parent/child matches need the target strictly finer "
            "than the source; for the opposite direction use rollup()"
        )
    return "check the match condition against §3.2's conditions"


def _check_combine(
    ctx: "AnalysisContext", name: str, measure: Measure
) -> Iterator[Diagnostic]:
    wf = ctx.workflow
    grans = {
        wf.measures[inp].granularity.levels: inp
        for inp in measure.inputs
    }
    if len(grans) > 1:
        listing = ", ".join(
            f"{inp}@{_gran_spec(wf.measures[inp].granularity)}"
            for inp in measure.inputs
        )
        yield make(
            CSM105,
            f"combine {measure_ref(name, wf.name)}: inputs sit at "
            f"different granularities ({listing}); a combine join "
            f"requires one shared region set",
            measure=name,
            workflow=wf.name,
            suggestion="roll the finer inputs up (or broadcast the "
            "coarser ones down) to one granularity first",
        )


# -- family (c): streaming feasibility (§5.3, Table 6) ------------------


def streaming_rules(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    """One-pass feasibility against the chosen scan order and memory budget (CSM2xx)."""
    wf = ctx.workflow
    plan = ctx.plan
    if plan is None or ctx.graph is None:
        return
    schema = wf.schema
    scan_dim = plan.sort_key.parts[0][0]
    scan_all = schema.dimensions[scan_dim].all_level

    for name, measure in wf.measures.items():
        node_plan = plan.nodes.get(name)
        if node_plan is None:
            continue
        if not _key_dims(measure.granularity):
            continue  # a single global cell is always cheap
        unordered = node_plan.order_levels[0] == scan_all
        holistic = (
            measure.agg is not None
            and measure.agg.function.kind is Kind.HOLISTIC
        )
        if unordered and holistic:
            # CSM201 — the paper's hard case: holistic state cannot be
            # merged or flushed early, so the node pins every input
            # value for the whole scan.
            yield make(
                CSM201,
                f"{measure_ref(name, wf.name)} aggregates with "
                f"holistic {measure.agg.function.name}() but its "
                f"stream is unordered under sort key "
                f"{plan.sort_key!r}: every value stays resident "
                f"until the end of the scan, and incremental "
                f"ingestion must mark its regions dirty",
                measure=name,
                workflow=wf.name,
                suggestion="sort on a dimension the measure keys on, "
                "use MultiPassEngine, or switch to a sketch "
                "(approximate) aggregate",
            )
        elif unordered:
            yield make(
                CSM202,
                f"{measure_ref(name, wf.name)} is unordered under "
                f"sort key {plan.sort_key!r}; its whole table "
                f"(~{node_plan.estimated_entries} entries) stays "
                f"resident until the end of the scan",
                measure=name,
                workflow=wf.name,
                suggestion="include one of the measure's key "
                "dimensions early in the sort key, or split the "
                "query into passes",
            )
        if node_plan.estimated_entries > ctx.memory_budget:
            # CSM203 — the watermark arrays themselves grow with the
            # resident-entry estimate; surface it before running.
            yield make(
                CSM203,
                f"{measure_ref(name, wf.name)} keeps an estimated "
                f"~{node_plan.estimated_entries} entries resident "
                f"under sort key {plan.sort_key!r} (budget "
                f"{ctx.memory_budget}); watermark state grows with "
                f"it",
                measure=name,
                workflow=wf.name,
                suggestion="shrink the window/lag reach, choose a "
                "sort key covering the measure, or evaluate with "
                "MultiPassEngine / PartitionedEngine",
            )

    # CSM204 — Table 6 order conflict: two scan-sharing measures with
    # no common key dimension can never both stream, whatever single
    # sort key is chosen.
    basics = [
        (name, set(_key_dims(m.granularity)))
        for name, m in wf.measures.items()
        if m.kind is MeasureKind.BASIC
        and _key_dims(m.granularity)
        and name in plan.nodes
    ]
    reported: set[frozenset] = set()
    for i, (a_name, a_dims) in enumerate(basics):
        for b_name, b_dims in basics[i + 1:]:
            if a_dims & b_dims:
                continue
            pair = frozenset((a_name, b_name))
            if pair in reported:
                continue
            reported.add(pair)
            yield make(
                CSM204,
                f"basic measures {a_name!r} and {b_name!r} share the "
                f"fact scan but key on disjoint dimensions; no "
                f"single sort key orders both (Table 6), so one "
                f"stays fully resident in any one-pass plan",
                measure=b_name,
                workflow=wf.name,
                related=(a_name,),
                suggestion="evaluate them in separate passes "
                "(MultiPassEngine) or add a shared leading "
                "dimension to both granularities",
            )


# -- family (d): performance hints (Theorem 1) --------------------------


def performance_rules(ctx: "AnalysisContext") -> Iterator[Diagnostic]:
    """Rewrite opportunities from Properties 1–5 of the paper (CSM3xx)."""
    wf = ctx.workflow
    measures = wf.measures
    consumers: dict[str, list[str]] = {name: [] for name in measures}
    for name, measure in measures.items():
        for dep in measure.dependencies():
            if dep in consumers:
                consumers[dep].append(name)

    for name, measure in measures.items():
        if any(dep not in measures for dep in measure.dependencies()):
            continue

        # CSM301 — Property 2: a dimension-only selection over a
        # private basic source can run on the raw records instead of
        # on a materialized measure table.
        if (
            measure.kind in (MeasureKind.ROLLUP, MeasureKind.FILTER)
            and measure.where is not None
            and not measure.where.references_measure()
            and measures[measure.source].kind is MeasureKind.BASIC
            and measures[measure.source].hidden
            and consumers[measure.source] == [name]
        ):
            yield make(
                CSM301,
                f"{measure_ref(name, wf.name)} filters "
                f"{measure.source!r} on dimension attributes only; "
                f"Property 2 pushes the selection below the "
                f"aggregation",
                measure=name,
                workflow=wf.name,
                suggestion=f"move the predicate into "
                f"{measure.source!r}'s where= so it runs on the fact "
                f"scan: g_{{G,agg}}(sigma(D)) instead of "
                f"sigma(g_{{G,agg}}(D))",
            )

        # CSM302 — Property 1: distributive roll-up of a private
        # roll-up/basic collapses into one aggregation.
        if (
            measure.kind is MeasureKind.ROLLUP
            and measure.where is None
            and measure.agg is not None
        ):
            source = measures[measure.source]
            if (
                source.kind in (MeasureKind.BASIC, MeasureKind.ROLLUP)
                and source.hidden
                and consumers[measure.source] == [name]
                and source.agg is not None
                and source.where is None
                and measure.agg.function.kind is Kind.DISTRIBUTIVE
                and source.agg.function.kind is Kind.DISTRIBUTIVE
                and (
                    measure.agg.function.name,
                    source.agg.function.name,
                ) in _COLLAPSIBLE
            ):
                yield make(
                    CSM302,
                    f"{measure_ref(name, wf.name)}: "
                    f"{measure.agg.function.name}() over "
                    f"{measure.source!r}'s "
                    f"{source.agg.function.name}() collapses to a "
                    f"single {source.agg.function.name}() at "
                    f"{_gran_spec(measure.granularity)} (Property 1)",
                    measure=name,
                    workflow=wf.name,
                    suggestion=f"define {name!r} directly over "
                    f"{source.source or 'the fact table'} and drop "
                    f"{measure.source!r}",
                )

        # CSM304 — a window that reaches nowhere is a self match.
        if measure.kind is MeasureKind.MATCH:
            cond = measure.cond
            degenerate = (
                isinstance(cond, Sibling)
                and all(
                    before == 0 and after == 0
                    for before, after in cond.windows.values()
                )
            ) or (
                isinstance(cond, Lags)
                and all(
                    deltas == (0,) for deltas in cond.offsets.values()
                )
            )
            if degenerate:
                yield make(
                    CSM304,
                    f"{measure_ref(name, wf.name)}: {cond!r} matches "
                    f"only the region itself — the moving window "
                    f"machinery buys nothing",
                    measure=name,
                    workflow=wf.name,
                    suggestion=f"use derive({name!r}, "
                    f"{measure.source!r}) (a self match) or widen "
                    f"the window",
                )

    # CSM303 — identical basic aggregations: one scan group can serve
    # both consumers (the shared-sub-expression form of Property 5).
    seen: dict[tuple, str] = {}
    for name, measure in measures.items():
        if measure.kind is not MeasureKind.BASIC:
            continue
        signature = (
            measure.granularity.levels,
            repr(measure.agg),
            repr(measure.where),
        )
        first = seen.get(signature)
        if first is not None and (
            measure.hidden or measures[first].hidden
        ):
            yield make(
                CSM303,
                f"basic {measure_ref(name, wf.name)} duplicates "
                f"{first!r} (same granularity, aggregate, and "
                f"filter); one scan group can feed both consumers",
                measure=name,
                workflow=wf.name,
                related=(first,),
                suggestion=f"point {name!r}'s consumers at {first!r} "
                f"and delete the duplicate",
            )
        elif first is None:
            seen[signature] = name


#: All rule families, in evaluation order.
ALL_RULES = (
    wellformedness_rules,
    granularity_rules,
    streaming_rules,
    performance_rules,
)
