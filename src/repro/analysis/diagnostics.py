"""Diagnostic objects and the stable code registry.

Every rule of the workflow linter emits :class:`Diagnostic` instances
carrying a stable ``CSM###`` code, a severity, the offending measure,
a one-line explanation, and — where the rule can tell — a fix-it
suggestion.  Codes are grouped in blocks of one hundred by rule family:

- ``CSM0xx`` — well-formedness of the workflow DAG;
- ``CSM1xx`` — granularity and match-condition validity (§3.2);
- ``CSM2xx`` — streaming feasibility of the one-pass plan (§5.3,
  Table 6);
- ``CSM3xx`` — performance hints from the algebraic identities
  (Theorem 1, Properties 1-5);
- ``CSM4xx`` — cross-workflow sharing diagnostics emitted by the
  *workload* analyzer (:mod:`repro.analysis.workload`): findings about
  a set of workflows taken together, never about one in isolation.

The registry is append-only: a released code keeps its meaning forever
so that suppressions and dashboards written against ``--json`` output
stay valid across versions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` workflows are rejected by strict validation and by the
    measure service; ``WARNING`` flags plans that run but may behave
    pathologically; ``HINT`` marks rewrite opportunities.
    """

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        """Ordering key: errors first, hints last."""
        return {"error": 0, "warning": 1, "hint": 2}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    family: str
    severity: Severity
    title: str


#: Rule families, in presentation order.
FAMILIES = (
    "well-formedness",
    "match-validity",
    "streaming",
    "performance",
    "workload",
)

CODES: dict[str, CodeInfo] = {}


def _register(
    code: str, family: str, severity: Severity, title: str
) -> str:
    if code in CODES:
        raise ValueError(f"duplicate diagnostic code {code!r}")
    if family not in FAMILIES:
        raise ValueError(f"unknown rule family {family!r}")
    CODES[code] = CodeInfo(code, family, severity, title)
    return code

# -- well-formedness ----------------------------------------------------

CSM001 = _register(
    "CSM001", "well-formedness", Severity.ERROR,
    "dependency on an unknown measure",
)
CSM002 = _register(
    "CSM002", "well-formedness", Severity.ERROR,
    "measure dependencies form a cycle",
)
CSM003 = _register(
    "CSM003", "well-formedness", Severity.WARNING,
    "dead measure: hidden and feeds no output",
)
CSM004 = _register(
    "CSM004", "well-formedness", Severity.WARNING,
    "duplicate outputs computing the same measure",
)
CSM005 = _register(
    "CSM005", "well-formedness", Severity.ERROR,
    "workflow produces no visible outputs",
)

# -- granularity / match validity (§3.2) -------------------------------

CSM101 = _register(
    "CSM101", "match-validity", Severity.ERROR,
    "rollup source is not strictly finer than its target",
)
CSM102 = _register(
    "CSM102", "match-validity", Severity.ERROR,
    "match condition is invalid for the granularity pair",
)
CSM103 = _register(
    "CSM103", "match-validity", Severity.ERROR,
    "window or lag set on a dimension at ALL",
)
CSM104 = _register(
    "CSM104", "match-validity", Severity.ERROR,
    "keys measure granularity differs from the match target",
)
CSM105 = _register(
    "CSM105", "match-validity", Severity.ERROR,
    "combine inputs sit at different granularities",
)

# -- streaming feasibility (§5.3, Table 6) ------------------------------

CSM201 = _register(
    "CSM201", "streaming", Severity.WARNING,
    "holistic aggregate cannot flush in the one-pass plan",
)
CSM202 = _register(
    "CSM202", "streaming", Severity.WARNING,
    "stream is unordered under the scan key; table stays resident",
)
CSM203 = _register(
    "CSM203", "streaming", Severity.WARNING,
    "estimated resident footprint exceeds the memory budget",
)
CSM204 = _register(
    "CSM204", "streaming", Severity.WARNING,
    "measures sharing the scan have no common order prefix",
)

# -- performance hints (Theorem 1) --------------------------------------

CSM301 = _register(
    "CSM301", "performance", Severity.HINT,
    "selection is pushable below the aggregation (Property 2)",
)
CSM302 = _register(
    "CSM302", "performance", Severity.HINT,
    "aggregation chain collapses to one roll-up (Property 1)",
)
CSM303 = _register(
    "CSM303", "performance", Severity.HINT,
    "identical basic aggregations could share one scan group",
)
CSM304 = _register(
    "CSM304", "performance", Severity.HINT,
    "zero-extent window is a self match",
)

# -- cross-workflow sharing (workload analyzer) --------------------------

CSM401 = _register(
    "CSM401", "workload", Severity.HINT,
    "identical sub-aggregation computed in several workflows",
)
CSM402 = _register(
    "CSM402", "workload", Severity.HINT,
    "workflows share a fact scan; one pass can feed all",
)
CSM403 = _register(
    "CSM403", "workload", Severity.HINT,
    "one workload-wide sort order serves several sort/scan plans",
)
CSM404 = _register(
    "CSM404", "workload", Severity.HINT,
    "measure is rollup-derivable from another workflow's finer table",
)
CSM405 = _register(
    "CSM405", "workload", Severity.WARNING,
    "workflow is fingerprint-subsumed by another workflow",
)


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        code: Stable ``CSM###`` identifier (see :data:`CODES`).
        severity: Error / warning / hint.
        message: One-line explanation of what is wrong.
        measure: Name of the offending measure, when one is at fault.
        workflow: Name of the workflow the finding belongs to.
        suggestion: Optional fix-it hint ("did you mean ...").
        saving: Estimated cost-model saving, in abstract work units
            (Section 6), for findings that quantify a rewrite — the
            workload family (``CSM4xx``) always attaches one.
    """

    code: str
    severity: Severity
    message: str
    measure: str | None = None
    workflow: str | None = None
    suggestion: str | None = None
    related: tuple[str, ...] = field(default_factory=tuple)
    saving: float | None = None

    @property
    def family(self) -> str:
        """Rule family of this diagnostic's code."""
        return CODES[self.code].family

    def format(self) -> str:
        """Render as a one- or two-line compiler-style message."""
        where = ""
        if self.measure is not None:
            where = f" [{self.measure}]"
        line = (
            f"{self.severity.value} {self.code}{where}: {self.message}"
        )
        if self.saving is not None:
            line += f"\n  saves: ~{self.saving:.0f} work units"
        if self.suggestion:
            line += f"\n  fix: {self.suggestion}"
        return line

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form, used by ``repro lint --json`` and the
        measure service's HTTP error bodies."""
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "family": self.family,
            "message": self.message,
        }
        if self.measure is not None:
            payload["measure"] = self.measure
        if self.workflow is not None:
            payload["workflow"] = self.workflow
        if self.suggestion is not None:
            payload["suggestion"] = self.suggestion
        if self.related:
            payload["related"] = list(self.related)
        if self.saving is not None:
            payload["estimated_saving"] = self.saving
        return payload


def make(
    code: str,
    message: str,
    *,
    measure: str | None = None,
    workflow: str | None = None,
    suggestion: str | None = None,
    related: tuple[str, ...] = (),
    saving: float | None = None,
) -> Diagnostic:
    """Build a diagnostic with the code's registered severity."""
    return Diagnostic(
        code=code,
        severity=CODES[code].severity,
        message=message,
        measure=measure,
        workflow=workflow,
        suggestion=suggestion,
        related=related,
        saving=saving,
    )
