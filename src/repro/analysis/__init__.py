"""Static analysis of aggregation workflows (the ``CSM###`` linter).

Public surface::

    from repro.analysis import analyze
    report = analyze(workflow)
    if not report.ok:
        for diag in report.errors:
            print(diag.format())

Workload-level (cross-workflow) analysis::

    from repro.analysis import analyze_workload
    report = analyze_workload({"q1": wf1, "dash": wf2})
    report.codes()   # the CSM4xx sharing findings

See ``docs/analysis.md`` for the full code catalogue.
"""

from repro.analysis.analyzer import (
    DEFAULT_MEMORY_BUDGET,
    AnalysisContext,
    Report,
    analyze,
    canonical_diagnostics,
)
from repro.analysis.diagnostics import (
    CODES,
    FAMILIES,
    CodeInfo,
    Diagnostic,
    Severity,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import diagnostics_to_sarif
from repro.analysis.workload import (
    CompressionResult,
    SharedScanGroup,
    WorkloadAnalyzer,
    WorkloadReport,
    analyze_workload,
    compress_workload,
    measure_fingerprints,
    schema_fingerprint,
)

__all__ = [
    "ALL_RULES",
    "CODES",
    "DEFAULT_MEMORY_BUDGET",
    "FAMILIES",
    "AnalysisContext",
    "CodeInfo",
    "CompressionResult",
    "Diagnostic",
    "Report",
    "Severity",
    "SharedScanGroup",
    "WorkloadAnalyzer",
    "WorkloadReport",
    "analyze",
    "analyze_workload",
    "canonical_diagnostics",
    "compress_workload",
    "diagnostics_to_sarif",
    "measure_fingerprints",
    "schema_fingerprint",
]
