"""Static analysis of aggregation workflows (the ``CSM###`` linter).

Public surface::

    from repro.analysis import analyze
    report = analyze(workflow)
    if not report.ok:
        for diag in report.errors:
            print(diag.format())

See ``docs/analysis.md`` for the full code catalogue.
"""

from repro.analysis.analyzer import (
    DEFAULT_MEMORY_BUDGET,
    AnalysisContext,
    Report,
    analyze,
)
from repro.analysis.diagnostics import (
    CODES,
    FAMILIES,
    CodeInfo,
    Diagnostic,
    Severity,
)
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "CODES",
    "DEFAULT_MEMORY_BUDGET",
    "FAMILIES",
    "AnalysisContext",
    "CodeInfo",
    "Diagnostic",
    "Report",
    "Severity",
    "analyze",
]
