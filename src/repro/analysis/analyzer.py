"""The analyzer driver: run every rule family and collect a report.

:func:`analyze` is the single entry point used by ``repro lint``, by
``AggregationWorkflow.validate(strict=True)``, and by the measure
service's submit/ingest gate.  It walks the workflow first (families
(a), (b), (d) need no plan), then — only when the workflow is
structurally sound — compiles the AW-RA graph and the one-pass
streaming plan and runs the §5.3 feasibility rules over it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import (
    granularity_rules,
    performance_rules,
    streaming_rules,
    wellformedness_rules,
)
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.compile import CompiledGraph
    from repro.engine.plan import StreamingPlan
    from repro.workflow.workflow import AggregationWorkflow

#: Default resident-entry budget for CSM203, matching the single-scan
#: engine's default memory budget.
DEFAULT_MEMORY_BUDGET = 1_000_000


@dataclass
class AnalysisContext:
    """Everything a rule may look at.

    ``graph`` and ``plan`` are ``None`` when the workflow could not be
    compiled (the structural errors that prevented compilation are
    already in the report by then), so streaming rules must tolerate
    their absence.
    """

    workflow: AggregationWorkflow
    dataset_size: int | None = None
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    graph: CompiledGraph | None = None
    plan: StreamingPlan | None = None


@dataclass
class Report:
    """The analyzer's output: every diagnostic for one workflow."""

    workflow: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [
            d
            for d in self.diagnostics
            if d.severity is Severity.WARNING
        ]

    @property
    def hints(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.HINT
        ]

    @property
    def ok(self) -> bool:
        """True when the workflow has no error-level findings."""
        return not self.errors

    def codes(self) -> set[str]:
        """The distinct diagnostic codes present in this report."""
        return {d.code for d in self.diagnostics}

    def format(self) -> str:
        """Human-readable multi-line rendering for the CLI."""
        lines = [
            f"{self.workflow}: "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.hints)} hint(s)"
        ]
        lines.extend(d.format() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly form for ``repro lint --json`` and HTTP."""
        return {
            "workflow": self.workflow,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "hint": len(self.hints),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def analyze(
    workflow: AggregationWorkflow,
    *,
    dataset_size: int | None = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> Report:
    """Statically analyze ``workflow`` and return a :class:`Report`.

    Never raises for a bad workflow — badness *is* the output.  Only
    programming errors inside the analyzer itself escape.
    """
    ctx = AnalysisContext(
        workflow=workflow,
        dataset_size=dataset_size,
        memory_budget=memory_budget,
    )
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(wellformedness_rules(ctx))
    diagnostics.extend(granularity_rules(ctx))
    diagnostics.extend(performance_rules(ctx))

    # Plan-level rules only make sense for a compilable workflow; an
    # error found above usually means compilation would raise anyway.
    if not any(d.severity is Severity.ERROR for d in diagnostics):
        _attach_plan(ctx)
        diagnostics.extend(streaming_rules(ctx))

    return Report(
        workflow=workflow.name,
        diagnostics=canonical_diagnostics(diagnostics),
    )


def canonical_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> list[Diagnostic]:
    """Deduplicate and stably order diagnostics for reporting.

    Two rules can legitimately derive the same finding (and workload
    analysis aggregates findings from several passes); identical
    diagnostics collapse to one.  The sort key is total — severity,
    code, measure, workflow, then the message text — so ``--json``
    output is byte-stable across runs and independent of
    rule-registration order.
    """
    unique = list(dict.fromkeys(diagnostics))
    unique.sort(
        key=lambda d: (
            d.severity.rank,
            d.code,
            d.measure or "",
            d.workflow or "",
            d.message,
        )
    )
    return unique


def _attach_plan(ctx: AnalysisContext) -> None:
    """Compile the workflow and its streaming plan, best-effort.

    Compilation can still fail on workflows the structural rules pass
    (the builder API prevents most of those, but hand-built measure
    dicts can reach here); the streaming family simply goes unchecked
    then, which is the conservative choice for warnings.
    """
    from repro.engine.compile import compile_workflow
    from repro.engine.plan import build_streaming_plan
    from repro.engine.sort_scan import default_sort_key

    try:
        graph = compile_workflow(ctx.workflow)
        plan = build_streaming_plan(
            graph, default_sort_key(graph), ctx.dataset_size
        )
    except ReproError:
        return
    ctx.graph = graph
    ctx.plan = plan
