"""Timing harness shared by all figure drivers."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import MemoryBudgetExceeded
from repro.engine.interfaces import Engine
from repro.storage.sink import NullSink
from repro.storage.table import Dataset


@dataclass
class BenchRow:
    """One measured point: an engine on one configuration."""

    figure: str
    config: str
    engine: str
    seconds: float | None  # None = did not complete (e.g. OOM)
    sort_seconds: float = 0.0
    scan_seconds: float = 0.0
    peak_entries: int = 0
    note: str = ""
    #: Full ``EvalStats.to_dict()`` payload (``None`` for failed runs);
    #: carried so ``repro bench --json`` can emit machine-readable rows.
    stats: dict | None = None

    @property
    def seconds_text(self) -> str:
        if self.seconds is None:
            return "n/a"
        return f"{self.seconds:.3f}"


def time_engine(
    engine: Engine,
    dataset: Dataset,
    workflow,
    figure: str,
    config: str,
    label: str | None = None,
) -> BenchRow:
    """Run one engine once, discarding values (NullSink), and record it.

    A :class:`~repro.errors.MemoryBudgetExceeded` failure becomes a
    ``seconds=None`` row — the way the paper only plots the single-scan
    algorithm at sizes it survives.
    """
    try:
        result = engine.evaluate(dataset, workflow, sink=NullSink())
    except MemoryBudgetExceeded as exc:
        return BenchRow(
            figure,
            config,
            label or engine.name,
            None,
            note=f"exceeded budget ({exc.used}>{exc.budget})",
        )
    stats = result.stats
    return BenchRow(
        figure,
        config,
        label or engine.name,
        stats.total_seconds,
        sort_seconds=stats.sort_seconds,
        scan_seconds=stats.scan_seconds,
        peak_entries=stats.peak_entries,
        note=stats.notes,
        stats=stats.to_dict(),
    )


def run_engines(
    engines: Sequence[tuple[str, Engine]],
    dataset: Dataset,
    workflow,
    figure: str,
    config: str,
) -> list[BenchRow]:
    """Time each labelled engine on one (dataset, workflow) point."""
    return [
        time_engine(engine, dataset, workflow, figure, config, label=label)
        for label, engine in engines
    ]


def format_table(title: str, rows: Sequence[BenchRow]) -> str:
    """Render rows as the kind of series table the paper's figures plot.

    One line per (config, engine) with execution time, the sort/scan
    breakdown, and the peak memory footprint in hash-table entries.
    """
    header = (
        f"{'config':<24} {'engine':<12} {'seconds':>9} "
        f"{'sort':>8} {'scan':>8} {'peak-entries':>13}  note"
    )
    lines = [f"== {title} ==", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.config:<24} {row.engine:<12} {row.seconds_text:>9} "
            f"{row.sort_seconds:>8.3f} {row.scan_seconds:>8.3f} "
            f"{row.peak_entries:>13}  {row.note}"
        )
    return "\n".join(lines)
