"""The engine-vs-engine SQL sheet behind ``BENCH_sql.json``.

The paper's Section 7 baseline is "a commercial RDBMS" running the
Tables 2-4 SQL by hand; this sheet makes that comparison honest and
reproducible: every shipped query family runs on the in-memory engines
(the relational baseline and the sort/scan algorithm) *and* on a real
SQL engine through :mod:`repro.backends`, on the same generated
dataset.  Each SQL point is verified — ``equal_rows`` against the
sort/scan tables at the documented oracle tolerance — before its
timing is recorded, so the sheet can never quietly compare engines
that disagree.

Engines: ``sqlite`` always; ``duckdb`` when importable, otherwise the
payload records it as unavailable with the reason (never an error).
``repro bench --figure sql --json BENCH_sql.json`` writes the artifact
CI uploads; ``tests/bench/test_sql_bench.py`` guards the layout.
"""

from __future__ import annotations

import math
import time

from repro.bench.harness import BenchRow
from repro.data.honeynet import honeynet_dataset
from repro.data.synthetic import synthetic_dataset
from repro.engine.naive import RelationalEngine
from repro.engine.sort_scan import SortScanEngine
from repro.queries.registry import QUERY_FAMILIES
from repro.testkit.differential import SQL_ORACLE_TOLERANCE

#: Version of the BENCH_sql.json payload layout.
SCHEMA_VERSION = 1

#: Families swept, alphabetical for a stable artifact.
QUERY_SWEEP = tuple(sorted(QUERY_FAMILIES))

#: Dataset shape at scale=1.0 (matching the fig6/fig7 drivers).
BASE_SYNTHETIC = 20_000
BASE_BACKGROUND = 200_000

METRIC_DEFINITIONS = {
    "geomean_sqlite_vs_sortscan": (
        "geometric mean over families of sqlite wall-clock (load + "
        "queries) divided by sort/scan wall-clock; >1 means the "
        "fused one-pass algorithm beats a real SQL engine running "
        "the paper's own per-measure translation"
    ),
    "all_verified": (
        "every executed SQL point matched the sort/scan engine "
        "row-for-row (equal_rows at the documented oracle tolerance) "
        "before its timing was recorded"
    ),
    "sql_oracle_tolerance": (
        "relative tolerance of the verification; looser than the "
        "in-memory engines' mutual 1e-9 because sqlite compiles "
        "var/stddev through the moment formula"
    ),
}


def _generate(family: str, scale: float, seed: int):
    schema_family, build = QUERY_FAMILIES[family]
    if schema_family == "network":
        background = max(2_000, int(BASE_BACKGROUND * scale))
        dataset = honeynet_dataset(background, seed=seed)
    else:
        count = max(1_000, int(BASE_SYNTHETIC * scale))
        dataset = synthetic_dataset(count, seed=seed)
    return dataset, build(dataset.schema)


def _timed_eval(engine, dataset, workflow):
    started = time.perf_counter()
    result = engine.evaluate(dataset, workflow)
    return result, time.perf_counter() - started


def sql_bench(
    scale: float = 1.0, seed: int = 0
) -> tuple[list[BenchRow], dict]:
    """Run the sweep and build the JSON payload.

    Returns ``(rows, payload)``: rows feed ``format_table``, payload is
    the ``BENCH_sql.json`` document.
    """
    from repro.backends import backend_unavailable_reason, get_backend

    engines = {
        name: backend_unavailable_reason(name)
        for name in ("sqlite", "duckdb")
    }
    points: list[dict] = []
    rows: list[BenchRow] = []
    ratios: list[float] = []
    all_verified = True
    for family in QUERY_SWEEP:
        dataset, workflow = _generate(family, scale, seed)
        config = f"{family} |D|={len(dataset)}"
        reference, sortscan_seconds = _timed_eval(
            SortScanEngine(optimize=True), dataset, workflow
        )
        __, db_seconds = _timed_eval(
            RelationalEngine(), dataset, workflow
        )
        rows.append(
            BenchRow("sql", config, "SortScan", sortscan_seconds)
        )
        rows.append(BenchRow("sql", config, "DB", db_seconds))
        for engine, reason in engines.items():
            if reason is not None:
                continue
            backend = get_backend(engine)
            started = time.perf_counter()
            result = backend.evaluate(dataset, workflow)
            seconds = time.perf_counter() - started
            verified = all(
                reference.tables[name].equal_rows(
                    result.tables[name], tol=SQL_ORACLE_TOLERANCE
                )
                for name in workflow.outputs()
                if name not in result.skipped
            )
            all_verified = all_verified and verified
            if engine == "sqlite" and sortscan_seconds > 0:
                ratios.append(seconds / sortscan_seconds)
            points.append(
                {
                    "family": family,
                    "engine": engine,
                    "records": len(dataset),
                    "seconds": seconds,
                    "load_seconds": result.timings.get("load", 0.0),
                    "sortscan_seconds": sortscan_seconds,
                    "db_seconds": db_seconds,
                    "measures": len(result.tables),
                    "skipped": dict(result.skipped),
                    "verified": verified,
                }
            )
            rows.append(
                BenchRow(
                    "sql",
                    config,
                    engine,
                    seconds,
                    note=(
                        "verified"
                        if verified
                        else "MISMATCH vs SortScan"
                    )
                    + (
                        f", {len(result.skipped)} skipped"
                        if result.skipped
                        else ""
                    ),
                )
            )
    geomean = (
        math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if ratios
        else None
    )
    payload = {
        "bench": "sql",
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "families": list(QUERY_SWEEP),
        "engines": {
            name: {"available": reason is None, "reason": reason}
            for name, reason in engines.items()
        },
        "metrics": {
            "geomean_sqlite_vs_sortscan": geomean,
            "all_verified": all_verified,
            "sql_oracle_tolerance": SQL_ORACLE_TOLERANCE,
        },
        "definitions": METRIC_DEFINITIONS,
        "points": points,
    }
    return rows, payload


def sql_rows(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """The ``ALL_FIGURES``-shaped driver (rows only)."""
    rows, __ = sql_bench(scale=scale, seed=seed)
    return rows
