"""Benchmark harness: regenerates every figure of the paper's Section 7.

:mod:`repro.bench.harness` runs engines and collects timing rows;
:mod:`repro.bench.figures` holds one driver per paper figure, each
printing the same series the figure plots (engine × parameter sweep →
execution time) plus memory footprints.  The ``benchmarks/`` directory
wires these into pytest-benchmark targets.
"""

from repro.bench.harness import (
    BenchRow,
    format_table,
    run_engines,
    time_engine,
)
from repro.bench import figures

__all__ = [
    "BenchRow",
    "run_engines",
    "time_engine",
    "format_table",
    "figures",
]
