"""The columnar batched-vs-scalar benchmark behind ``BENCH_columnar.json``.

This driver is the perf target sheet's data source (see
``docs/metrics_targets.md``): it times every engine's scalar
(``batch_size=0``) and batched scan paths on the distributive-only
Fig-6-family workloads and reports the three sheet metrics —
geometric-mean speedup, total-runtime reduction, and the
zero-regression count.  ``repro bench --figure columnar --json
BENCH_columnar.json`` writes the machine-readable artifact CI uploads.

The headline workloads are coarse-granularity aggregation lattices in
the shape of Figures 6(c)/6(d) — pure distributive aggregates (sum,
count, min, max) at the L1/L2 granularities the paper's Q1 parent
region set uses — because that is where batch-at-a-time execution pays
off: thousands of rows fold into each region per batch.  Q1 itself
(Figure 6(a), seven base-granularity children) rides along as a
non-headline reference point: its regions are nearly distinct per
record, so segments degenerate to single rows and the batched path
merely matches the scalar one.  Without numpy every point becomes an
``n/a`` row (skip-with-reason, never an error).
"""

from __future__ import annotations

import math

from repro.bench.harness import BenchRow, time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.queries.q1_child_parent import q1_workflow
from repro.storage.columnar import HAVE_NUMPY
from repro.workflow.workflow import AggregationWorkflow

#: Version of the BENCH_columnar.json payload layout; the schema guard
#: test (tests/bench/test_columnar_bench.py) pins the key structure.
SCHEMA_VERSION = 1

#: Rows per batch for the benchmark runs.  Larger than the engines'
#: 4k default: the sheet workloads are coarse, so 16k-row batches
#: amortize per-batch costs further while staying in the 4-64k window.
BENCH_BATCH_SIZE = 16_384

#: |D| at scale=1.0 — the 16M point of the paper's sweep at the
#: figures' 1:100 reduction.
BASE_SIZE = 160_000

#: The perf sheet's headline target (docs/metrics_targets.md).
TARGET_GEOMEAN_SPEEDUP = 10.0

METRIC_DEFINITIONS = {
    "geometric_mean_speedup": (
        "geometric mean, over headline (workload, engine) points, of "
        "scalar_seconds / batched_seconds; scalar is the same engine "
        "with batch_size=0"
    ),
    "total_runtime_reduction": (
        "1 - sum(batched_seconds) / sum(scalar_seconds) over headline "
        "points (fraction of total scalar wall-clock eliminated)"
    ),
    "zero_regression_count": (
        "number of measured points, headline or not, with speedup < "
        "1.0; the sheet target is 0"
    ),
    "headline": (
        "points counted by geometric_mean_speedup / "
        "total_runtime_reduction: the distributive-only Fig-6-family "
        "lattices; reference points (headline=false) are reported but "
        "not averaged"
    ),
}


def skip_reason() -> str | None:
    """Why the benchmark cannot measure anything (``None`` = it can)."""
    if not HAVE_NUMPY:
        return "numpy unavailable: the columnar batched path is disabled"
    return None


def _lattice_workflow(schema) -> AggregationWorkflow:
    """Figure 6(c)-shaped distributive lattice: sum/min/max/count
    basics at coarse granularities plus a distributive roll-up."""
    wf = AggregationWorkflow(schema, name="fig6c-lattice")
    wf.basic("sum_d0", {"d0": "d0.L2"}, agg=("sum", "v"))
    wf.basic(
        "sum_d0d1", {"d0": "d0.L2", "d1": "d1.L2"}, agg=("sum", "v")
    )
    wf.basic("min_d1", {"d1": "d1.L2"}, agg=("min", "v"))
    wf.basic("max_d2", {"d2": "d2.L2"}, agg=("max", "v"))
    wf.basic(
        "cnt_d2d3", {"d2": "d2.L2", "d3": "d3.L2"}, agg="count"
    )
    wf.rollup("sum_total", {}, source="sum_d0", agg=("sum", "M"))
    return wf


def _count_workflow(schema) -> AggregationWorkflow:
    """Figure 6(d)-shaped sweep: COUNT region sets at L1/L2."""
    wf = AggregationWorkflow(schema, name="fig6d-counts")
    for i, spec in enumerate(
        (
            {"d0": "d0.L1"},
            {"d1": "d1.L1"},
            {"d0": "d0.L2", "d1": "d1.L2"},
            {"d2": "d2.L1"},
        )
    ):
        wf.basic(f"cnt{i}", spec, agg="count")
    return wf


#: (workload name, workflow builder, counts toward the headline mean?)
WORKLOADS = (
    ("fig6c-lattice", _lattice_workflow, True),
    ("fig6d-counts", _count_workflow, True),
    ("fig6a-q1-children7", q1_workflow, False),
)

#: (engine label, factory taking the effective batch size)
ENGINES = (
    ("single-scan", lambda bs: SingleScanEngine(batch_size=bs)),
    ("sort-scan", lambda bs: SortScanEngine(batch_size=bs)),
)


def _geomean(values: list[float]) -> float | None:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def columnar_bench(
    scale: float = 1.0,
    seed: int = 0,
    batch_size: int = BENCH_BATCH_SIZE,
) -> tuple[list[BenchRow], dict]:
    """Measure scalar vs batched and build the JSON payload.

    Returns ``(rows, payload)``: ``rows`` feed ``format_table`` (one
    ``[scalar]`` and one ``[batched]`` row per workload and engine),
    ``payload`` is the ``BENCH_columnar.json`` document.
    """
    from repro.bench.figures import _on_disk

    size = max(2_000, int(BASE_SIZE * scale))
    rows: list[BenchRow] = []
    speedups: list[dict] = []
    reason = skip_reason()
    if reason is None:
        generated = synthetic_dataset(size, seed=seed)
        with _on_disk(generated) as dataset:
            for workload, build, headline in WORKLOADS:
                workflow = build(generated.schema)
                for label, factory in ENGINES:
                    scalar = time_engine(
                        factory(0), dataset, workflow, "columnar",
                        workload, label=f"{label}[scalar]",
                    )
                    batched = time_engine(
                        factory(batch_size), dataset, workflow,
                        "columnar", workload,
                        label=f"{label}[batched]",
                    )
                    rows += [scalar, batched]
                    speedup = None
                    if scalar.seconds and batched.seconds:
                        speedup = scalar.seconds / batched.seconds
                    speedups.append(
                        {
                            "workload": workload,
                            "engine": label,
                            "rows": size,
                            "headline": headline,
                            "scalar_seconds": scalar.seconds,
                            "batched_seconds": batched.seconds,
                            "speedup": speedup,
                        }
                    )
    else:
        for workload, __, headline in WORKLOADS:
            for label, __factory in ENGINES:
                rows.append(
                    BenchRow(
                        "columnar", workload, label, None, note=reason
                    )
                )
                speedups.append(
                    {
                        "workload": workload,
                        "engine": label,
                        "rows": size,
                        "headline": headline,
                        "scalar_seconds": None,
                        "batched_seconds": None,
                        "speedup": None,
                    }
                )

    headline_points = [
        point
        for point in speedups
        if point["headline"] and point["speedup"] is not None
    ]
    scalar_total = sum(
        point["scalar_seconds"] for point in headline_points
    )
    batched_total = sum(
        point["batched_seconds"] for point in headline_points
    )
    payload = {
        "bench": "columnar",
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "rows_per_workload": size,
        "batch_size": batch_size,
        "skipped": reason,
        "metrics": {
            "geometric_mean_speedup": _geomean(
                [point["speedup"] for point in headline_points]
            ),
            "total_runtime_reduction": (
                1.0 - batched_total / scalar_total
                if scalar_total
                else None
            ),
            "zero_regression_count": sum(
                1
                for point in speedups
                if point["speedup"] is not None
                and point["speedup"] < 1.0
            ),
            "target_geometric_mean_speedup": TARGET_GEOMEAN_SPEEDUP,
        },
        "definitions": METRIC_DEFINITIONS,
        "speedups": speedups,
    }
    return rows, payload


def columnar_rows(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """The ``ALL_FIGURES``-shaped driver (rows only)."""
    rows, __ = columnar_bench(scale=scale, seed=seed)
    return rows
