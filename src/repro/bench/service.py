"""The sharded-service benchmark behind ``BENCH_service.json``.

Measures what the cluster layer is *for*: sustained read throughput
while ingest is running.  A single-store service serializes every
read behind the ingest fold (one lock, one state table to rewrite);
with N range-partitioned shards a time-ordered delta lands on the one
hot shard, so its fold touches ~1/N of the state *and* reads against
the other shards never wait on it.

The scenario is the paper's running network-log example as a live
feed: bootstrap over the full key range, then continuous tail-append
deltas (new time values — monotonically increasing partition keys)
while reader threads hammer point and range queries across the whole
range.  Reported per shard count:

- ``read_qps`` — completed reads / wall-clock, while ingest runs;
- ``p50_ms`` / ``p99_ms`` — read latency percentiles (the p99 is the
  convoy detector: reads stuck behind a fold);
- ``ingests`` / ``ingest_seconds_avg`` — folds completed and their
  mean cost.

The sheet metric is ``read_scaling_4x`` = read_qps(4 shards) /
read_qps(1 shard), target ≥ 2.5 on a single box (the win is lock and
work decomposition, not extra cores).  ``repro bench --figure service
--json BENCH_service.json`` writes the artifact CI uploads.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time

from repro.bench.harness import BenchRow
from repro.schema.dataset_schema import synthetic_schema
from repro.service.cluster import bootstrap_cluster
from repro.workflow.workflow import AggregationWorkflow

#: Version of the BENCH_service.json payload layout.
SCHEMA_VERSION = 1

#: The sheet's headline target: read throughput at 4 shards over 1,
#: measured under concurrent ingest.
TARGET_READ_SCALING = 2.5

#: Shard counts of the sweep; 1 is the baseline.
SHARD_COUNTS = (1, 2, 4)

#: Benchmark shape at scale=1.0.
BASE_BOOTSTRAP = 24_000
BASE_DELTA = 400
READERS = 4
MEASURE_SECONDS = 8.0

#: Offered ingest load: one delta fold per this many seconds, the same
#: arrival rate for every shard count.  A feed that instead folds
#: back-to-back would do *more* folds on a faster cluster and burn the
#: freed CPU itself, hiding exactly the effect the sheet measures.
INGEST_INTERVAL = 0.25

#: Base cardinality of every dimension (fanout 16, 3 levels).
BASE_T = 4_096

#: Deltas update keys in the top quarter of the time range — the keys
#: the last shard owns.  Sampling them from the bootstrap pool keeps
#: the state tables a fixed size (pure updates, no growth), so the
#: fold cost stays ∝ the owning shard's table throughout the window.
HOT_LO = 3_072

METRIC_DEFINITIONS = {
    "read_qps": (
        "completed point+range reads per second across all reader "
        "threads, measured while a background thread folds "
        "tail-append deltas continuously"
    ),
    "p99_ms": (
        "99th-percentile read latency in milliseconds over the same "
        "window; the convoy detector — reads queued behind an ingest "
        "fold land here"
    ),
    "read_scaling_4x": (
        "read_qps at 4 shards / read_qps at 1 shard, same box, same "
        "workload; the target is lock/work decomposition, not core "
        "count, so it holds on a single CPU"
    ),
    "ingest_seconds_avg": (
        "mean wall-clock of one two-phase cluster ingest (journal "
        "write through manifest swap) during the window"
    ),
}


def _bench_workflow(schema) -> AggregationWorkflow:
    """Mergeable-only workflow: every ingest is fully incremental.

    d0 is the time-like partition dimension.  ``Count`` is keyed at the
    base level of two 4096-value dimensions, so its state table is the
    size of the fact key-set — the table each fold has to rewrite, and
    the thing sharding divides.
    """
    wf = AggregationWorkflow(schema, name="service-bench")
    wf.basic("Count", {"d0": "d0.L0", "d1": "d1.L0"}, agg="count")
    wf.basic("Total", {"d0": "d0.L0"}, agg=("sum", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


def _records(rng: random.Random, count: int, t_lo: int, t_hi: int):
    """Records with d0 (time) drawn from [t_lo, t_hi)."""
    return [
        (
            rng.randrange(t_lo, t_hi),
            rng.randrange(BASE_T),
            rng.randrange(BASE_T),
            round(rng.random(), 6),
        )
        for __ in range(count)
    ]


class _IngestFeed(threading.Thread):
    """Folds hot-tail update deltas into the cluster until stopped."""

    def __init__(
        self,
        cluster,
        rng: random.Random,
        pool: list,
        delta: int,
    ) -> None:
        super().__init__(daemon=True, name="bench-ingest")
        self.cluster = cluster
        self.rng = rng
        # Resample bootstrap records whose time lands in the hot tail:
        # every delta re-touches keys the last shard already owns, so
        # state size (and with it the fold cost) stays flat.
        self.pool = [rec for rec in pool if rec[0] >= HOT_LO]
        self.delta = delta
        self.stop = threading.Event()
        self.count = 0
        self.seconds = 0.0
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            deadline = time.perf_counter()
            while not self.stop.is_set():
                batch = self.rng.choices(self.pool, k=self.delta)
                started = time.perf_counter()
                self.cluster.ingest(batch)
                done = time.perf_counter()
                self.seconds += done - started
                self.count += 1
                # Hold the offered rate constant: next fold starts one
                # INGEST_INTERVAL after the previous one *should* have,
                # with no catch-up burst when a fold overruns.
                deadline = max(deadline + INGEST_INTERVAL, done)
                self.stop.wait(max(0.0, deadline - done))
        except BaseException as exc:  # pragma: no cover - surfaced below
            self.error = exc


class _Reader(threading.Thread):
    """One reader: random point/range queries, latencies recorded.

    Keys come from the bootstrap pool (they exist), uniformly over the
    whole time range — so with N shards only ~1/N of reads land on the
    shard the feed is folding into.
    """

    def __init__(
        self, cluster, seed: int, pool: list, stop: threading.Event
    ) -> None:
        super().__init__(daemon=True, name=f"bench-reader-{seed}")
        self.cluster = cluster
        self.rng = random.Random(seed)
        self.pool = pool
        self.stop = stop
        self.latencies: list[float] = []
        self.error: BaseException | None = None

    def run(self) -> None:
        rng = self.rng
        pool = self.pool
        try:
            while not self.stop.is_set():
                rec = pool[rng.randrange(len(pool))]
                started = time.perf_counter()
                if rng.random() < 0.8:
                    self.cluster.point(
                        "Count", (rec[0], rec[1]), default=0
                    )
                else:
                    self.cluster.range("Total", (rec[0],))
                self.latencies.append(time.perf_counter() - started)
        except BaseException as exc:  # pragma: no cover - surfaced below
            self.error = exc


def _percentile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _measure_config(
    num_shards: int,
    seed: int,
    bootstrap_size: int,
    delta_size: int,
    seconds: float,
    readers: int,
) -> dict:
    rng = random.Random(seed)
    schema = synthetic_schema(num_dimensions=3, levels=3, fanout=16)
    workflow = _bench_workflow(schema)
    base = _records(rng, bootstrap_size, 0, BASE_T)
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as root:
        cluster = bootstrap_cluster(
            f"{root}/cluster", workflow, base, num_shards=num_shards
        )
        try:
            stop = threading.Event()
            feed = _IngestFeed(
                cluster, random.Random(seed + 1), base, delta_size
            )
            pool = [
                _Reader(cluster, seed + 10 + i, base, stop)
                for i in range(readers)
            ]
            feed.start()
            started = time.perf_counter()
            for reader in pool:
                reader.start()
            time.sleep(seconds)
            stop.set()
            for reader in pool:
                reader.join()
            elapsed = time.perf_counter() - started
            feed.stop.set()
            feed.join()
            for worker in (feed, *pool):
                if worker.error is not None:
                    raise worker.error
        finally:
            cluster.close()
    latencies = sorted(
        latency
        for reader in pool
        for latency in reader.latencies
    )
    return {
        "shards": num_shards,
        "reads": len(latencies),
        "read_qps": len(latencies) / elapsed if elapsed else None,
        "p50_ms": (_percentile(latencies, 0.50) or 0) * 1e3 or None,
        "p99_ms": (_percentile(latencies, 0.99) or 0) * 1e3 or None,
        "max_ms": latencies[-1] * 1e3 if latencies else None,
        "ingests": feed.count,
        "ingest_seconds_avg": (
            feed.seconds / feed.count if feed.count else None
        ),
        "window_seconds": elapsed,
    }


def service_bench(
    scale: float = 1.0,
    seed: int = 0,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    readers: int = READERS,
) -> tuple[list[BenchRow], dict]:
    """Run the sweep and build the JSON payload.

    Returns ``(rows, payload)``: rows feed ``format_table`` (one row
    per shard count), payload is the ``BENCH_service.json`` document.
    """
    bootstrap_size = max(2_000, int(BASE_BOOTSTRAP * scale))
    delta_size = max(50, int(BASE_DELTA * scale))
    seconds = max(2.0, MEASURE_SECONDS * min(1.0, scale * 2))

    points = []
    rows: list[BenchRow] = []
    for num_shards in shard_counts:
        point = _measure_config(
            num_shards,
            seed,
            bootstrap_size,
            delta_size,
            seconds,
            readers,
        )
        points.append(point)
        rows.append(
            BenchRow(
                "service",
                f"{num_shards}-shard",
                "cluster[local]",
                point["window_seconds"],
                note=(
                    f"{point['read_qps']:.0f} q/s, "
                    f"p99={point['p99_ms']:.1f}ms, "
                    f"{point['ingests']} ingests"
                ),
            )
        )

    by_shards = {point["shards"]: point for point in points}
    base_qps = (by_shards.get(1) or {}).get("read_qps")
    four_qps = (by_shards.get(4) or {}).get("read_qps")
    scaling = (
        four_qps / base_qps if base_qps and four_qps else None
    )
    payload = {
        "bench": "service",
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "bootstrap_records": bootstrap_size,
        "delta_records": delta_size,
        "reader_threads": readers,
        "window_seconds": seconds,
        "metrics": {
            "read_scaling_4x": scaling,
            "target_read_scaling_4x": TARGET_READ_SCALING,
            "baseline_read_qps": base_qps,
            "four_shard_read_qps": four_qps,
            "p99_improvement_4x": (
                by_shards[1]["p99_ms"] / by_shards[4]["p99_ms"]
                if by_shards.get(1, {}).get("p99_ms")
                and by_shards.get(4, {}).get("p99_ms")
                else None
            ),
        },
        "definitions": METRIC_DEFINITIONS,
        "points": points,
    }
    return rows, payload


def service_rows(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """The ``ALL_FIGURES``-shaped driver (rows only)."""
    rows, __ = service_bench(scale=scale, seed=seed)
    return rows
