"""One driver per figure of the paper's evaluation (Section 7).

Every driver takes a ``scale`` factor applied to the dataset sizes so
the same code serves quick CI runs and fuller reproductions.  The
paper's 2M/4M/16M/64M synthetic datasets map to 20k/40k/160k/640k at
``scale=1.0`` (a 1:100 reduction; see DESIGN.md's substitution table —
relative engine ordering is what the figures assert, and that is
scale-invariant for these algorithms).

Engine labels follow the paper's legends: ``DB`` is the relational
baseline, ``SortScan`` the one-pass sort/scan algorithm, and
``SingleScan`` the unsorted single-pass algorithm of Section 5.1.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from collections.abc import Iterator

from repro.bench.harness import BenchRow, run_engines, time_engine
from repro.data.honeynet import honeynet_dataset
from repro.data.synthetic import synthetic_dataset
from repro.storage.flatfile import FlatFileDataset, write_flatfile
from repro.storage.table import Dataset, InMemoryDataset
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.queries.combined import combined_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow

#: Paper sizes 2M/4M/16M/64M, scaled 1:100.
SIZE_SWEEP = (20_000, 40_000, 160_000, 640_000)

#: Single-scan memory budget (entries) modelling the paper's 1 GB box:
#: the smallest dataset fits, the larger ones do not (Figure 6(a) shows
#: the single-scan series at 2M only).
SINGLE_SCAN_BUDGET = 150_000


def _sizes(scale: float) -> list[int]:
    return [max(1000, int(size * scale)) for size in SIZE_SWEEP]


def _budget(scale: float) -> int:
    """The common working-memory budget (entries) at this scale.

    Every engine runs under the same budget, modelling the paper's
    1 GB testbed: the relational baseline falls back to per-query-block
    sort-grouping, the single-scan algorithm fails outright on datasets
    whose state exceeds it, and the sort/scan engine's footprint stays
    far below it by design.
    """
    return int(SINGLE_SCAN_BUDGET * max(scale, 0.05))


@contextlib.contextmanager
def _on_disk(dataset: InMemoryDataset) -> Iterator[Dataset]:
    """Materialize a generated dataset as a flat file for the run.

    The paper's experiments read flat files from disk ("the datasets
    were stored in flat files as the input for our algorithm"), which
    is what makes the relational baseline's per-measure re-scans and
    the sort/scan engine's single pass genuinely different I/O costs.
    """
    fd, path = tempfile.mkstemp(prefix="awra-bench-", suffix=".bin")
    os.close(fd)
    try:
        write_flatfile(path, dataset.schema, dataset.records)
        yield FlatFileDataset(path, dataset.schema)
    finally:
        with contextlib.suppress(OSError):
            os.remove(path)


def fig6a(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """Figure 6(a): Q1 (child/parent, 7 children) over dataset sizes."""
    rows: list[BenchRow] = []
    for size in _sizes(scale):
        generated = synthetic_dataset(size, seed=seed)
        workflow = q1_workflow(generated.schema, num_children=7)
        with _on_disk(generated) as dataset:
            rows += run_engines(
                [
                    ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                    ("SortScan", SortScanEngine(optimize=True)),
                    (
                        "SingleScan",
                        SingleScanEngine(
                            memory_budget_entries=_budget(scale)
                        ),
                    ),
                ],
                dataset,
                workflow,
                "fig6a",
                f"|D|={size}",
            )
    return rows


def fig6b(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """Figure 6(b): Q2 sibling chains (depth 2 and 7) over sizes."""
    rows: list[BenchRow] = []
    for size in _sizes(scale):
        generated = synthetic_dataset(size, seed=seed)
        with _on_disk(generated) as dataset:
            for depth in (2, 7):
                workflow = q2_workflow(generated.schema, depth=depth)
                rows += run_engines(
                    [
                        (
                            f"DB({depth}-chain)",
                            RelationalEngine(
                                memory_budget_entries=_budget(scale)
                            ),
                        ),
                        (f"SortScan({depth}-chain)", SortScanEngine(
                            optimize=True
                        )),
                    ],
                    dataset,
                    workflow,
                    "fig6b",
                    f"|D|={size} depth={depth}",
                )
    return rows


def fig6c(
    scale: float = 1.0, seed: int = 0, size: int | None = None
) -> list[BenchRow]:
    """Figure 6(c): #dependent child measures 2..6 at fixed |D|."""
    if size is None:
        size = _sizes(scale)[-1]  # the paper fixes |D| = 64M
    generated = synthetic_dataset(size, seed=seed)
    rows: list[BenchRow] = []
    with _on_disk(generated) as dataset:
        for num_children in range(2, 7):
            workflow = q1_workflow(
                generated.schema, num_children=num_children
            )
            rows += run_engines(
                [
                    ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                    ("SortScan", SortScanEngine(optimize=True)),
                ],
                dataset,
                workflow,
                "fig6c",
                f"children={num_children}",
            )
    return rows


def fig6d(
    scale: float = 1.0, seed: int = 0, size: int | None = None
) -> list[BenchRow]:
    """Figure 6(d): #sibling chains 2..7 at fixed |D|."""
    if size is None:
        size = _sizes(scale)[-1]
    generated = synthetic_dataset(size, seed=seed)
    rows: list[BenchRow] = []
    with _on_disk(generated) as dataset:
        for num_chains in range(2, 8):
            workflow = q2_workflow(
                generated.schema, depth=2, num_chains=num_chains
            )
            rows += run_engines(
                [
                    ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                    ("SortScan", SortScanEngine(optimize=True)),
                ],
                dataset,
                workflow,
                "fig6d",
                f"chains={num_chains}",
            )
    return rows


def fig6e(scale: float = 1.0, seed: int = 0) -> list[BenchRow]:
    """Figure 6(e): sort vs scan cost breakdown for Q1 and Q2."""
    sizes = _sizes(scale)
    small, large = sizes[1], sizes[-1]
    rows: list[BenchRow] = []
    for size in (small, large):
        generated = synthetic_dataset(size, seed=seed)
        with _on_disk(generated) as dataset:
            for label, workflow in (
                ("Q1", q1_workflow(generated.schema, num_children=7)),
                ("Q2", q2_workflow(generated.schema, depth=2)),
            ):
                rows.append(
                    time_engine(
                        SortScanEngine(optimize=True),
                        dataset,
                        workflow,
                        "fig6e",
                        f"{label} |D|={size}",
                        label="SortScan",
                    )
                )
    return rows


def fig6f(
    scale: float = 1.0, seed: int = 0, background: int | None = None
) -> list[BenchRow]:
    """Figure 6(f): both network analyses fused into one workflow."""
    if background is None:
        background = max(2000, int(200_000 * scale))
    generated = honeynet_dataset(background, seed=seed)
    workflow = combined_workflow(generated.schema)
    with _on_disk(generated) as dataset:
        return run_engines(
            [
                ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                ("SortScan", SortScanEngine(optimize=True)),
            ],
            dataset,
            workflow,
            "fig6f",
            f"background={background}",
        )


def fig7a(
    scale: float = 1.0, seed: int = 0, background: int | None = None
) -> list[BenchRow]:
    """Figure 7(a): escalation detection — simple scan wins.

    The intermediate state is tiny, so the sort cost dominates the
    sort/scan algorithm and the unsorted single scan is fastest.
    """
    if background is None:
        background = max(2000, int(200_000 * scale))
    generated = honeynet_dataset(background, seed=seed)
    workflow = escalation_workflow(generated.schema)
    with _on_disk(generated) as dataset:
        return run_engines(
            [
                ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                ("SortScan", SortScanEngine(optimize=True)),
                ("SimpleScan", SingleScanEngine()),
            ],
            dataset,
            workflow,
            "fig7a",
            f"background={background}",
        )


def fig7b(
    scale: float = 1.0, seed: int = 0, background: int | None = None
) -> list[BenchRow]:
    """Figure 7(b): multi-recon detection — sort/scan beats the DB."""
    if background is None:
        background = max(2000, int(200_000 * scale))
    generated = honeynet_dataset(background, seed=seed)
    workflow = multi_recon_workflow(generated.schema)
    with _on_disk(generated) as dataset:
        return run_engines(
            [
                ("DB", RelationalEngine(memory_budget_entries=_budget(scale))),
                ("SortScan", SortScanEngine(optimize=True)),
                (
                    "SimpleScan",
                    SingleScanEngine(
                        memory_budget_entries=_budget(scale) * 4
                    ),
                ),
            ],
            dataset,
            workflow,
            "fig7b",
            f"background={background}",
        )


def columnar(scale: float = 1.0) -> list[BenchRow]:
    """The batched-vs-scalar perf sheet (docs/metrics_targets.md).

    Imported lazily: :mod:`repro.bench.columnar` is the one driver
    with its own JSON payload, and ``repro bench --figure columnar``
    fetches that payload separately via ``columnar_bench``.
    """
    from repro.bench.columnar import columnar_rows

    return columnar_rows(scale=scale)


def sql(scale: float = 1.0) -> list[BenchRow]:
    """SQL-backend vs in-memory engines (not a paper figure).

    Every shipped query family on sqlite (and duckdb when importable)
    against the sort/scan and relational engines, each SQL timing
    verified row-for-row first; ``repro bench --figure sql --json``
    fetches the full ``BENCH_sql.json`` payload via ``sql_bench``.
    """
    from repro.bench.sql import sql_rows

    return sql_rows(scale=scale)


def service(scale: float = 1.0) -> list[BenchRow]:
    """Sharded-service throughput sweep (not a paper figure).

    Sustained read QPS under concurrent tail-append ingest at 1/2/4
    shards; ``repro bench --figure service --json`` fetches the full
    ``BENCH_service.json`` payload via ``service_bench``.
    """
    from repro.bench.service import service_rows

    return service_rows(scale=scale)


ALL_FIGURES = {
    "columnar": columnar,
    "service": service,
    "sql": sql,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig6c": fig6c,
    "fig6d": fig6d,
    "fig6e": fig6e,
    "fig6f": fig6f,
    "fig7a": fig7a,
    "fig7b": fig7b,
}
